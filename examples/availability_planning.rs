//! Mission planning with the availability–accuracy trade-off (paper
//! §V-E, Equation 6, Figure 12): pick a detection schedule for a
//! deployment by asking either "how available can I be at accuracy X?"
//! (user A) or "how accurate can I stay at availability Y?" (user B).
//!
//! ```text
//! cargo run --release --example availability_planning
//! ```

use milr_core::availability::AvailabilityModel;
use milr_core::{Milr, MilrConfig};
use milr_models::trained_reduced;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (model, test) = trained_reduced("mnist", 33);
    let clean = model.accuracy(&test.images, &test.labels)?;
    let milr = Milr::protect(&model, MilrConfig::default())?;

    // Measure this deployment's detection and recovery times.
    let start = Instant::now();
    for _ in 0..5 {
        milr.detect(&model)?;
    }
    let td = start.elapsed().as_secs_f64() / 5.0;
    let mut scratch = model.clone();
    let start = Instant::now();
    milr.recover_layers(&mut scratch, &[0])?;
    let tr = start.elapsed().as_secs_f64();
    // Model a paper-scale deployment footprint (the Table I MNIST
    // network, ~53 Mbit) with this machine's measured MILR timings; the
    // reduced twin's own footprint is so small that errors arrive once
    // per ~50 years and every curve is flat.
    let mbits = milr_models::mnist(0).model.param_count() as f64 * 32.0 / 1e6;
    println!("deployment: Td = {td:.5}s, Tr = {tr:.5}s, {mbits:.2} Mbit of weights");

    let avail = AvailabilityModel::from_network(mbits, td, tr, clean, 1e-4);
    println!(
        "expected {:.2} errors/year at the paper's DRAM field rate",
        avail.errors_per_year
    );

    // User A: mission-critical accuracy floor.
    let floor = clean * 0.99999;
    let a = avail.availability_for_accuracy(floor);
    println!(
        "user A wants ≥ {:.4}% of clean accuracy -> can afford availability {:.9} (downtime fraction {:.3e})",
        99.999,
        a,
        1.0 - a
    );

    // User B: availability floor.
    let acc = avail.min_accuracy(0.999);
    println!(
        "user B wants availability 99.9% -> sustains minimum accuracy {:.4} ({:.2}% of clean)",
        acc,
        100.0 * acc / clean
    );

    // The full Figure 12 curve for this deployment. MILR's measured
    // overheads are so small on this machine that the downtime fraction
    // is the readable axis.
    println!("\ndowntime-fraction   min-accuracy");
    for (av, ac) in avail.curve(10) {
        println!("{:>17.3e} {ac:>14.6}", 1.0 - av);
    }
    Ok(())
}
