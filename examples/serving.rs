//! Serving: run a CNN behind the `milr-serve` inference service while
//! faults land in the weight substrate — watch the scrubber daemon
//! detect, quarantine, recover, and keep every delivered output
//! faithful to the fault-free model.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! Two acts:
//!
//! 1. **Deterministic simulation** (virtual clock): a seeded workload
//!    with background fault injection, reproducible bit-for-bit —
//!    the path the benchmarks and the end-to-end test use.
//! 2. **Live threaded server** (wall clock): real worker threads and a
//!    real scrubber daemon; we inject a fault mid-traffic and verify
//!    every certified response against the golden model.

use milr_core::MilrConfig;
use milr_models::reduced_mnist;
use milr_serve::sim::{simulate, SimConfig};
use milr_serve::{QuarantinePolicy, RequestStatus, Server, ServerConfig};
use milr_tensor::TensorRng;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let golden = reduced_mnist(42).model;
    println!(
        "model: reduced MNIST twin, {} parameters",
        golden.param_count()
    );

    // ---- Act 1: deterministic virtual-clock simulation ----------------
    let sim_cfg = SimConfig {
        seed: 7,
        requests: 150,
        faults: 2,
        policy: QuarantinePolicy::Drain,
        ..SimConfig::default()
    };
    let result = simulate(&golden, MilrConfig::default(), &sim_cfg)?;
    let r = &result.report;
    println!(
        "\n[sim] {} requests, {} faults injected",
        r.submitted, r.faults_injected
    );
    println!(
        "[sim] {} completed, {} re-executed after flagged scrubs, {} quarantines",
        r.completed, r.reexecuted, r.quarantines
    );
    println!(
        "[sim] measured availability {:.6} ({:.1} ms downtime of {:.1} ms), p95 latency {:.1} us",
        r.availability,
        r.downtime_ns as f64 / 1e6,
        r.total_ns as f64 / 1e6,
        r.latency.p95_us
    );
    let mut verified = 0;
    for o in &result.outcomes {
        if let RequestStatus::Completed(out) = &o.status {
            let expect = &golden.forward_batch(std::slice::from_ref(&o.input))?[0];
            assert_eq!(out.data(), expect.data(), "output diverged from golden");
            verified += 1;
        }
    }
    println!("[sim] {verified} outputs verified bit-for-bit against the fault-free model");
    println!(
        "[sim] digest {:#x} — rerun to see the same number",
        r.digest
    );

    // ---- Act 2: live threaded server ----------------------------------
    let server = Server::start(
        &golden,
        MilrConfig::default(),
        ServerConfig {
            workers: 2,
            scrub_interval: Duration::from_millis(2),
            policy: QuarantinePolicy::Drain,
            ..ServerConfig::default()
        },
    )?;
    let mut rng = TensorRng::new(99);
    let inputs: Vec<_> = (0..24).map(|_| rng.uniform_tensor(&[14, 14, 1])).collect();
    let first: Vec<_> = inputs[..12]
        .iter()
        .map(|x| server.submit(x.clone()).expect("admission"))
        .collect();
    // A whole-weight fault lands in conv layer 0 mid-traffic.
    server.inject_weight_fault(0, 17);
    println!("\n[live] injected a whole-weight fault into conv layer 0");
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.quarantines() == 0 || server.is_quarantined() {
        assert!(Instant::now() < deadline, "scrubber never healed the fault");
        std::thread::sleep(Duration::from_millis(1));
    }
    println!("[live] scrubber quarantined and recovered; serving resumed");
    let second: Vec<_> = inputs[12..]
        .iter()
        .map(|x| server.submit(x.clone()).expect("admission"))
        .collect();
    for (input, handle) in inputs.iter().zip(first.into_iter().chain(second)) {
        let out = handle.wait()?;
        let expect = &golden.forward_batch(std::slice::from_ref(input))?[0];
        assert_eq!(
            out.data(),
            expect.data(),
            "live output diverged from golden"
        );
    }
    let report = server.shutdown();
    println!(
        "[live] {} completed / {} submitted, {} quarantine(s), availability {:.6}",
        report.completed, report.submitted, report.quarantines, report.availability
    );
    println!("[live] every delivered output matched the fault-free model bit-for-bit");
    Ok(())
}
