//! Self-healing from a targeted attack: an adversary overwrites an
//! entire layer's parameters (the paper's §V whole-layer corruption,
//! motivated by bit-flip attacks like Rakin et al.). MILR detects the
//! modified weights and restores them.
//!
//! ```text
//! cargo run --release --example bit_flip_attack
//! ```

use milr_core::{Milr, MilrConfig, RecoveryOutcome};
use milr_fault::{corrupt_layer, FaultRng};
use milr_models::trained_reduced;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mut model, test) = trained_reduced("mnist", 9);
    let clean = model.accuracy(&test.images, &test.labels)?;
    let milr = Milr::protect(&model, MilrConfig::default())?;

    // Attack the first dense layer: overwrite every weight.
    let dense_index = model
        .layers()
        .iter()
        .position(|l| l.kind_name() == "Dense")
        .expect("model has a dense layer");
    println!(
        "attacker overwrites all {} weights of layer {dense_index}",
        model.layers()[dense_index].param_count()
    );
    corrupt_layer(
        model.layers_mut()[dense_index]
            .params_mut()
            .expect("dense has params")
            .data_mut(),
        &mut FaultRng::seed(666),
    );
    let hurt = model.accuracy(&test.images, &test.labels)?;
    println!(
        "accuracy: clean {:.1}% -> attacked {:.1}%",
        clean * 100.0,
        hurt * 100.0
    );

    // MILR notices and heals — no retraining, no stored weight copy.
    let report = milr.detect(&model)?;
    assert!(report.flagged.contains(&dense_index), "attack undetected");
    let recovery = milr.recover(&mut model, &report)?;
    assert!(
        recovery
            .outcomes
            .iter()
            .any(|(l, o)| *l == dense_index && matches!(o, RecoveryOutcome::Full)),
        "dense layer should fully recover"
    );
    let healed = model.accuracy(&test.images, &test.labels)?;
    println!("after self-healing: {:.1}%", healed * 100.0);
    assert!(healed >= clean - 1e-9, "recovery must restore accuracy");
    Ok(())
}
