//! Fleet: three replicas of one protected CNN, each with its own
//! `.milr` store — kill one replica's disk **beyond MILR's recoverable
//! set**, watch peer repair restore it bit-for-bit from a healthy
//! peer's certified store, and verify bitwise.
//!
//! ```text
//! cargo run --release --example fleet
//! ```
//!
//! Three acts:
//!
//! 1. **Deploy**: the same protected model is saved into three replica
//!    containers — the fleet's deployment unit.
//! 2. **Disk kill + triage**: every weight of replica 0's
//!    partial-recoverability conv layer is wiped on disk. A MILR heal
//!    is attempted first and comes back *min-norm* — the paper's
//!    irrecoverable regime, where a single instance would have to
//!    refuse or approximate. The replica instead fetches the layer's
//!    certified pages from replica 1, imports them, re-verifies,
//!    re-protects, and durably re-anchors.
//! 3. **Verify bitwise**: the repaired container's weight pages equal
//!    the donors' byte-for-byte, outputs equal the fault-free model
//!    bit-for-bit, and a restart finds a certified-clean store.

use milr_core::{MilrConfig, SolvingPlan};
use milr_fleet::{peer_repair, Replica, ReplicaState};
use milr_models::reduced_mnist;
use milr_store::{Store, StoreOptions};
use milr_substrate::SubstrateKind;
use milr_tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let golden = reduced_mnist(42).model;
    let dir = std::env::temp_dir().join(format!("milr-example-fleet-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let paths: Vec<_> = (0..3)
        .map(|r| dir.join(format!("replica-{r}.milr")))
        .collect();

    // ---- Act 1: deploy three replicas ---------------------------------
    for path in &paths {
        Store::create(
            path,
            &golden,
            MilrConfig::default(),
            StoreOptions {
                kind: SubstrateKind::Secded,
                page_weights: 256,
            },
        )?;
    }
    println!(
        "[deploy] {} parameters x 3 replicas under {}",
        golden.param_count(),
        dir.display()
    );

    // ---- Act 2: kill replica 0's disk, triage, peer-repair ------------
    // The victim: a partial-recoverability conv layer (F²Z > G²), whose
    // whole-layer corruption MILR can only approximate from one
    // instance's checkpoints.
    let probe = Store::open(&paths[0])?;
    let victim = probe
        .milr()
        .plan()
        .layers
        .iter()
        .find(|l| l.solving == Some(SolvingPlan::ConvPartial))
        .map(|l| l.index)
        .expect("reduced MNIST has a partial-recoverability conv layer");
    let bits = probe.layer_raw_bits(victim);
    let weights = probe
        .layers()
        .iter()
        .find(|e| e.layer == victim)
        .unwrap()
        .weights;
    // Wipe the whole layer: every other raw bit, which garbles every
    // code word (and therefore every weight) of the layer's pages.
    for bit in (0..bits).step_by(2) {
        probe.flip_raw_bit(victim, bit)?;
    }
    drop(probe);
    println!(
        "\n[kill] wiped layer {victim} of replica 0 on disk ({weights} weights, {} raw bits flipped)",
        bits / 2
    );

    let mut damaged = Replica::open(0, &paths[0], 64)?;
    let milr_fleet::RoundOutcome::Escalate { healed, escalated } = damaged.try_heal()? else {
        panic!("the kill must exceed MILR's recoverable set");
    };
    println!(
        "[triage] detection flagged layers {:?}; MILR healed {healed:?} exactly; irrecoverable: {escalated:?}",
        damaged.last_flagged()
    );
    assert_eq!(escalated, vec![victim], "the kill must exceed MILR");
    damaged.set_state(ReplicaState::Repairing);

    let donor = Store::open(&paths[1])?;
    let stats = peer_repair(&mut damaged, &donor, &escalated)?;
    damaged.set_state(ReplicaState::Serving);
    println!(
        "[repair] fetched {} certified page(s) ({} bytes) from replica 1, imported, verified, re-anchored",
        stats.pages, stats.bytes
    );

    // ---- Act 3: verify bitwise ----------------------------------------
    assert!(damaged.detect()?.is_clean());
    for layer in donor.layers().iter().map(|e| e.layer) {
        for page in 0..donor.layer_page_count(layer) {
            let mine = damaged.store().read_layer_page_raw(layer, page)?;
            let donors = donor.read_layer_page_raw(layer, page)?;
            assert_eq!(
                mine, donors,
                "layer {layer} page {page} diverged from the donor"
            );
        }
    }
    println!("\n[verify] every weight page of replica 0 is bit-identical to the donor's");

    let served = damaged.materialize();
    let mut rng = TensorRng::new(99);
    for _ in 0..8 {
        let x = rng.uniform_tensor(golden.input_shape());
        let a = golden.forward_batch(std::slice::from_ref(&x))?;
        let b = served.forward_batch(std::slice::from_ref(&x))?;
        assert_eq!(
            a[0].data(),
            b[0].data(),
            "output diverged from fault-free model"
        );
    }
    println!("[verify] served outputs are bit-identical to the fault-free model");
    drop(damaged);

    // A restart finds a certified container: the repair was durable.
    let (restarted, cold) = Replica::cold_start(0, &paths[0], 64)?;
    assert!(
        cold.was_clean(),
        "the re-anchor must leave a certified container"
    );
    assert!(restarted.state().is_serving());
    println!("[restart] replica 0 cold-starts certified clean — the repair was durable");

    drop(restarted);
    drop(donor);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
