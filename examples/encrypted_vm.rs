//! The paper's headline scenario: CNN weights live in an encrypted VM's
//! DRAM as AES-XTS ciphertext (MKTME/SEV model). A single ciphertext
//! bit error decrypts to a whole garbled 16-byte block — four
//! whole-weight errors that per-word SECDED cannot correct, but MILR
//! can: plaintext-space error correction (PSEC).
//!
//! ```text
//! cargo run --release --example encrypted_vm
//! ```

use milr_core::{Milr, MilrConfig};
use milr_fault::{inject_ciphertext_rber, FaultRng};
use milr_models::trained_reduced;
use milr_xts::{EncryptedMemory, XtsCipher};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mut model, test) = trained_reduced("mnist", 21);
    let clean = model.accuracy(&test.images, &test.labels)?;
    let milr = Milr::protect(
        &model,
        MilrConfig {
            dense_self_recovery: true,
            ..MilrConfig::default()
        },
    )?;

    // Place every layer's weights into encrypted memory.
    let cipher = XtsCipher::new(&[0x11; 16], &[0x22; 16]);
    let mut memories: Vec<(usize, EncryptedMemory)> = Vec::new();
    for (i, layer) in model.layers().iter().enumerate() {
        if let Some(p) = layer.params() {
            memories.push((i, EncryptedMemory::encrypt(p.data(), cipher.clone())?));
        }
    }

    // Soft errors strike the DRAM ciphertext.
    let mut rng = FaultRng::seed(3);
    let mut total_bits = 0usize;
    let mut garbled_weights = 0usize;
    for (_, mem) in memories.iter_mut() {
        let (report, bits) = inject_ciphertext_rber(mem, 2e-5, &mut rng);
        total_bits += report.flipped_bits;
        garbled_weights += bits
            .iter()
            .map(|&b| mem.blast_radius(b).len())
            .sum::<usize>();
    }
    println!(
        "{total_bits} ciphertext bit flips -> ~{garbled_weights} whole-weight plaintext errors"
    );

    // The VM reads (decrypts) its weights: plaintext space is corrupted.
    for (i, mem) in &memories {
        let plain = mem.decrypt_all()?;
        model.layers_mut()[*i]
            .params_mut()
            .expect("param layer")
            .data_mut()
            .copy_from_slice(&plain);
    }
    let hurt = model.accuracy(&test.images, &test.labels)?;
    println!(
        "accuracy: clean {:.1}% -> corrupted {:.1}%",
        clean * 100.0,
        hurt * 100.0
    );

    // MILR's plaintext-space detection and self-healing.
    let report = milr.detect(&model)?;
    println!("flagged layers: {:?}", report.flagged);
    milr.recover_iterative(&mut model, &report.flagged, 3)?;
    let healed = model.accuracy(&test.images, &test.labels)?;
    println!("after PSEC self-healing: {:.1}%", healed * 100.0);

    // Write the healed weights back through the encryption engine.
    for (i, mem) in memories.iter_mut() {
        mem.overwrite(model.layers()[*i].params().expect("params").data())?;
    }
    println!("healed weights re-encrypted to DRAM");
    assert!(healed >= hurt, "healing must not hurt");
    Ok(())
}
