//! Persistence: save a protected CNN into a `.milr` container, corrupt
//! it **on disk** while nothing is running, and cold-start a second
//! "process" that scrubs on load, heals with MILR, durably re-anchors
//! protection, and serves outputs bit-identical to the fault-free
//! model.
//!
//! ```text
//! cargo run --release --example persistence
//! ```
//!
//! Three acts (mirrors `examples/serving.rs`):
//!
//! 1. **Build → protect → save**: the container carries the
//!    substrate-encoded weight pages plus the checksummed protection
//!    artifacts — the paper's "error-resistant storage" made real.
//! 2. **Disk faults + cold start**: raw-space bit flips land directly
//!    in the file; `Server::start_from_store` scrubs on load, heals,
//!    and commits before admitting traffic.
//! 3. **Restart**: a third open proves the heal was durable — the
//!    container is certified again without any recovery work.

use milr_core::MilrConfig;
use milr_models::reduced_mnist;
use milr_serve::{Server, ServerConfig};
use milr_store::{ContainerFootprint, Store, StoreOptions};
use milr_substrate::SubstrateKind;
use milr_tensor::TensorRng;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let golden = reduced_mnist(42).model;
    let path = std::env::temp_dir().join(format!("milr-example-{}.milr", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // ---- Act 1: build → protect → save --------------------------------
    let store = Store::create(
        &path,
        &golden,
        MilrConfig::default(),
        StoreOptions {
            kind: SubstrateKind::Secded,
            page_weights: 1024,
        },
    )?;
    let footprint = ContainerFootprint::measure(&store)?;
    println!(
        "[save] {} parameters -> {} ({} KB weights pages + {} KB error-resistant sections)",
        golden.param_count(),
        path.display(),
        footprint.weight_bytes / 1000,
        footprint.resistant_bytes / 1000,
    );
    println!(
        "[save] substrate {}, {} stored layers, storage report: MILR/backup = {:.3}",
        store.kind(),
        store.layers().len(),
        store.report().fraction_of_backup()
    );
    drop(store); // "process 1" exits

    // ---- Act 2: disk corruption, then cold-start serving --------------
    {
        let store = Store::open(&path)?;
        // A whole stored weight of conv layer 0 is wiped (every raw bit
        // of its SECDED code word flipped), plus one stray bit in conv
        // layer 4 — both directly in the file, as a dying disk would.
        let stride = store.layer_raw_bits(0) / store.layers()[0].weights;
        for bit in 29 * stride..30 * stride {
            store.flip_raw_bit(0, bit)?;
        }
        store.flip_raw_bit(4, 30)?;
        println!(
            "\n[fault] flipped {} raw bits on disk while no process ran",
            stride + 1
        );
    }

    let (server, cold) = Server::start_from_store(
        &path,
        64,
        ServerConfig {
            workers: 2,
            scrub_interval: Duration::from_millis(2),
            ..ServerConfig::default()
        },
    )?;
    println!(
        "[cold-start] scrub corrected {} word(s); MILR flagged layers {:?}; {} heal round(s); re-anchored: {}",
        cold.scrub.corrected, cold.flagged, cold.heal_rounds, cold.reanchored
    );
    let mut rng = TensorRng::new(99);
    let inputs: Vec<_> = (0..16).map(|_| rng.uniform_tensor(&[14, 14, 1])).collect();
    let handles: Vec<_> = inputs
        .iter()
        .map(|x| server.submit(x.clone()).expect("admission"))
        .collect();
    for (input, handle) in inputs.iter().zip(handles) {
        let out = handle.wait()?;
        let expect = &golden.forward_batch(std::slice::from_ref(input))?[0];
        assert_eq!(
            out.data(),
            expect.data(),
            "served output diverged from the fault-free model"
        );
    }
    let report = server.shutdown();
    println!(
        "[serve] {} / {} requests completed; every output bit-equal to the fault-free model",
        report.completed, report.submitted
    );

    // ---- Act 3: the heal outlived the process --------------------------
    let (server, cold) = Server::start_from_store(&path, 64, ServerConfig::default())?;
    assert!(
        cold.was_clean(),
        "the durable re-anchor must leave a certified container"
    );
    println!("\n[restart] container is certified clean — the heal was durable");
    drop(server.shutdown());
    let _ = std::fs::remove_file(&path);
    Ok(())
}
