//! Quickstart: protect a small CNN with MILR, corrupt it, watch it heal.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use milr_core::{Milr, MilrConfig};
use milr_fault::{inject_whole_weight, FaultRng};
use milr_models::trained_reduced;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a small CNN (a reduced twin of the paper's MNIST net) on
    //    the synthetic digit dataset.
    println!("training a small CNN on synthetic digits…");
    let (mut model, test) = trained_reduced("mnist", 42);
    let clean = model.accuracy(&test.images, &test.labels)?;
    println!("clean accuracy: {:.1}%", clean * 100.0);

    // 2. Initialization phase: plan checkpoints, compute artifacts.
    //    `dense_self_recovery` is this library's extension that lets
    //    dense layers heal independently of other corrupted layers in
    //    the same checkpoint segment.
    let config = MilrConfig {
        dense_self_recovery: true,
        ..MilrConfig::default()
    };
    let milr = Milr::protect(&model, config)?;
    let plan = milr.plan();
    println!(
        "protected: {} layers, checkpoints at {:?}",
        plan.layers.len(),
        plan.checkpoints
    );

    // 3. A fault: whole-weight errors, the plaintext signature of
    //    ciphertext-space corruption no per-word ECC can fix.
    let mut rng = FaultRng::seed(7);
    for layer in model.layers_mut() {
        if let Some(p) = layer.params_mut() {
            inject_whole_weight(p.data_mut(), 2e-3, &mut rng);
        }
    }
    let hurt = model.accuracy(&test.images, &test.labels)?;
    println!("after corruption: {:.1}%", hurt * 100.0);

    // 4. Detection phase: seeded PRNG inputs vs partial checkpoints.
    let report = milr.detect(&model)?;
    println!(
        "detection flagged layers {:?} in {:?}",
        report.flagged, report.elapsed
    );

    // 5. Recovery phase: propagate checkpoints, solve the layer
    //    algebra. Iterative refinement re-solves coupled layers.
    let recovery = milr.recover_iterative(&mut model, &report.flagged, 3)?;
    for (layer, outcome) in &recovery.outcomes {
        println!("  layer {layer}: {outcome:?}");
    }
    let healed = model.accuracy(&test.images, &test.labels)?;
    println!(
        "after self-healing: {:.1}% (recovery took {:?})",
        healed * 100.0,
        recovery.elapsed
    );
    assert!(healed >= clean - 0.02, "healing fell short");
    Ok(())
}
