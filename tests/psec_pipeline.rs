//! Integration test of the full plaintext-space error-correction
//! pipeline: weights in AES-XTS encrypted memory, ciphertext bit flips,
//! SECDED insufficiency, MILR healing — the paper's Figure 1 + §I
//! scenario, across milr-xts, milr-ecc, milr-fault, milr-core.

use milr_core::{Milr, MilrConfig};
use milr_ecc::SecdedMemory;
use milr_fault::{inject_ciphertext_rber, FaultRng};
use milr_models::trained_reduced;
use milr_xts::{EncryptedMemory, XtsCipher, WEIGHTS_PER_BLOCK};

#[test]
fn ciphertext_bit_flip_becomes_whole_weight_plaintext_error() {
    let weights: Vec<f32> = (0..64).map(|i| i as f32 * 0.1 - 3.0).collect();
    let cipher = XtsCipher::new(&[1; 16], &[2; 16]);
    let mut mem = EncryptedMemory::encrypt(&weights, cipher).unwrap();
    mem.flip_ciphertext_bit(100);
    let seen = mem.decrypt_all().unwrap();
    let changed: Vec<usize> = (0..64).filter(|&i| seen[i] != weights[i]).collect();
    // All changes confined to one block of 4 weights, and (with
    // overwhelming probability for AES) every weight in it garbled.
    assert!(!changed.is_empty());
    assert!(changed.len() <= WEIGHTS_PER_BLOCK);
    let block = changed[0] / WEIGHTS_PER_BLOCK;
    for &c in &changed {
        assert_eq!(c / WEIGHTS_PER_BLOCK, block);
    }
}

#[test]
fn secded_cannot_correct_plaintext_space_garble_but_milr_can() {
    let (mut model, test) = trained_reduced("mnist", 8);
    let clean = model.accuracy(&test.images, &test.labels).unwrap();
    let milr = Milr::protect(
        &model,
        MilrConfig {
            dense_self_recovery: true,
            ..MilrConfig::default()
        },
    )
    .unwrap();

    // Encrypt the biggest dense layer and flip a few ciphertext bits.
    let dense = model
        .layers()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.kind_name() == "Dense")
        .max_by_key(|(_, l)| l.param_count())
        .map(|(i, _)| i)
        .unwrap();
    let golden: Vec<f32> = model.layers()[dense].params().unwrap().data().to_vec();
    let cipher = XtsCipher::new(&[3; 16], &[4; 16]);
    let mut mem = EncryptedMemory::encrypt(&golden, cipher).unwrap();
    let (report, _) = inject_ciphertext_rber(&mut mem, 5e-5, &mut FaultRng::seed(17));
    assert!(report.flipped_bits > 0);
    let plaintext = mem.decrypt_all().unwrap();

    // SECDED protecting each *plaintext* word sees multi-bit garble it
    // cannot correct: decode-after-corruption differs from golden.
    let protected = SecdedMemory::protect(&golden);
    let mut attacked = protected.clone();
    // Model the plaintext-space damage: re-encode the garbled words.
    for (i, (&g, &p)) in golden.iter().zip(plaintext.iter()).enumerate() {
        if g != p {
            attacked.words_mut()[i] = SecdedMemory::protect(&[p]).words()[0];
        }
    }
    let (decoded, scrub) = attacked.scrub();
    assert_eq!(scrub.uncorrectable, 0, "consistent words look clean");
    let still_wrong = decoded
        .iter()
        .zip(golden.iter())
        .filter(|(a, b)| a != b)
        .count();
    assert!(still_wrong > 0, "ECC should not fix whole-weight garble");

    // MILR heals the same damage.
    model.layers_mut()[dense]
        .params_mut()
        .unwrap()
        .data_mut()
        .copy_from_slice(&plaintext);
    let det = milr.detect(&model).unwrap();
    assert!(det.flagged.contains(&dense));
    milr.recover(&mut model, &det).unwrap();
    let healed = model.accuracy(&test.images, &test.labels).unwrap();
    assert!(healed >= clean - 1e-9, "healed {healed} vs clean {clean}");
    let recovered: Vec<f32> = model.layers()[dense].params().unwrap().data().to_vec();
    let still_wrong = recovered
        .iter()
        .zip(golden.iter())
        .filter(|(a, b)| (**a - **b).abs() > 1e-3)
        .count();
    assert_eq!(still_wrong, 0, "MILR should restore the garbled weights");
}
