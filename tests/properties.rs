//! Workspace-level property tests over the recovery invariants.

use milr_core::{Milr, MilrConfig};
use milr_nn::{Layer, Sequential};
use milr_tensor::TensorRng;
use proptest::prelude::*;

/// Builds a random dense-stack model with `depth` dense+bias blocks.
fn dense_stack(widths: &[usize], seed: u64) -> Sequential {
    let mut rng = TensorRng::new(seed);
    let mut m = Sequential::new(vec![widths[0]]);
    for w in widths.windows(2) {
        m.push(Layer::dense_random(w[0], w[1], &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(w[1])).unwrap();
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any single corrupted dense layer in a random stack heals back to
    /// (approximately) its golden weights.
    #[test]
    fn single_dense_corruption_always_heals(
        seed in 0u64..500,
        w0 in 3usize..8,
        w1 in 3usize..8,
        w2 in 2usize..6,
        which in 0usize..2,
        magnitude in 1.0f32..50.0,
    ) {
        let widths = [w0, w1, w2];
        let mut model = dense_stack(&widths, seed);
        let golden = model.clone();
        let milr = Milr::protect(&model, MilrConfig::default()).unwrap();
        // Corrupt one weight of one dense layer (layer index 0 or 2).
        let layer = which * 2;
        let params = model.layers_mut()[layer].params_mut().unwrap();
        let n = params.numel();
        params.data_mut()[seed as usize % n] += magnitude;
        let report = milr.detect(&model).unwrap();
        prop_assert!(report.flagged.contains(&layer), "{:?}", report.flagged);
        milr.recover(&mut model, &report).unwrap();
        let healed = model.layers()[layer].params().unwrap();
        let truth = golden.layers()[layer].params().unwrap();
        prop_assert!(
            healed.approx_eq(truth, 1e-3, 1e-4),
            "diff {:?}", healed.max_abs_diff(truth)
        );
    }

    /// Detection never flags a clean network, for any seed/shape.
    #[test]
    fn detection_has_no_false_positives(
        seed in 0u64..1000,
        w0 in 2usize..10,
        w1 in 2usize..10,
    ) {
        let model = dense_stack(&[w0, w1], seed);
        let milr = Milr::protect(&model, MilrConfig::default()).unwrap();
        let report = milr.detect(&model).unwrap();
        prop_assert!(report.is_clean());
    }

    /// Protection artifacts are deterministic: protecting the same model
    /// twice yields identical plans and detection behaviour.
    #[test]
    fn protection_is_deterministic(seed in 0u64..200) {
        let model = dense_stack(&[5, 4, 3], seed);
        let a = Milr::protect(&model, MilrConfig::default()).unwrap();
        let b = Milr::protect(&model, MilrConfig::default()).unwrap();
        prop_assert_eq!(a.plan(), b.plan());
        let ra = a.detect(&model).unwrap();
        let rb = b.detect(&model).unwrap();
        prop_assert_eq!(ra.flagged, rb.flagged);
    }
}
