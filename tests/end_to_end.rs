//! Cross-crate integration tests: the full protect → inject → detect →
//! recover loop over trained networks, spanning every crate in the
//! workspace.

use milr_core::{Milr, MilrConfig, RecoveryOutcome};
use milr_fault::{corrupt_layer, inject_rber, inject_whole_weight, FaultRng};
use milr_models::trained_reduced;
use milr_nn::Sequential;

fn protect(model: &Sequential) -> Milr {
    Milr::protect(model, MilrConfig::default()).expect("protect")
}

fn protect_decoupled(model: &Sequential) -> Milr {
    Milr::protect(
        model,
        MilrConfig {
            dense_self_recovery: true,
            ..MilrConfig::default()
        },
    )
    .expect("protect")
}

#[test]
fn trained_network_clean_detection() {
    let (model, _) = trained_reduced("mnist", 1);
    let milr = protect(&model);
    let report = milr.detect(&model).expect("detect");
    assert!(report.is_clean(), "flagged {:?}", report.flagged);
}

#[test]
fn whole_weight_errors_heal_to_full_accuracy() {
    let (mut model, test) = trained_reduced("mnist", 2);
    let clean = model.accuracy(&test.images, &test.labels).unwrap();
    let milr = protect_decoupled(&model);
    let mut rng = FaultRng::seed(13);
    for layer in model.layers_mut() {
        if let Some(p) = layer.params_mut() {
            inject_whole_weight(p.data_mut(), 1e-3, &mut rng);
        }
    }
    let report = milr.detect(&model).expect("detect");
    assert!(!report.is_clean());
    milr.recover_iterative(&mut model, &report.flagged, 3)
        .expect("recover");
    let healed = model.accuracy(&test.images, &test.labels).unwrap();
    assert!(healed >= clean - 0.01, "healed {healed} vs clean {clean}");
}

#[test]
fn dense_whole_layer_attack_recovers_exactly() {
    let (mut model, test) = trained_reduced("mnist", 3);
    let clean = model.accuracy(&test.images, &test.labels).unwrap();
    let milr = protect(&model);
    let dense = model
        .layers()
        .iter()
        .position(|l| l.kind_name() == "Dense")
        .expect("dense exists");
    let golden = model.layers()[dense].params().unwrap().clone();
    corrupt_layer(
        model.layers_mut()[dense].params_mut().unwrap().data_mut(),
        &mut FaultRng::seed(5),
    );
    let report = milr.detect(&model).expect("detect");
    assert!(report.flagged.contains(&dense));
    let rec = milr.recover(&mut model, &report).expect("recover");
    assert!(rec
        .outcomes
        .iter()
        .any(|(l, o)| *l == dense && matches!(o, RecoveryOutcome::Full)));
    let healed_params = model.layers()[dense].params().unwrap();
    assert!(
        healed_params.approx_eq(&golden, 1e-3, 1e-4),
        "weights differ by {:?}",
        healed_params.max_abs_diff(&golden)
    );
    let healed = model.accuracy(&test.images, &test.labels).unwrap();
    assert!(healed >= clean - 1e-9);
}

#[test]
fn cifar_twin_full_loop() {
    let (mut model, test) = trained_reduced("cifar", 4);
    let clean = model.accuracy(&test.images, &test.labels).unwrap();
    let milr = protect_decoupled(&model);
    let mut rng = FaultRng::seed(31);
    for layer in model.layers_mut() {
        if let Some(p) = layer.params_mut() {
            inject_rber(p.data_mut(), 5e-5, &mut rng);
        }
    }
    let report = milr.detect(&model).expect("detect");
    milr.recover_iterative(&mut model, &report.flagged, 3)
        .expect("recover");
    let healed = model.accuracy(&test.images, &test.labels).unwrap();
    assert!(healed >= clean - 0.05, "healed {healed} vs clean {clean}");
}

#[test]
fn storage_report_orders_like_paper_tables() {
    // Backup > MILR-metadata-only components; ECC < backup; combined =
    // sum (structure of Tables V/VII/IX).
    let (model, _) = trained_reduced("mnist", 6);
    let milr = protect(&model);
    let report = milr.storage_report(&model);
    assert!(report.ecc_bytes < report.backup_bytes);
    assert_eq!(
        report.ecc_and_milr_bytes(),
        report.ecc_bytes + report.milr_bytes()
    );
    assert!(report.milr_bytes() > 0);
}

#[test]
fn detection_is_cheap_relative_to_batch_inference() {
    use std::time::Instant;
    let (model, test) = trained_reduced("mnist", 7);
    let milr = protect(&model);
    let t0 = Instant::now();
    for _ in 0..3 {
        milr.detect(&model).expect("detect");
    }
    let detect = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..3 {
        model.forward(&test.images).expect("forward");
    }
    let infer = t1.elapsed();
    // Detection runs one tiny input per layer; a full test-set batch
    // must dominate it (Table X's relationship).
    assert!(detect < infer, "detect {detect:?} vs batch {infer:?}");
}
