//! Top-level reproduction package for **MILR: Mathematically Induced
//! Layer Recovery** (DSN 2021).
//!
//! This crate exists to host the workspace-spanning integration tests in
//! `tests/` and the runnable examples in `examples/`; the library code
//! lives in the `crates/` members:
//!
//! * [`milr_core`] — MILR itself (protection, detection, recovery,
//!   storage accounting, availability model), with layer-parallel
//!   detection and segment-parallel recovery;
//! * [`milr_substrate`] — the unified [`WeightSubstrate`
//!   ](milr_substrate::WeightSubstrate) abstraction over plain, SECDED,
//!   AES-XTS, and SECDED-over-ciphertext weight storage;
//! * [`milr_nn`] — the CNN inference/training substrate;
//! * [`milr_tensor`], [`milr_linalg`] — tensor and solver substrates;
//! * [`milr_ecc`], [`milr_xts`] — SECDED/CRC codes and the AES-XTS
//!   encrypted-memory model;
//! * [`milr_fault`] — seeded, substrate-generic fault injection;
//! * [`milr_models`] — the paper's evaluation networks (Tables I–III);
//! * [`milr_integrity`] — the unified integrity engine: the one
//!   scrub→detect→heal→escalate→re-protect→re-anchor pipeline (and the
//!   substrate-backed `ModelHost`) behind serving, storage, and fleet;
//! * [`milr_serve`] — the online inference service (scrubber daemon,
//!   quarantine-and-recover, certified outputs);
//! * [`milr_store`] — the crash-consistent persistent weight store
//!   (`.milr` containers, certified page reads);
//! * [`milr_fleet`] — replicated sharded serving with peer repair and
//!   failover, plus the deterministic multi-replica fault-campaign
//!   simulator.
//!
//! See README.md for a tour and DESIGN.md for the reproduction map.

pub use milr_core;
pub use milr_ecc;
pub use milr_fault;
pub use milr_fleet;
pub use milr_integrity;
pub use milr_linalg;
pub use milr_models;
pub use milr_nn;
pub use milr_serve;
pub use milr_store;
pub use milr_substrate;
pub use milr_tensor;
pub use milr_xts;
