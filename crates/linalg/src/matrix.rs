use crate::{LinalgError, Result};
use std::fmt;

/// A dense, row-major `f64` matrix.
///
/// This is the working type of MILR's recovery solver. Weight tensors are
/// `f32`; they are widened to `Mat` for factorization and narrowed back
/// after solving.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RaggedRows`] if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Mat::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::RaggedRows);
            }
            data.extend_from_slice(r);
        }
        Ok(Mat {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `data.len() != rows*cols`.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Mat { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (this is a hot inner-loop accessor; use
    /// shape checks at the call boundary).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a vector.
    ///
    /// # Panics
    ///
    /// Panics when `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when inner dimensions differ.
    pub fn matmul(&self, other: &Mat) -> Result<Mat> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(&a, &x)| a * x).sum())
            .collect())
    }

    /// Solves `self · x = b` for a single right-hand side via LU with
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns an error for non-square matrices, length mismatches or
    /// singular systems.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let lu = crate::Lu::factor(self)?;
        lu.solve(b)
    }

    /// Solves `self · X = B` for a multi-column right-hand side.
    ///
    /// # Errors
    ///
    /// Returns an error for non-square matrices, shape mismatches or
    /// singular systems.
    pub fn solve_multi(&self, b: &Mat) -> Result<Mat> {
        let lu = crate::Lu::factor(self)?;
        lu.solve_multi(b)
    }

    /// Matrix inverse via LU.
    ///
    /// # Errors
    ///
    /// Returns an error for non-square or singular matrices.
    pub fn inverse(&self) -> Result<Mat> {
        let lu = crate::Lu::factor(self)?;
        lu.solve_multi(&Mat::eye(self.rows))
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// True when all elements of `self` and `other` differ by at most
    /// `tol` (and shapes match).
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        const PREVIEW: usize = 4;
        for i in 0..self.rows.min(PREVIEW) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(PREVIEW) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self.get(i, j))?;
            }
            if self.cols > PREVIEW {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > PREVIEW {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Mat::zeros(2, 3);
        assert_eq!((z.rows(), z.cols()), (2, 3));
        assert!(z.data().iter().all(|&x| x == 0.0));
        let i = Mat::eye(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert!(Mat::from_rows(&[&[1.0], &[2.0, 3.0]]).is_err());
        assert!(Mat::from_vec(vec![0.0; 5], 2, 3).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(1, 2), 5.0);
    }

    #[test]
    fn matmul_matches_hand_result() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(a.matmul(&Mat::zeros(3, 3)).is_err());
    }

    #[test]
    fn matvec_works() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let inv = Mat::eye(4).inverse().unwrap();
        assert!(inv.approx_eq(&Mat::eye(4), 1e-14));
    }

    #[test]
    fn norms() {
        let m = Mat::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((m.frob_norm() - 5.0).abs() < 1e-14);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn display_preview() {
        let m = Mat::zeros(10, 10);
        let s = m.to_string();
        assert!(s.contains("Mat 10x10"));
        assert!(s.contains('…'));
    }
}
