use crate::{LinalgError, Mat, Result};

/// Householder QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// Used by MILR wherever a recovery system is over-determined — e.g. a
/// convolution layer whose `im2col` matrix has more output locations than
/// filter coefficients (`G² > F²Z`): the least-squares solution then
/// coincides with the exact solution when the data is consistent, and
/// degrades gracefully when upstream recovery introduced noise.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors in the lower trapezoid; R in the upper
    /// triangle.
    qr: Mat,
    /// Scaling factors `beta` for each reflector.
    betas: Vec<f64>,
}

impl Qr {
    /// Factors an `m × n` matrix, `m ≥ n`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Underdetermined`] if `m < n` and
    /// [`LinalgError::Singular`] if a diagonal of `R` collapses to zero
    /// (rank-deficient matrix).
    pub fn factor(a: &Mat) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::Underdetermined { rows: m, cols: n });
        }
        let mut qr = a.clone();
        let mut betas = Vec::with_capacity(n);
        // Rank-deficiency threshold relative to the matrix magnitude:
        // a residual column whose norm falls below this is numerically
        // zero after the preceding reflections.
        let rank_tol = a.max_abs() * 1e-12 * (m as f64).max(1.0);
        for k in 0..n {
            // Build the Householder reflector annihilating column k below
            // the diagonal.
            let mut norm2 = 0.0f64;
            for i in k..m {
                let v = qr.get(i, k);
                norm2 += v * v;
            }
            let norm = norm2.sqrt();
            if norm <= rank_tol || !norm.is_finite() {
                return Err(LinalgError::Singular { pivot: k });
            }
            let akk = qr.get(k, k);
            let alpha = if akk >= 0.0 { -norm } else { norm };
            let v0 = akk - alpha;
            // H = I + beta·v·vᵀ with beta = 1/(α·v0) (= −2/vᵀv, negative).
            let beta = 1.0 / (alpha * v0);
            // Store v (with v[k] = v0) in the lower part, R diag in place.
            qr.set(k, k, alpha);
            let mut v = vec![0.0f64; m - k];
            v[0] = v0;
            for i in (k + 1)..m {
                v[i - k] = qr.get(i, k);
            }
            // Apply reflector to the trailing columns.
            for j in (k + 1)..n {
                let mut dot = 0.0f64;
                for i in k..m {
                    let aij = qr.get(i, j);
                    dot += v[i - k] * aij;
                }
                let scale = beta * dot;
                for i in k..m {
                    let aij = qr.get(i, j);
                    qr.set(i, j, aij + scale * v[i - k]);
                }
            }
            // Persist v below the diagonal (v[0] kept in betas side
            // storage via normalization: store v as-is, remembering v0).
            for i in (k + 1)..m {
                qr.set(i, k, v[i - k]);
            }
            betas.push((beta, v0));
            if !qr.get(k, k).is_finite() || qr.get(k, k).abs() <= rank_tol {
                return Err(LinalgError::Singular { pivot: k });
            }
        }
        let betas_only = betas.iter().map(|&(b, _)| b).collect::<Vec<_>>();
        // Keep v0 values in a parallel vector by folding into betas as
        // pairs. To avoid a second struct field of tuples, store v0 in
        // the factored matrix is impossible (diag holds R), so keep both.
        Ok(Qr {
            qr,
            betas: betas_only
                .into_iter()
                .zip(betas.iter().map(|&(_, v0)| v0))
                .flat_map(|(b, v0)| [b, v0])
                .collect(),
        })
    }

    fn beta(&self, k: usize) -> f64 {
        self.betas[2 * k]
    }

    fn v0(&self, k: usize) -> f64 {
        self.betas[2 * k + 1]
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Applies `Qᵀ` to a vector of length `m` in place.
    fn apply_qt(&self, x: &mut [f64]) {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        for k in 0..n {
            let beta = self.beta(k);
            let v0 = self.v0(k);
            let mut dot = v0 * x[k];
            for i in (k + 1)..m {
                dot += self.qr.get(i, k) * x[i];
            }
            let scale = beta * dot;
            x[k] += scale * v0;
            for i in (k + 1)..m {
                x[i] += scale * self.qr.get(i, k);
            }
        }
    }

    /// Applies `Q` to a vector of length `m` in place.
    fn apply_q(&self, x: &mut [f64]) {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        for k in (0..n).rev() {
            let beta = self.beta(k);
            let v0 = self.v0(k);
            let mut dot = v0 * x[k];
            for i in (k + 1)..m {
                dot += self.qr.get(i, k) * x[i];
            }
            let scale = beta * dot;
            x[k] += scale * v0;
            for i in (k + 1)..m {
                x[i] += scale * self.qr.get(i, k);
            }
        }
    }

    /// Least-squares solution of `A·x ≈ b` (minimizes `‖Ax − b‖₂`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len() != rows()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.qr.get(i, j) * x[j];
            }
            x[i] = sum / self.qr.get(i, i);
        }
        Ok(x)
    }

    /// Solves `Rᵀ·y = b` by forward substitution and returns `Q·[y; 0]`
    /// of length `rows()` — the core of the minimum-norm solver.
    fn min_norm_apply(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr min_norm",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = vec![0.0f64; m];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.qr.get(j, i) * y[j];
            }
            y[i] = sum / self.qr.get(i, i);
        }
        self.apply_q(&mut y);
        Ok(y)
    }
}

/// Least-squares solution of `A·x ≈ b` for `A` with `rows ≥ cols`.
///
/// # Errors
///
/// Propagates factorization errors (under-determined, singular) and shape
/// mismatches.
///
/// ```
/// use milr_linalg::{lstsq, Mat};
///
/// // Overdetermined consistent system: x = [1, 2].
/// let a = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]])?;
/// let x = lstsq(&a, &[1.0, 2.0, 3.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), milr_linalg::LinalgError>(())
/// ```
pub fn lstsq(a: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve(b)
}

/// Minimum-norm solution of the under-determined system `A·x = b`
/// (`rows < cols`), via QR of `Aᵀ`.
///
/// This is the paper's fallback for whole-layer corruption of partially
/// recoverable convolution layers (§V-B): when even the CRC-reduced
/// unknown set exceeds the equation count, MILR "attempts to find a
/// least-square solution … as close as possible to the actual solution".
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] for rank-deficient `A` and shape
/// errors for mismatched `b`.
pub fn min_norm_solve(a: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    let at = a.transpose();
    let qr = Qr::factor(&at)?;
    qr.min_norm_apply(b)
}

/// Tikhonov-regularized least squares: solves
/// `(AᵀA + λ·diag_scale·I)·x = Aᵀb`.
///
/// Unlike QR/min-norm, this never fails on rank-deficient systems — the
/// regularizer makes the normal equations strictly positive definite.
/// MILR uses it as the last-resort solver for recovery systems that are
/// numerically rank-deficient (e.g. a convolution whose golden input
/// lives in a low-dimensional subspace because it was produced by an
/// upstream convolution): the solution reproduces the layer's golden
/// outputs on the recovery flow even when the golden weights themselves
/// are not identifiable.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `b.len() != a.rows()`;
/// other failures cannot occur for `lambda > 0`.
pub fn ridge_solve(a: &Mat, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "ridge",
            lhs: (a.rows(), a.cols()),
            rhs: (b.len(), 1),
        });
    }
    let n = a.cols();
    let at = a.transpose();
    let mut ata = at.matmul(a)?;
    // Scale the regularizer to the matrix magnitude so `lambda` is a
    // relative knob.
    let scale = ata.max_abs().max(1e-300);
    let reg = lambda.max(f64::MIN_POSITIVE) * scale;
    for i in 0..n {
        let v = ata.get(i, i) + reg;
        ata.set(i, i, v);
    }
    let atb = at.matvec(b)?;
    ata.solve(&atb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn qr_rejects_underdetermined() {
        assert!(matches!(
            Qr::factor(&Mat::zeros(2, 3)),
            Err(LinalgError::Underdetermined { .. })
        ));
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        assert!(Qr::factor(&a).is_err());
    }

    #[test]
    fn square_solve_matches_lu() {
        let a = Mat::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = [9.0, 8.0];
        let x_qr = lstsq(&a, &b).unwrap();
        let x_lu = a.solve(&b).unwrap();
        for (q, l) in x_qr.iter().zip(x_lu.iter()) {
            assert!((q - l).abs() < 1e-12);
        }
    }

    #[test]
    fn overdetermined_consistent_system_is_exact() {
        // 4 equations, 2 unknowns, consistent.
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]).unwrap();
        let x_true = [2.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Classic regression: fit y = c0 + c1 t to noisy points; compare
        // against the analytically known normal-equation solution.
        let t = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.1, 2.9, 4.2];
        let a = Mat::from_fn(4, 2, |i, j| if j == 0 { 1.0 } else { t[i] });
        let x = lstsq(&a, &y).unwrap();
        // Normal equations solved by hand: AᵀA = [[4,6],[6,14]], Aᵀy = [10.2, 20.5].
        let det = 4.0 * 14.0 - 36.0;
        let c0 = (14.0 * 10.2 - 6.0 * 20.5) / det;
        let c1 = (4.0 * 20.5 - 6.0 * 10.2) / det;
        assert!((x[0] - c0).abs() < 1e-10, "{} vs {c0}", x[0]);
        assert!((x[1] - c1).abs() < 1e-10, "{} vs {c1}", x[1]);
    }

    #[test]
    fn min_norm_solves_underdetermined_consistently() {
        // 1 equation, 3 unknowns: x + y + z = 3; min-norm => (1,1,1).
        let a = Mat::from_rows(&[&[1.0, 1.0, 1.0]]).unwrap();
        let x = min_norm_solve(&a, &[3.0]).unwrap();
        for v in &x {
            assert!((v - 1.0).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn min_norm_satisfies_equations() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 0.0, 1.0], &[0.0, 1.0, 3.0, -1.0]]).unwrap();
        let b = [4.0, 2.0];
        let x = min_norm_solve(&a, &b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn min_norm_is_smallest_solution() {
        // Any particular solution plus a null-space component must be
        // longer than the min-norm solution.
        let a = Mat::from_rows(&[&[1.0, 1.0]]).unwrap();
        let x = min_norm_solve(&a, &[2.0]).unwrap();
        let norm_min: f64 = x.iter().map(|v| v * v).sum();
        // (2, 0) also solves it but is longer.
        assert!(norm_min < 4.0 - 1e-9);
    }

    #[test]
    fn solve_validates_rhs() {
        let qr = Qr::factor(&Mat::eye(3)).unwrap();
        assert!(qr.solve(&[1.0]).is_err());
        let a = Mat::from_rows(&[&[1.0, 0.0, 0.0]]).unwrap();
        assert!(min_norm_solve(&a, &[1.0, 2.0]).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn qr_solve_recovers_truth_for_tall_systems(
            m in 3usize..9,
            n in 1usize..4,
            seed in proptest::collection::vec(-2.0f64..2.0, 9 * 4 + 4),
        ) {
            prop_assume!(m >= n);
            // Well-conditioned by adding identity-like structure.
            let a = Mat::from_fn(m, n, |i, j| {
                seed[i * 4 + j] + if i == j { 5.0 } else { 0.0 }
            });
            let x_true: Vec<f64> = (0..n).map(|i| seed[36 + i]).collect();
            let b = a.matvec(&x_true).unwrap();
            let x = lstsq(&a, &b).unwrap();
            for (xi, ti) in x.iter().zip(x_true.iter()) {
                prop_assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
            }
        }

        #[test]
        fn min_norm_residual_is_zero_for_full_rank(
            n in 3usize..7,
            m in 1usize..3,
            seed in proptest::collection::vec(-2.0f64..2.0, 7 * 3 + 3),
        ) {
            prop_assume!(m < n);
            let a = Mat::from_fn(m, n, |i, j| {
                seed[i * 7 + j] + if i == j { 4.0 } else { 0.0 }
            });
            let b: Vec<f64> = (0..m).map(|i| seed[21 + i]).collect();
            let x = min_norm_solve(&a, &b).unwrap();
            let back = a.matvec(&x).unwrap();
            for (u, v) in back.iter().zip(b.iter()) {
                prop_assert!((u - v).abs() < 1e-8);
            }
        }
    }
}

#[cfg(test)]
mod ridge_tests {
    use super::*;

    #[test]
    fn ridge_matches_exact_solve_when_well_conditioned() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0], &[0.5, 0.5]]).unwrap();
        let x_true = [2.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = ridge_solve(&a, &b, 1e-12).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-5, "{x:?}");
        assert!((x[1] + 1.0).abs() < 1e-5, "{x:?}");
    }

    #[test]
    fn ridge_survives_rank_deficiency() {
        // Two identical columns: QR fails, ridge returns the symmetric
        // split that reproduces b.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        assert!(Qr::factor(&a).is_err());
        let b = [2.0, 4.0, 6.0];
        let x = ridge_solve(&a, &b, 1e-10).unwrap();
        let back = a.matvec(&x).unwrap();
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-4, "{back:?}");
        }
        assert!((x[0] - x[1]).abs() < 1e-6, "symmetric split: {x:?}");
    }

    #[test]
    fn ridge_validates_shapes() {
        let a = Mat::zeros(3, 2);
        assert!(ridge_solve(&a, &[1.0], 1e-9).is_err());
    }
}
