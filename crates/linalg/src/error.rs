use std::fmt;

/// Errors produced by linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions were incompatible with the requested operation.
    ShapeMismatch {
        /// Operation name.
        op: &'static str,
        /// Left/first operand shape `(rows, cols)`.
        lhs: (usize, usize),
        /// Right/second operand shape; for vectors, `(len, 1)`.
        rhs: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) to working
    /// precision; factorization or solving cannot proceed.
    Singular {
        /// Pivot column where breakdown was detected.
        pivot: usize,
    },
    /// The operation requires `rows >= cols` (over-determined or square).
    Underdetermined {
        /// Matrix rows.
        rows: usize,
        /// Matrix cols.
        cols: usize,
    },
    /// Row data of uneven length was supplied to a constructor.
    RaggedRows,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "incompatible shapes for {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            LinalgError::Underdetermined { rows, cols } => write!(
                f,
                "system with {rows} equations and {cols} unknowns is under-determined"
            ),
            LinalgError::RaggedRows => write!(f, "rows have unequal lengths"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(LinalgError::Singular { pivot: 3 }.to_string().contains('3'));
        assert!(LinalgError::RaggedRows.to_string().contains("unequal"));
        let e = LinalgError::Underdetermined { rows: 2, cols: 5 };
        assert!(e.to_string().contains("under-determined"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
