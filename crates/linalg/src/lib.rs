//! # milr-linalg
//!
//! Dense `f64` linear-algebra substrate for MILR's recovery mathematics.
//!
//! MILR (DSN 2021) recovers corrupted CNN parameters by solving the linear
//! systems induced by each layer's algebra:
//!
//! * **dense backward pass** — `A = C·B⁻¹` needs a matrix inverse / solve;
//! * **dense parameter solving** — factor the input once, solve one RHS per
//!   output column;
//! * **convolution parameter solving** — the `im2col` matrix is the
//!   coefficient matrix, one RHS per filter;
//! * **convolution backward pass** — one small `Y × F²Z` system per output
//!   location;
//! * **whole-layer partial recovery** — under-determined systems solved in
//!   the least-squares / minimum-norm sense (paper §V-B: "they attempt to
//!   find a least-square solution").
//!
//! Everything here is `f64`: the weights being recovered are `f32`, so a
//! well-conditioned `f64` solve rounds back to the exact original bits in
//! the overwhelming majority of cases (the paper's *Limitations* paragraph
//! discusses exactly this float-rounding concern).
//!
//! Large factorizations parallelize row updates with `std::thread`
//! scoped threads; callers that are themselves parallel workers cap the
//! fan-out with [`with_thread_budget`] so nested parallelism cannot
//! oversubscribe the machine.
//!
//! ## Example
//!
//! ```
//! use milr_linalg::Mat;
//!
//! let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
//! let b = vec![5.0, 10.0];
//! let x = a.solve(&b)?;
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[1] - 3.0).abs() < 1e-12);
//! # Ok::<(), milr_linalg::LinalgError>(())
//! ```

#![deny(missing_docs)]
// Factorization kernels index into multiple matrices with shared matrix
// coordinates; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

mod budget;
mod error;
mod lu;
mod matrix;
mod qr;

pub use budget::{effective_threads, with_thread_budget};
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Mat;
pub use qr::{lstsq, min_norm_solve, ridge_solve, Qr};

/// Result alias for linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
