use crate::{LinalgError, Mat, Result};

/// Minimum trailing-submatrix area before LU row updates are fanned out
/// to worker threads. Below this, threading overhead dominates.
const PAR_AREA_THRESHOLD: usize = 128 * 128;

/// LU factorization with partial (row) pivoting: `P·A = L·U`.
///
/// MILR's dense parameter solving factors the (possibly dummy-padded)
/// layer input once and reuses the factorization for every output column
/// (paper §IV-A-b) — that reuse is why `Lu` is a first-class type here
/// rather than a private helper of [`Mat::solve`].
///
/// ```
/// use milr_linalg::{Lu, Mat};
///
/// let a = Mat::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[2.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), milr_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper).
    lu: Mat,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Smallest and largest absolute pivots, kept as a cheap conditioning
    /// signal.
    pivot_extremes: (f64, f64),
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] for non-square input and
    /// [`LinalgError::Singular`] when no usable pivot exists in some
    /// column.
    pub fn factor(a: &Mat) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "lu",
                lhs: (a.rows(), a.cols()),
                rhs: (a.rows(), a.rows()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut min_piv = f64::INFINITY;
        let mut max_piv = 0.0f64;
        let threads = crate::effective_threads();
        for k in 0..n {
            // Partial pivot: largest |a[i][k]| for i >= k.
            let mut best = k;
            let mut best_abs = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > best_abs {
                    best = i;
                    best_abs = v;
                }
            }
            if best_abs == 0.0 || !best_abs.is_finite() {
                return Err(LinalgError::Singular { pivot: k });
            }
            if best != k {
                swap_rows(lu.data_mut(), n, k, best);
                perm.swap(k, best);
            }
            min_piv = min_piv.min(best_abs);
            max_piv = max_piv.max(best_abs);

            let trailing_rows = n - k - 1;
            let trailing_area = trailing_rows * (n - k);
            let data = lu.data_mut();
            let (head, tail) = data.split_at_mut((k + 1) * n);
            let pivot_row = &head[k * n..(k + 1) * n];
            let pivot = pivot_row[k];
            let update = |row: &mut [f64]| {
                let m = row[k] / pivot;
                row[k] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        row[j] -= m * pivot_row[j];
                    }
                }
            };
            if trailing_area >= PAR_AREA_THRESHOLD && threads > 1 {
                let mut rows: Vec<&mut [f64]> = tail.chunks_mut(n).collect();
                let chunk = rows.len().div_ceil(threads);
                std::thread::scope(|s| {
                    while !rows.is_empty() {
                        let take = chunk.min(rows.len());
                        let batch: Vec<&mut [f64]> = rows.drain(..take).collect();
                        let update = &update;
                        s.spawn(move || {
                            for row in batch {
                                update(row);
                            }
                        });
                    }
                });
            } else {
                for row in tail.chunks_mut(n) {
                    update(row);
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            pivot_extremes: (min_piv, max_piv),
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// `min |pivot| / max |pivot|` — a cheap conditioning signal in
    /// `(0, 1]`; values near zero indicate an ill-conditioned system whose
    /// recovered weights may not round back to the original `f32` bits.
    pub fn recip_pivot_ratio(&self) -> f64 {
        let (min, max) = self.pivot_extremes;
        if max == 0.0 {
            0.0
        } else {
            min / max
        }
    }

    /// Solves for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, forward-substitute L, back-substitute U.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        let lu = &self.lu;
        for i in 1..n {
            let mut sum = x[i];
            let row = lu.row(i);
            for (j, xj) in x.iter().enumerate().take(i) {
                sum -= row[j] * xj;
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            let row = lu.row(i);
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= row[j] * xj;
            }
            x[i] = sum / row[i];
        }
        Ok(x)
    }

    /// Solves for every column of `B`, in parallel for wide right-hand
    /// sides.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `B.rows() != dim()`.
    pub fn solve_multi(&self, b: &Mat) -> Result<Mat> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve_multi",
                lhs: (n, n),
                rhs: (b.rows(), b.cols()),
            });
        }
        let p = b.cols();
        let threads = crate::effective_threads();
        let mut out = Mat::zeros(n, p);
        if p >= 4 && threads > 1 && n * n * p >= PAR_AREA_THRESHOLD {
            let cols: Vec<usize> = (0..p).collect();
            let chunk = p.div_ceil(threads);
            let results: Vec<(usize, Vec<f64>)> = std::thread::scope(|s| {
                let handles: Vec<_> = cols
                    .chunks(chunk)
                    .map(|batch| {
                        let batch = batch.to_vec();
                        s.spawn(move || {
                            batch
                                .into_iter()
                                .map(|j| (j, self.solve(&b.col(j)).expect("shape checked")))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("solver thread panicked"))
                    .collect()
            });
            for (j, x) in results {
                for (i, &v) in x.iter().enumerate() {
                    out.set(i, j, v);
                }
            }
        } else {
            for j in 0..p {
                let x = self.solve(&b.col(j))?;
                for (i, &v) in x.iter().enumerate() {
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }
}

fn swap_rows(data: &mut [f64], n: usize, a: usize, b: usize) {
    if a == b {
        return;
    }
    let (lo, hi) = (a.min(b), a.max(b));
    let (head, tail) = data.split_at_mut(hi * n);
    head[lo * n..(lo + 1) * n].swap_with_slice(&mut tail[..n]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_non_square() {
        assert!(Lu::factor(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn detects_singularity() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
        let z = Mat::zeros(3, 3);
        assert!(Lu::factor(&z).is_err());
    }

    #[test]
    fn solves_with_pivoting_required() {
        // Leading zero forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = Lu::factor(&a).unwrap().solve(&[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn solve_validates_rhs_length() {
        let lu = Lu::factor(&Mat::eye(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_multi(&Mat::zeros(2, 2)).is_err());
    }

    #[test]
    fn solve_multi_matches_individual_solves() {
        let a = Mat::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let b = Mat::from_fn(3, 5, |i, j| (i * 5 + j) as f64 - 7.0);
        let x = lu.solve_multi(&b).unwrap();
        for j in 0..5 {
            let xj = lu.solve(&b.col(j)).unwrap();
            for i in 0..3 {
                assert!((x.get(i, j) - xj[i]).abs() < 1e-12);
            }
        }
        // Residual check: A X ≈ B.
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-10));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let inv = a.inverse().unwrap();
        assert!(a.matmul(&inv).unwrap().approx_eq(&Mat::eye(2), 1e-12));
    }

    #[test]
    fn pivot_ratio_reflects_conditioning() {
        let well = Mat::eye(4);
        assert!((Lu::factor(&well).unwrap().recip_pivot_ratio() - 1.0).abs() < 1e-12);
        let ill = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1e-12]]).unwrap();
        assert!(Lu::factor(&ill).unwrap().recip_pivot_ratio() < 1e-10);
    }

    #[test]
    fn large_system_triggers_parallel_path_and_stays_accurate() {
        // 200x200 diagonally dominant system: area 40_000 > threshold.
        let n = 200;
        let a = Mat::from_fn(n, n, |i, j| {
            if i == j {
                n as f64
            } else {
                ((i * 31 + j * 17) % 13) as f64 / 13.0
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) - 0.5).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn thread_budget_does_not_change_results() {
        // Same 200x200 system as the parallel-path test, factored with
        // the fan-out capped at one worker: identical bits out.
        let n = 200;
        let a = Mat::from_fn(n, n, |i, j| {
            if i == j {
                n as f64
            } else {
                ((i * 31 + j * 17) % 13) as f64 / 13.0
            }
        });
        let b = Mat::from_fn(n, 3, |i, j| (i + j) as f64 / n as f64);
        let free = Lu::factor(&a).unwrap().solve_multi(&b).unwrap();
        let capped =
            crate::with_thread_budget(1, || Lu::factor(&a).unwrap().solve_multi(&b).unwrap());
        for i in 0..n {
            for j in 0..3 {
                assert_eq!(free.get(i, j).to_bits(), capped.get(i, j).to_bits());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn solve_recovers_known_solution(
            n in 1usize..8,
            seed in proptest::collection::vec(-3.0f64..3.0, 64 + 8),
        ) {
            // Diagonally dominant => nonsingular and well conditioned.
            let a = Mat::from_fn(n, n, |i, j| {
                let v = seed[i * 8 + j];
                if i == j { v.abs() + (n as f64) * 4.0 } else { v }
            });
            let x_true: Vec<f64> = (0..n).map(|i| seed[64 + i]).collect();
            let b = a.matvec(&x_true).unwrap();
            let x = a.solve(&b).unwrap();
            for (xi, ti) in x.iter().zip(x_true.iter()) {
                prop_assert!((xi - ti).abs() < 1e-8);
            }
        }

        #[test]
        fn permutation_invariance(perm_seed in 0u64..1000) {
            // Shuffling rows of A and b identically must not change x.
            let a = Mat::from_rows(&[
                &[5.0, 1.0, 0.5],
                &[0.25, 6.0, 1.0],
                &[1.0, 0.5, 7.0],
            ]).unwrap();
            let b = vec![1.0, 2.0, 3.0];
            let x0 = a.solve(&b).unwrap();
            let k = (perm_seed % 3) as usize;
            let order = [[0usize, 1, 2], [1, 2, 0], [2, 0, 1]][k];
            let ap = Mat::from_rows(&[a.row(order[0]), a.row(order[1]), a.row(order[2])]).unwrap();
            let bp: Vec<f64> = order.iter().map(|&i| b[i]).collect();
            let x1 = ap.solve(&bp).unwrap();
            for (u, v) in x0.iter().zip(x1.iter()) {
                prop_assert!((u - v).abs() < 1e-10);
            }
        }
    }
}
