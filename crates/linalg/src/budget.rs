//! Per-thread worker budgets for the threaded factorization kernels.
//!
//! The LU kernels historically sized their scoped-thread fan-out from
//! `available_parallelism()` alone. That oversubscribes cores when the
//! caller is itself one of several parallel workers — e.g. MILR's
//! segment-parallel recovery, where each segment worker runs LU solves
//! of its own (`segments × cores` threads; DESIGN.md §4). Callers that
//! know how many siblings they have cap the fan-out with
//! [`with_thread_budget`]; the kernels read the cap through
//! [`effective_threads`].
//!
//! The budget is thread-local, so it composes with scoped-thread
//! parallelism without any signature changes through intermediate
//! layers: a segment worker sets its budget once and every solve it
//! performs on that thread honors it. Thread counts only partition
//! work; they never change the arithmetic, so results are bit-identical
//! under any budget.

use std::cell::Cell;

thread_local! {
    /// 0 means "no cap": fall back to `available_parallelism()`.
    static THREAD_BUDGET: Cell<usize> = const { Cell::new(0) };
}

/// Runs `f` with the calling thread's solver fan-out capped at
/// `threads` worker threads (values below 1 are treated as 1). The
/// previous cap is restored afterwards, even on panic.
pub fn with_thread_budget<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_BUDGET.with(|b| b.set(self.0));
        }
    }
    let previous = THREAD_BUDGET.with(|b| b.replace(threads.max(1)));
    let _restore = Restore(previous);
    f()
}

/// The worker-thread count the factorization kernels may fan out to on
/// the calling thread: the innermost [`with_thread_budget`] cap, or
/// `available_parallelism()` when uncapped.
pub fn effective_threads() -> usize {
    let budget = THREAD_BUDGET.with(Cell::get);
    if budget > 0 {
        budget
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncapped_matches_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(effective_threads(), cores);
    }

    #[test]
    fn budget_caps_and_restores() {
        let inner = with_thread_budget(2, effective_threads);
        assert_eq!(inner, 2);
        let nested = with_thread_budget(4, || with_thread_budget(1, effective_threads));
        assert_eq!(nested, 1);
        // Restored after the scope ends.
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(effective_threads(), cores);
    }

    #[test]
    fn zero_budget_clamps_to_one() {
        assert_eq!(with_thread_budget(0, effective_threads), 1);
    }

    #[test]
    fn budget_is_per_thread() {
        with_thread_budget(1, || {
            let seen = std::thread::scope(|s| s.spawn(effective_threads).join().unwrap());
            // A freshly spawned thread has no cap.
            let cores = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            assert_eq!(seen, cores);
            assert_eq!(effective_threads(), 1);
        });
    }
}
