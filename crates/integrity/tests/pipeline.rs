//! Pipeline contract tests: the strict no-op on clean hosts (across
//! every substrate kind, volatile and store-backed), the heal ladder's
//! fast-path verification, escalation classification, and the budget
//! policies.

use milr_core::{Milr, MilrConfig};
use milr_integrity::{
    Budget, EscalationPolicy, IntegrityError, IntegrityPipeline, Journaled, ModelHost,
    RoundOutcome, Volatile,
};
use milr_store::{Store, StoreOptions};
use milr_substrate::SubstrateKind;
use std::path::PathBuf;

fn model() -> milr_nn::Sequential {
    // Conv 0 is fully recoverable (exact heals); conv 4 has
    // partial-recoverability geometry (whole-layer corruption exceeds
    // MILR's recoverable set) — the escalation target.
    milr_models::serving_probe(77)
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("milr-integrity-{}-{name}.milr", std::process::id()))
}

#[test]
fn clean_host_is_a_strict_noop_on_every_substrate() {
    let golden = model();
    for kind in SubstrateKind::ALL {
        let host = ModelHost::new(&golden, &|c| kind.store(c));
        let mut milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
        let artifacts_before = milr.to_bytes();
        let mut pipeline = IntegrityPipeline::new(EscalationPolicy::Fail, Budget::default());
        let outcome = pipeline.run(&host, &mut milr, &mut Volatile).unwrap();
        assert_eq!(
            outcome,
            RoundOutcome::Clean { reanchored: false },
            "{kind}: a clean host must not re-anchor"
        );
        let report = pipeline.report();
        assert!(report.is_noop(), "{kind}: {report:?}");
        assert_eq!(report.full_detects, 1, "{kind}");
        assert_eq!(report.heal_rounds, 0, "{kind}");
        // Idempotent: a second run is another strict no-op, and the
        // protection instance was never replaced.
        let outcome = pipeline.run(&host, &mut milr, &mut Volatile).unwrap();
        assert_eq!(outcome, RoundOutcome::Clean { reanchored: false });
        assert!(pipeline.report().is_noop(), "{kind}");
        assert_eq!(milr.to_bytes(), artifacts_before, "{kind}: milr replaced");
    }
}

#[test]
fn clean_store_backed_host_leaves_the_container_untouched() {
    let golden = model();
    for kind in SubstrateKind::ALL {
        let path = temp(&format!("noop-{kind:?}"));
        Store::create(
            &path,
            &golden,
            MilrConfig::default(),
            StoreOptions {
                kind,
                page_weights: 32,
            },
        )
        .unwrap();
        let bytes_before = std::fs::read(&path).unwrap();
        let mut store = Store::open(&path).unwrap();
        let host = ModelHost::from_parts(store.template().clone(), store.open_substrates(8));
        let mut milr = store.milr().clone();
        let mut pipeline = IntegrityPipeline::new(EscalationPolicy::Fail, Budget::default());
        let (scrub, outcome) = {
            let mut durability = Journaled::strict(&mut store);
            let scrub = pipeline.scrub_full(&host, &mut durability).unwrap();
            let outcome = pipeline.run(&host, &mut milr, &mut durability).unwrap();
            (scrub, outcome)
        };
        assert!(scrub.is_clean(), "{kind}");
        assert_eq!(outcome, RoundOutcome::Clean { reanchored: false }, "{kind}");
        assert!(
            pipeline.report().is_noop(),
            "{kind}: {:?}",
            pipeline.report()
        );
        drop(host);
        drop(store);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            bytes_before,
            "{kind}: a no-op must not rewrite the container"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn heal_reprotects_and_verifies_only_the_flagged_layer() {
    let golden = model();
    let host = ModelHost::new(&golden, &|c| SubstrateKind::Plain.store(c));
    let mut milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
    let checkable = milr.checkable_count();
    host.corrupt_weight(0, 13);
    let mut pipeline = IntegrityPipeline::new(EscalationPolicy::Quarantine, Budget::default());
    let outcome = pipeline.run(&host, &mut milr, &mut Volatile).unwrap();
    assert_eq!(outcome, RoundOutcome::Clean { reanchored: false });
    assert_eq!(pipeline.last_flagged(), &[0]);
    let report = pipeline.report();
    assert_eq!(report.heal_rounds, 1);
    assert_eq!(report.layers_healed, 1);
    assert_eq!(report.reprotects, 1, "healed episodes re-protect");
    assert_eq!(report.anchors, 0, "volatile: nothing durable to anchor");
    // Fast path: the verify re-checked 1 layer and skipped the rest.
    assert_eq!(report.fast_verifies, 1);
    assert_eq!(report.layers_skipped, checkable - 1);
    // The heal restored golden bits and the new baseline detects clean.
    let live = host.materialize();
    assert!(milr.detect(&live).unwrap().is_clean());
    let golden_bits: Vec<u32> = golden.layers()[0]
        .params()
        .unwrap()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let live_bits: Vec<u32> = live.layers()[0]
        .params()
        .unwrap()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(golden_bits, live_bits);
}

#[test]
fn peer_repair_policy_escalates_beyond_capacity_damage() {
    let golden = model();
    let host = ModelHost::new(&golden, &|c| SubstrateKind::Plain.store(c));
    let healthy = ModelHost::new(&golden, &|c| SubstrateKind::Plain.store(c));
    let mut milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
    // Whole-layer corruption of the partial-recoverability conv: MILR's
    // recovery comes back min-norm, which PeerRepair refuses to serve.
    host.corrupt_layer(4);
    let mut pipeline = IntegrityPipeline::new(EscalationPolicy::PeerRepair, Budget::default());
    let outcome = pipeline
        .heal_round(&host, &mut milr, &mut Volatile)
        .unwrap();
    let RoundOutcome::Escalate { escalated, .. } = outcome else {
        panic!("whole-layer damage must escalate, got {outcome:?}");
    };
    assert_eq!(escalated, vec![4]);
    assert_eq!(pipeline.report().layers_escalated, 1);
    // The escalated layer's shard was left untouched (still corrupt).
    assert!(!milr.detect(&host.materialize()).unwrap().is_clean());
    // Mini peer repair: import the healthy twin's raw image, then run
    // the engine's re-admission tail.
    host.import_layer_raw(4, &healthy.store().export_shard_raw(2))
        .unwrap();
    assert!(milr.detect(&host.materialize()).unwrap().is_clean());
    pipeline
        .reprotect_and_anchor(&host, &mut milr, &mut Volatile)
        .unwrap();
    assert_eq!(pipeline.report().reprotects, 1);
    // Bit-exact after import: the healed model equals the golden one.
    let live = host.materialize();
    for (a, b) in golden.layers().iter().zip(live.layers().iter()) {
        if let (Some(p), Some(q)) = (a.params(), b.params()) {
            let pa: Vec<u32> = p.data().iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = q.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(pa, pb);
        }
    }
}

#[test]
fn gave_up_episode_grants_the_next_one_a_fresh_budget() {
    // Regression: the threaded server drives one long-lived pipeline;
    // a budget-exhausted episode must not leave the engine permanently
    // exhausted or later quarantines would give up instantly without
    // ever detecting or healing.
    let golden = model();
    let host = ModelHost::new(&golden, &|c| SubstrateKind::Plain.store(c));
    let mut milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
    // Wreck every parameterized layer: recovery cannot converge.
    for &layer in host.param_layers() {
        host.corrupt_layer(layer);
    }
    let mut pipeline = IntegrityPipeline::new(
        EscalationPolicy::Quarantine,
        Budget {
            max_heal_rounds: 2,
            ..Budget::default()
        },
    );
    let mut gave_up = false;
    for _ in 0..4 {
        match pipeline
            .heal_round(&host, &mut milr, &mut Volatile)
            .unwrap()
        {
            RoundOutcome::Retry { .. } => {}
            RoundOutcome::GaveUp { flagged } => {
                assert!(!flagged.is_empty());
                gave_up = true;
                break;
            }
            other => panic!("unconvergent damage cannot end {other:?}"),
        }
    }
    assert!(gave_up, "two-round budget must exhaust on total corruption");
    assert!(
        !pipeline.budget_exhausted(),
        "giving up must re-arm the budget for the next episode"
    );
    // The next episode works normally: restore the host (as a peer
    // repair or later scrub would) and the pipeline heals fresh damage
    // within its budget instead of giving up on sight.
    let healthy = ModelHost::new(&golden, &|c| SubstrateKind::Plain.store(c));
    for (shard, &layer) in healthy.param_layers().iter().enumerate() {
        host.import_layer_raw(layer, &healthy.store().export_shard_raw(shard))
            .unwrap();
    }
    host.corrupt_weight(0, 3);
    let outcome = pipeline.run(&host, &mut milr, &mut Volatile).unwrap();
    assert_eq!(outcome, RoundOutcome::Clean { reanchored: false });
    assert!(milr.detect(&host.materialize()).unwrap().is_clean());
}

#[test]
fn reprotect_gate_runs_a_full_detect_before_rebaselining() {
    // A gated pipeline (threaded hosts) must certify the exact
    // snapshot it re-protects with a full detection pass — observable
    // as a second full detect on a healed single-round episode.
    let golden = model();
    let host = ModelHost::new(&golden, &|c| SubstrateKind::Plain.store(c));
    let mut milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
    host.corrupt_weight(0, 13);
    let mut pipeline = IntegrityPipeline::new(EscalationPolicy::Quarantine, Budget::default())
        .with_reprotect_gate();
    let outcome = pipeline.run(&host, &mut milr, &mut Volatile).unwrap();
    assert_eq!(outcome, RoundOutcome::Clean { reanchored: false });
    let report = pipeline.report();
    assert_eq!(
        report.full_detects, 2,
        "opening detect + the closing Reprotect gate"
    );
    assert_eq!(report.fast_verifies, 1);
    assert_eq!(report.reprotects, 1);
    assert!(milr.detect(&host.materialize()).unwrap().is_clean());
    // An ungated clean no-op stays a single detect either way.
    let outcome = pipeline.run(&host, &mut milr, &mut Volatile).unwrap();
    assert_eq!(outcome, RoundOutcome::Clean { reanchored: false });
    assert_eq!(pipeline.report().full_detects, 3);
}

#[test]
fn exhausted_budget_fails_or_gives_up_by_policy() {
    let golden = model();
    for (policy, expect_gave_up) in [
        (EscalationPolicy::Fail, false),
        (EscalationPolicy::Quarantine, true),
    ] {
        let host = ModelHost::new(&golden, &|c| SubstrateKind::Plain.store(c));
        let mut milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
        host.corrupt_weight(0, 7);
        // A zero-round budget makes any flagged detection exhaust
        // immediately.
        let mut pipeline = IntegrityPipeline::new(
            policy,
            Budget {
                max_heal_rounds: 0,
                ..Budget::default()
            },
        );
        let result = pipeline.heal_round(&host, &mut milr, &mut Volatile);
        if expect_gave_up {
            let outcome = result.unwrap();
            assert_eq!(outcome, RoundOutcome::GaveUp { flagged: vec![0] });
            // Nothing was healed: giving up leaves the damage for the
            // next scrub cycle.
            assert_eq!(pipeline.report().layers_healed, 0);
        } else {
            match result {
                Err(IntegrityError::BudgetExhausted { rounds, flagged }) => {
                    assert_eq!(rounds, 0);
                    assert_eq!(flagged, vec![0]);
                }
                other => panic!("Fail policy must error on exhaustion, got {other:?}"),
            }
        }
    }
}
