//! Quantized-substrate end-to-end contracts: weights stored on the
//! int8/fp16 grid survive the full store → inject → scrub → heal
//! journey **bit-exactly**, and the integer-ring recovery never enters
//! the f32 ulp-snap search.
//!
//! These tests live in their own binary on purpose: the ulp-snap
//! counter is process-global, so keeping every test here on a quantized
//! grid makes `ulp_snap_searches() == 0` a meaningful assertion even
//! under the parallel test runner.

use milr_core::{ulp_snap_searches, Milr, MilrConfig, WeightGrid};
use milr_integrity::{
    Budget, EscalationPolicy, IntegrityPipeline, Journaled, ModelHost, RoundOutcome, Volatile,
};
use milr_store::{Store, StoreOptions};
use milr_substrate::SubstrateKind;

/// The pipeline probe model with every parameter snapped onto `grid`,
/// so a quantized substrate stores the golden bits exactly.
fn snapped_model(grid: WeightGrid) -> milr_nn::Sequential {
    let mut m = milr_models::serving_probe(77);
    for layer in m.layers_mut() {
        if let Some(p) = layer.params_mut() {
            for v in p.data_mut() {
                *v = grid.snap(*v);
            }
        }
    }
    m
}

fn config(grid: WeightGrid) -> MilrConfig {
    MilrConfig {
        weight_grid: grid,
        ..MilrConfig::default()
    }
}

fn assert_bits_equal(golden: &milr_nn::Sequential, live: &milr_nn::Sequential, tag: &str) {
    for (i, (a, b)) in golden.layers().iter().zip(live.layers().iter()).enumerate() {
        if let (Some(p), Some(q)) = (a.params(), b.params()) {
            let pa: Vec<u32> = p.data().iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = q.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(pa, pb, "{tag}: layer {i} diverged from golden bits");
        }
    }
}

#[test]
fn int8_store_inject_scrub_heal_is_bit_exact_without_ulp_walk() {
    let golden = snapped_model(WeightGrid::Int8);
    for kind in [SubstrateKind::Int8, SubstrateKind::Int8Secded] {
        let host = ModelHost::new(&golden, &|c| kind.store(c));
        let mut milr = Milr::protect(&golden, config(WeightGrid::Int8)).unwrap();
        // Clean round trip first: the quantized store holds the golden
        // bits exactly.
        assert_bits_equal(&golden, &host.materialize(), kind.name());

        // Inject: a raw burst inside one weight of conv layer 0 —
        // beyond single-bit for the SECDED arm, so it survives scrub
        // and forces a MILR heal.
        let layer = host.param_layers()[0];
        host.corrupt_weight(layer, 5);
        let summary = host.store().scrub();
        if kind == SubstrateKind::Int8Secded {
            assert!(
                summary.uncorrectable >= 1,
                "{kind}: a multi-bit burst must defeat SECDED"
            );
        } else {
            assert!(
                summary.is_clean(),
                "{kind}: no code layer, scrub is a no-op"
            );
        }
        assert_ne!(
            host.materialize().layers()[layer].params().unwrap().data()[5],
            golden.layers()[layer].params().unwrap().data()[5],
            "{kind}: injection did not corrupt the weight"
        );

        // Heal: detection flags the layer; the integer-ring solve lands
        // on the golden grid points exactly.
        let mut pipeline = IntegrityPipeline::new(EscalationPolicy::Quarantine, Budget::default());
        let outcome = pipeline.run(&host, &mut milr, &mut Volatile).unwrap();
        assert_eq!(outcome, RoundOutcome::Clean { reanchored: false }, "{kind}");
        assert_eq!(pipeline.last_flagged(), &[layer], "{kind}");
        assert!(pipeline.report().layers_healed >= 1, "{kind}");
        assert_bits_equal(&golden, &host.materialize(), kind.name());
        assert!(
            milr.detect(&host.materialize()).unwrap().is_clean(),
            "{kind}"
        );
    }
    assert_eq!(
        ulp_snap_searches(),
        0,
        "int8 recovery must never enter the f32 ulp-snap walk"
    );
}

#[test]
fn fp16_heal_is_bit_exact_without_ulp_walk() {
    let golden = snapped_model(WeightGrid::Fp16);
    for kind in [SubstrateKind::Fp16, SubstrateKind::Fp16Secded] {
        let host = ModelHost::new(&golden, &|c| kind.store(c));
        let mut milr = Milr::protect(&golden, config(WeightGrid::Fp16)).unwrap();
        assert_bits_equal(&golden, &host.materialize(), kind.name());
        let layer = host.param_layers()[0];
        host.corrupt_weight(layer, 2);
        host.store().scrub();
        let mut pipeline = IntegrityPipeline::new(EscalationPolicy::Quarantine, Budget::default());
        let outcome = pipeline.run(&host, &mut milr, &mut Volatile).unwrap();
        assert_eq!(outcome, RoundOutcome::Clean { reanchored: false }, "{kind}");
        assert_bits_equal(&golden, &host.materialize(), kind.name());
    }
    assert_eq!(
        ulp_snap_searches(),
        0,
        "fp16 recovery must never enter the f32 ulp-snap walk"
    );
}

#[test]
fn secded_scrub_alone_repairs_single_bit_faults_in_quantized_pages() {
    let golden = snapped_model(WeightGrid::Int8);
    let host = ModelHost::new(&golden, &|c| SubstrateKind::Int8Secded.store(c));
    // One bit per code word across three different words: all within
    // SECDED's per-word budget.
    let (r_lo, r_hi) = host.store().shard_raw_range(0);
    for word in 0..3 {
        let bit = r_lo + word * 39 + 7 + word;
        assert!(bit < r_hi);
        host.store().flip_raw_bit(bit);
    }
    let summary = host.store().scrub();
    assert_eq!(summary.corrected, 3);
    assert_eq!(summary.uncorrectable, 0);
    assert_bits_equal(&golden, &host.materialize(), "int8+secded scrub");
    assert!(host.store().scrub().is_clean(), "correction must persist");
}

#[test]
fn quantized_store_container_roundtrips_grid_and_weights() {
    let golden = snapped_model(WeightGrid::Int8);
    let cfg = config(WeightGrid::Int8);
    for kind in [SubstrateKind::Int8, SubstrateKind::Int8Secded] {
        let path = std::env::temp_dir().join(format!(
            "milr-integrity-quant-{}-{kind:?}.milr",
            std::process::id()
        ));
        Store::create(
            &path,
            &golden,
            cfg,
            StoreOptions {
                kind,
                page_weights: 32,
            },
        )
        .unwrap();
        let mut store = Store::open(&path).unwrap();
        assert_eq!(
            store.milr().config().weight_grid,
            WeightGrid::Int8,
            "{kind}"
        );
        let host = ModelHost::from_parts(store.template().clone(), store.open_substrates(8));
        assert_bits_equal(&golden, &host.materialize(), kind.name());
        // A clean pipeline round over the container is a strict no-op.
        let mut milr = store.milr().clone();
        let mut pipeline = IntegrityPipeline::new(EscalationPolicy::Fail, Budget::default());
        let outcome = {
            let mut durability = Journaled::strict(&mut store);
            pipeline.run(&host, &mut milr, &mut durability).unwrap()
        };
        assert_eq!(outcome, RoundOutcome::Clean { reanchored: false }, "{kind}");
        assert!(pipeline.report().is_noop(), "{kind}");
        drop(host);
        drop(store);
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(ulp_snap_searches(), 0);
}
