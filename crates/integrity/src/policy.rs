//! The three pluggable policies parameterizing the pipeline: how heals
//! become durable ([`DurabilityPolicy`]), what happens to damage the
//! engine cannot heal exactly ([`EscalationPolicy`]), and how many
//! heal rounds an episode may spend ([`Budget`]).

use crate::host::ModelHost;
use crate::IntegrityError;
use milr_core::Milr;
use milr_nn::Sequential;
use milr_obs::{SpanHandle, SpanTree};
use milr_store::Store;

/// Heal rounds one episode may spend before the engine declares the
/// damage unconvergent. This is **the** workspace-wide default: the
/// cold-start loop, the online server's recovery thread, and both
/// simulators used to carry their own copies of this constant.
pub const DEFAULT_HEAL_ROUNDS: usize = 8;

/// Donor attempts a fleet repair may spend waiting for a healthy peer
/// before concluding replication cannot help.
pub const DEFAULT_DONOR_RETRIES: usize = 32;

/// The heal-round budget of one quarantine episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Heal rounds (detect → recover → verify) before giving up.
    pub max_heal_rounds: usize,
    /// Peer-repair donor retries before reporting
    /// "no healthy peer" (only consulted by fleet drivers).
    pub max_donor_retries: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_heal_rounds: DEFAULT_HEAL_ROUNDS,
            max_donor_retries: DEFAULT_DONOR_RETRIES,
        }
    }
}

/// What the pipeline does with damage beyond an exact heal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscalationPolicy {
    /// Refuse to serve: budget exhaustion is an error
    /// ([`IntegrityError::BudgetExhausted`]). Approximate heals that
    /// pass detection are accepted and re-protected (the paper's
    /// single-instance behaviour). Used by scrub-on-load cold starts.
    Fail,
    /// Give up and resume: budget exhaustion returns
    /// [`RoundOutcome::GaveUp`](crate::RoundOutcome::GaveUp) so the
    /// service keeps serving and the next scrub cycle re-quarantines.
    /// Approximate heals are accepted like [`EscalationPolicy::Fail`].
    /// Used by the online server and the serving simulator.
    Quarantine,
    /// Never serve an approximation: only bit-exact recovery outcomes
    /// are written back; min-norm/failed layers are reported via
    /// [`RoundOutcome::Escalate`](crate::RoundOutcome::Escalate) for a
    /// peer repair. Used by fleet replicas.
    PeerRepair,
}

impl EscalationPolicy {
    /// Stable lowercase name (reports, logs).
    pub fn name(&self) -> &'static str {
        match self {
            EscalationPolicy::Fail => "fail",
            EscalationPolicy::Quarantine => "quarantine",
            EscalationPolicy::PeerRepair => "peer-repair",
        }
    }
}

/// Result of persisting heal write-backs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flushed {
    /// The journal flush committed.
    Committed,
    /// Nothing to persist (volatile substrate).
    Skipped,
    /// A best-effort flush failed; the error was logged and swallowed.
    /// Served outputs stay correct, but the container on disk lags the
    /// served state until a later commit succeeds.
    Failed,
}

/// Result of durably committing a re-anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchored {
    /// The (weights, artifacts) pair swapped in atomically on disk.
    Durable,
    /// No backing store: the re-anchor lives in memory only.
    VolatileOnly,
    /// A best-effort commit failed; logged and swallowed.
    Failed,
}

/// How the pipeline's write-backs and re-anchors reach stable storage.
///
/// The engine calls [`DurabilityPolicy::flush`] after every batch of
/// heal (or ECC-scrub) write-backs and [`DurabilityPolicy::anchor`]
/// when a healed episode re-protects — the policy decides whether that
/// means a journaled flush plus an atomic container swap
/// ([`Journaled`]) or nothing at all ([`Volatile`]).
pub trait DurabilityPolicy {
    /// Persists substrate write-backs (journal flush).
    ///
    /// # Errors
    ///
    /// Strict policies propagate I/O failures; best-effort policies
    /// swallow them into [`Flushed::Failed`].
    fn flush(&mut self, host: &ModelHost) -> Result<Flushed, IntegrityError>;

    /// Durably commits a re-anchor: the freshly re-protected instance
    /// plus the current weight images swap in atomically.
    ///
    /// # Errors
    ///
    /// Strict policies propagate commit failures; best-effort policies
    /// swallow them into [`Anchored::Failed`].
    fn anchor(
        &mut self,
        milr: &Milr,
        live: &Sequential,
        host: &ModelHost,
    ) -> Result<Anchored, IntegrityError>;
}

/// No persistence: heals live only in the substrate's memory. The
/// simulators' policy (and the in-memory server's).
#[derive(Debug, Clone, Copy, Default)]
pub struct Volatile;

impl DurabilityPolicy for Volatile {
    fn flush(&mut self, _host: &ModelHost) -> Result<Flushed, IntegrityError> {
        Ok(Flushed::Skipped)
    }

    fn anchor(
        &mut self,
        _milr: &Milr,
        _live: &Sequential,
        _host: &ModelHost,
    ) -> Result<Anchored, IntegrityError> {
        Ok(Anchored::VolatileOnly)
    }
}

/// Store-journaled write-back: flushes go through the container's redo
/// journal, re-anchors through its shadow-file + atomic-rename commit
/// ([`Store::commit_reanchor`]).
pub struct Journaled<'a> {
    store: &'a mut Store,
    strict: bool,
    /// Span ring + driver clock, when the driver wants re-anchor
    /// commits attributed: each durable anchor pushes one
    /// `reanchor_commit` tree (shadow-write → rename).
    spans: Option<(SpanHandle, Box<dyn FnMut() -> u64 + Send + 'a>)>,
}

impl<'a> Journaled<'a> {
    /// Every durability failure is an error (cold start, fleet
    /// replicas: never admit a host whose container may be stale).
    pub fn strict(store: &'a mut Store) -> Self {
        Journaled {
            store,
            strict: true,
            spans: None,
        }
    }

    /// Durability failures are logged and counted but never interrupt
    /// serving (the online server: the in-memory heal succeeded, the
    /// operator is told the crash-restart guarantee is degraded).
    pub fn best_effort(store: &'a mut Store) -> Self {
        Journaled {
            store,
            strict: false,
            spans: None,
        }
    }

    /// Attaches a span ring and the driver's clock (nanoseconds; wall
    /// since start in live drivers): every durable re-anchor pushes
    /// one `reanchor_commit` span tree whose children time the
    /// shadow-file write and the atomic rename. Purely observational —
    /// commit behaviour and the crash-consistency kill-point protocol
    /// are unchanged.
    pub fn with_spans(
        mut self,
        spans: SpanHandle,
        clock: Box<dyn FnMut() -> u64 + Send + 'a>,
    ) -> Self {
        self.spans = Some((spans, clock));
        self
    }
}

impl std::fmt::Debug for Journaled<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journaled")
            .field("store", &self.store.path())
            .field("strict", &self.strict)
            .field("spans", &self.spans.is_some())
            .finish()
    }
}

impl DurabilityPolicy for Journaled<'_> {
    fn flush(&mut self, host: &ModelHost) -> Result<Flushed, IntegrityError> {
        match host.store().flush() {
            Ok(()) => Ok(Flushed::Committed),
            Err(e) if self.strict => Err(IntegrityError::Substrate(e)),
            Err(e) => {
                eprintln!("milr-integrity: journal flush failed: {e}");
                Ok(Flushed::Failed)
            }
        }
    }

    fn anchor(
        &mut self,
        milr: &Milr,
        live: &Sequential,
        host: &ModelHost,
    ) -> Result<Anchored, IntegrityError> {
        let mut tap = self.spans.take();
        let committed = match &mut tap {
            Some((handle, clock)) => {
                let mut tree = SpanTree::new();
                tree.open(clock(), "reanchor_commit", 0);
                let committed = self.store.commit_reanchor_with_observer(
                    milr,
                    live,
                    host.store(),
                    &mut |step| {
                        let ns = clock();
                        match step {
                            "begin" => tree.open(ns, "shadow-write", 0),
                            "shadow-written" => {
                                tree.close(ns);
                                tree.open(ns, "rename", 0);
                            }
                            "renamed" => tree.close(ns),
                            _ => {}
                        }
                    },
                );
                // A failed commit leaves children open; finish clamps
                // them, so the tree still shows where it stopped.
                handle.push_all(tree.finish(clock()));
                committed
            }
            None => self.store.commit_reanchor(milr, live, host.store()),
        };
        self.spans = tap;
        match committed {
            Ok(()) => Ok(Anchored::Durable),
            Err(e) if self.strict => Err(IntegrityError::Store(e)),
            Err(e) => {
                eprintln!("milr-integrity: durable re-anchor failed: {e}");
                Ok(Anchored::Failed)
            }
        }
    }
}
