//! The substrate-backed model host: the single owner of the served
//! weights.
//!
//! Weights live **only** in a [`SharedSubstrate`] — one shard per
//! parameterized layer, so the scrubber can sweep (and recovery can
//! rewrite) one layer while inference materializes another. The
//! architecture skeleton kept alongside has its parameters zeroed at
//! construction: every forward pass must go through
//! [`ModelHost::materialize`], which decodes the substrate — or, on
//! the serving hot path, through the fused
//! [`ModelHost::forward_batch`], which decodes each layer's shard at
//! most once and caches the plaintext tagged with the shard's epoch.
//!
//! ## The epoch-tagged plaintext cache
//!
//! Detection and healing must always observe real storage, so
//! [`ModelHost::materialize`] decodes the substrate directly every
//! time. Inference does not: steady-state forwards on an untouched
//! layer revalidate a cached decode with one atomic epoch load
//! ([`SharedSubstrate::shard_epoch`]) — no shard `RwLock`, no decrypt,
//! no ECC decode, no allocation. Any write that changes a shard's bits
//! (heal write-back, re-protection, raw import, correcting scrub, and
//! injected faults alike) bumps the shard epoch, so the next forward
//! re-decodes exactly the layers that changed. Fault injection bumping
//! the epoch is what keeps the cache honest: a corrupted shard is
//! re-decoded and served corrupted — as the paper's threat model
//! demands — never served from a stale-clean copy.

use milr_nn::{Result as NnResult, Sequential};
use milr_obs::SpanTree;
use milr_substrate::{ScrubSummary, SharedSubstrate, WeightSubstrate};
use milr_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One cached shard decode: plaintext parameters tagged with the shard
/// epoch they were decoded at.
#[derive(Debug, Clone)]
struct LayerCache {
    epoch: u64,
    params: Arc<Tensor>,
}

/// Cumulative counters for the host's plaintext cache (shared by all
/// clones of a host, like the store itself).
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    retries: AtomicU64,
}

/// Snapshot of the host cache counters; see
/// [`ModelHost::cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostCacheStats {
    /// Forwards of a parameterized layer served from the cache (one
    /// atomic epoch compare, no substrate decode, no shard lock).
    pub hits: u64,
    /// Forwards that had to decode the shard (cold cache or epoch
    /// moved).
    pub misses: u64,
    /// Layer forwards re-run because the shard epoch moved while the
    /// layer was computing (a writer landed mid-forward).
    pub retries: u64,
}

/// The data plane of the service: a weightless architecture skeleton
/// plus the sharded substrate actually holding the parameters. The
/// control plane (a [`milr_core::Milr`] protection instance, owned by
/// the scrubber) detects against and heals what lives here — and can
/// be re-anchored to the healed state without touching the host.
#[derive(Debug, Clone)]
pub struct ModelHost {
    /// Architecture skeleton; parameter tensors are zeroed.
    template: Sequential,
    store: SharedSubstrate,
    /// Layer index of each shard, ascending.
    param_layers: Vec<usize>,
    /// Parameter tensor dims of each shard.
    param_dims: Vec<Vec<usize>>,
    /// Per-shard epoch-tagged plaintext decodes; `RwLock` so concurrent
    /// clean-path readers validate-and-clone without serializing.
    cache: Arc<Vec<RwLock<Option<LayerCache>>>>,
    counters: Arc<CacheCounters>,
}

fn fresh_cache(shards: usize) -> Arc<Vec<RwLock<Option<LayerCache>>>> {
    Arc::new((0..shards).map(|_| RwLock::new(None)).collect())
}

impl ModelHost {
    /// Moves every parameterized layer's weights of `golden` into a
    /// fresh substrate shard built by `build`, and zeroes the
    /// in-memory copies.
    pub fn new(golden: &Sequential, build: &dyn Fn(&[f32]) -> Box<dyn WeightSubstrate>) -> Self {
        let mut template = golden.clone();
        let mut param_layers = Vec::new();
        let mut param_dims = Vec::new();
        let mut parts: Vec<Box<dyn WeightSubstrate>> = Vec::new();
        for (i, layer) in template.layers_mut().iter_mut().enumerate() {
            if let Some(params) = layer.params_mut() {
                param_layers.push(i);
                param_dims.push(params.shape().dims().to_vec());
                parts.push(build(params.data()));
                params.map_in_place(|_| 0.0);
            }
        }
        let cache = fresh_cache(parts.len());
        ModelHost {
            template,
            store: SharedSubstrate::from_parts(parts),
            param_layers,
            param_dims,
            cache,
            counters: Arc::new(CacheCounters::default()),
        }
    }

    /// Assembles a host from pre-built substrate shards — the
    /// cold-start path: `parts` maps layer indices of `template` to
    /// substrates already holding those layers' weights (e.g.
    /// file-backed pages opened from a `milr_store::Store`). The
    /// in-memory skeleton is zeroed exactly like
    /// [`ModelHost::new`] — the substrates are the only weight
    /// source.
    ///
    /// # Panics
    ///
    /// Panics when `parts` does not list exactly the parameterized
    /// layers of `template` (ascending), or a substrate's length
    /// differs from its layer's parameter count.
    pub fn from_parts(
        mut template: Sequential,
        parts: Vec<(usize, Box<dyn WeightSubstrate>)>,
    ) -> Self {
        let mut param_layers = Vec::with_capacity(parts.len());
        let mut param_dims = Vec::with_capacity(parts.len());
        let mut substrates = Vec::with_capacity(parts.len());
        let expected: Vec<usize> = template
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.param_count() > 0)
            .map(|(i, _)| i)
            .collect();
        let got: Vec<usize> = parts.iter().map(|(i, _)| *i).collect();
        assert_eq!(got, expected, "parts must cover the parameterized layers");
        for (layer, sub) in parts {
            let params = template.layers_mut()[layer]
                .params_mut()
                .expect("parts list parameterized layers");
            assert_eq!(
                sub.len(),
                params.numel(),
                "substrate for layer {layer} holds the wrong weight count"
            );
            param_layers.push(layer);
            param_dims.push(params.shape().dims().to_vec());
            params.map_in_place(|_| 0.0);
            substrates.push(sub);
        }
        let cache = fresh_cache(substrates.len());
        ModelHost {
            template,
            store: SharedSubstrate::from_parts(substrates),
            param_layers,
            param_dims,
            cache,
            counters: Arc::new(CacheCounters::default()),
        }
    }

    /// The underlying sharded store (one shard per parameterized
    /// layer).
    pub fn store(&self) -> &SharedSubstrate {
        &self.store
    }

    /// Layer indices backed by substrate shards, ascending (shard `k`
    /// holds layer `param_layers()[k]`).
    pub fn param_layers(&self) -> &[usize] {
        &self.param_layers
    }

    /// Decodes every shard into a runnable model. Each layer's read is
    /// atomic against scrubs/writes of that layer; cross-layer
    /// consistency is the certification protocol's job.
    pub fn materialize(&self) -> Sequential {
        self.materialize_layers(&self.param_layers)
    }

    /// Decodes only the given layers' shards into the (otherwise
    /// zero-weight) skeleton — the scrubber's per-tick path: an
    /// incremental detection chunk only reads its own layers'
    /// parameters, so the other shards are neither locked nor decoded
    /// (on an encrypted substrate that skips the whole-model decrypt
    /// every tick). Layers without a shard are ignored.
    pub fn materialize_layers(&self, layers: &[usize]) -> Sequential {
        let mut model = self.template.clone();
        for &layer in layers {
            if let Ok(shard) = self.param_layers.binary_search(&layer) {
                let data = self.store.read_shard(shard);
                let tensor = Tensor::from_vec(data, &self.param_dims[shard])
                    .expect("shard length fixed at construction");
                *model.layers_mut()[layer]
                    .params_mut()
                    .expect("param layer cannot lose its params") = tensor;
            }
        }
        model
    }

    /// Decoded plaintext parameters of `shard`, served from the
    /// epoch-tagged cache when the shard has not changed since the last
    /// decode. The hit path costs one atomic epoch load plus an
    /// uncontended cache-slot read lock — the shard's own `RwLock` is
    /// never touched. The miss path decodes under the shard read lock
    /// (through [`SharedSubstrate::read_shard_into_versioned`], no
    /// intermediate `Vec`) and installs the result.
    pub fn shard_params(&self, shard: usize) -> (Arc<Tensor>, u64) {
        let current = self.store.shard_epoch(shard);
        if let Some(cached) = self.cache[shard]
            .read()
            .expect("cache poisoned")
            .as_ref()
            .filter(|c| c.epoch == current)
        {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return (cached.params.clone(), cached.epoch);
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let (w_lo, w_hi) = self.store.shard_weight_range(shard);
        let mut data = vec![0.0f32; w_hi - w_lo];
        let epoch = self.store.read_shard_into_versioned(shard, &mut data);
        let params = Arc::new(
            Tensor::from_vec(data, &self.param_dims[shard])
                .expect("shard length fixed at construction"),
        );
        let mut slot = self.cache[shard].write().expect("cache poisoned");
        // Keep whichever decode is newer; epochs only grow.
        if slot.as_ref().is_none_or(|c| c.epoch <= epoch) {
            *slot = Some(LayerCache {
                epoch,
                params: params.clone(),
            });
        }
        (params, epoch)
    }

    /// Runs a stacked `(B, …)` batch through the model with the fused
    /// decode-forward path: each parameterized layer's plaintext comes
    /// from [`shard_params`](ModelHost::shard_params) (cache or direct
    /// shard decode — never a whole-model materialization), and the
    /// layer's epoch is revalidated after its forward. If a writer
    /// landed mid-layer, that layer alone is re-fetched and re-run
    /// (bounded retries; residual cross-layer staleness is exactly the
    /// cross-shard gap the certification ledger already closes).
    /// Parameterless layers run in place on the batch scratch.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_stacked(&self, batch: Tensor) -> NnResult<Tensor> {
        self.forward_stacked_with(batch, &mut |_, _| {})
    }

    /// The layer walk shared by the plain and traced forwards:
    /// `mark(i, true)` fires immediately before layer `i` runs,
    /// `mark(i, false)` immediately after (not fired when the layer
    /// errors — the caller's span tree clamps unclosed spans).
    fn forward_stacked_with(
        &self,
        mut batch: Tensor,
        mark: &mut dyn FnMut(usize, bool),
    ) -> NnResult<Tensor> {
        const MAX_LAYER_RETRIES: u32 = 4;
        for (i, layer) in self.template.layers().iter().enumerate() {
            mark(i, true);
            match self.param_layers.binary_search(&i) {
                Ok(shard) => {
                    let mut attempts = 0;
                    batch = loop {
                        let (params, epoch) = self.shard_params(shard);
                        let out = layer.forward_with_params(&batch, Some(&params))?;
                        if attempts >= MAX_LAYER_RETRIES || self.store.shard_epoch(shard) == epoch {
                            break out;
                        }
                        attempts += 1;
                        self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    };
                }
                Err(_) => batch = layer.forward_owned(batch)?,
            }
            mark(i, false);
        }
        Ok(batch)
    }

    /// Fused batched inference: stacks `examples`, runs
    /// [`forward_stacked`](ModelHost::forward_stacked), splits the
    /// result back into per-example outputs. Bit-identical to
    /// `materialize().forward_batch(examples)` — same arithmetic on
    /// the same decoded weights — without cloning the template or
    /// decoding untouched shards.
    ///
    /// # Errors
    ///
    /// Propagates stacking and layer shape errors.
    pub fn forward_batch(&self, examples: &[Tensor]) -> NnResult<Vec<Tensor>> {
        let stacked = self.template.stack_batch(examples)?;
        let out = self.forward_stacked(stacked)?;
        Sequential::split_batch(&out, examples.len())
    }

    /// [`forward_batch`](ModelHost::forward_batch) with span
    /// attribution: builds `decode` (batch stacking) and `forward`
    /// children — with one `layer` grandchild per model layer — under
    /// whatever span the caller has open in `tree`, stamped via the
    /// caller's `clock` (the host never reads a clock of its own).
    /// Arithmetic is bit-identical to the untraced path.
    ///
    /// # Errors
    ///
    /// Propagates stacking and layer shape errors; on error the
    /// in-flight spans are left open for the caller's
    /// [`SpanTree::finish`](milr_obs::SpanTree::finish) to clamp.
    pub fn forward_batch_traced(
        &self,
        examples: &[Tensor],
        clock: &mut dyn FnMut() -> u64,
        tree: &mut SpanTree,
    ) -> NnResult<Vec<Tensor>> {
        tree.open(clock(), "decode", examples.len() as u64);
        let stacked = self.template.stack_batch(examples)?;
        tree.close(clock());
        tree.open(clock(), "forward", examples.len() as u64);
        let out = self.forward_stacked_with(stacked, &mut |layer, opening| {
            if opening {
                tree.open(clock(), "layer", layer as u64);
            } else {
                tree.close(clock());
            }
        })?;
        tree.close(clock());
        Sequential::split_batch(&out, examples.len())
    }

    /// Drops every cached decode. Epoch validation makes staleness
    /// impossible without this, so it exists for lifecycle seams that
    /// want a cold cache by construction (a fleet replica rejoining
    /// after repair, tests).
    pub fn invalidate_cache(&self) {
        for slot in self.cache.iter() {
            *slot.write().expect("cache poisoned") = None;
        }
    }

    /// Snapshot of the cache's cumulative hit/miss/retry counters
    /// (shared across host clones).
    pub fn cache_stats(&self) -> HostCacheStats {
        HostCacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
        }
    }

    /// Writes the given layers' parameters from `healed` back into
    /// their shards (the recovery write-back path).
    ///
    /// # Panics
    ///
    /// Panics when a given layer is not substrate-backed or `healed`
    /// has mismatched geometry.
    pub fn write_back(&self, healed: &Sequential, layers: &[usize]) {
        for &layer in layers {
            let shard = self
                .param_layers
                .binary_search(&layer)
                .expect("layer is substrate-backed");
            let params = healed.layers()[layer]
                .params()
                .expect("healed layer has params");
            self.store
                .write_shard(shard, params.data())
                .expect("healed geometry matches the shard");
        }
    }

    /// Runs the substrate's own repair pass (e.g. SECDED correction)
    /// over the given layers' shards.
    pub fn scrub_layers(&self, layers: &[usize]) -> ScrubSummary {
        let mut total = ScrubSummary::default();
        for &layer in layers {
            if let Ok(shard) = self.param_layers.binary_search(&layer) {
                total.absorb(&self.store.scrub_shard(shard));
            }
        }
        total
    }

    /// Corrupts one stored weight by flipping its entire raw word
    /// (every raw bit the substrate devotes to that weight) — the
    /// whole-weight error family of the paper's evaluation, injected
    /// under the shard lock like any other storage access.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is not substrate-backed or `weight` is out
    /// of range for it.
    pub fn corrupt_weight(&self, layer: usize, weight: usize) {
        let shard = self
            .param_layers
            .binary_search(&layer)
            .expect("layer is substrate-backed");
        let (w_lo, w_hi) = self.store.shard_weight_range(shard);
        assert!(weight < w_hi - w_lo, "weight {weight} out of range");
        let (r_lo, r_hi) = self.store.shard_raw_range(shard);
        let stride = (r_hi - r_lo) / (w_hi - w_lo);
        for bit in 0..stride.min(32) {
            self.store.flip_raw_bit(r_lo + weight * stride + bit);
        }
    }

    /// Corrupts **every** stored weight of one layer — beyond-capacity
    /// damage for the replication experiments: whole-layer corruption
    /// of a partial-recoverability layer exceeds what MILR can re-solve
    /// exactly, forcing the irrecoverable path (refuse, approximate, or
    /// — in a fleet — repair from a peer).
    ///
    /// # Panics
    ///
    /// Panics when `layer` is not substrate-backed.
    pub fn corrupt_layer(&self, layer: usize) {
        for weight in 0..self.layer_weight_count(layer) {
            self.corrupt_weight(layer, weight);
        }
    }

    /// Replaces one substrate-backed layer's **raw image** with `raw` —
    /// the peer-repair write path: a healthy peer's certified page
    /// bytes overwrite this layer's shard bit-for-bit, superseding any
    /// corrupt or cached state (see
    /// [`SharedSubstrate::import_shard_raw`]).
    ///
    /// # Errors
    ///
    /// Propagates the shard's [`SubstrateError`] (wrong image length,
    /// backing-store failure).
    ///
    /// # Panics
    ///
    /// Panics when `layer` is not substrate-backed.
    pub fn import_layer_raw(
        &self,
        layer: usize,
        raw: &[u8],
    ) -> Result<(), milr_substrate::SubstrateError> {
        let shard = self
            .param_layers
            .binary_search(&layer)
            .expect("layer is substrate-backed");
        self.store.import_shard_raw(shard, raw)
    }

    /// Number of stored weights across all shards.
    pub fn weight_count(&self) -> usize {
        self.store.len()
    }

    /// Parameter count of substrate-backed layer `layer`.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is not substrate-backed.
    pub fn layer_weight_count(&self, layer: usize) -> usize {
        let shard = self
            .param_layers
            .binary_search(&layer)
            .expect("layer is substrate-backed");
        let (lo, hi) = self.store.shard_weight_range(shard);
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_core::{Milr, MilrConfig};
    use milr_nn::Layer;
    use milr_substrate::SubstrateKind;
    use milr_tensor::{ConvSpec, Padding, TensorRng};

    fn model() -> Sequential {
        let mut rng = TensorRng::new(5);
        let mut m = Sequential::new(vec![8, 8, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(6 * 6 * 4, 5, &mut rng).unwrap())
            .unwrap();
        m
    }

    fn host(m: &Sequential) -> ModelHost {
        ModelHost::new(m, &|c| SubstrateKind::Plain.store(c))
    }

    #[test]
    fn materialize_reproduces_golden_bits() {
        let golden = model();
        let h = host(&golden);
        assert_eq!(h.param_layers(), &[0, 1, 3]);
        let seen = h.materialize();
        for (a, b) in golden.layers().iter().zip(seen.layers().iter()) {
            match (a.params(), b.params()) {
                (Some(p), Some(q)) => {
                    let pa: Vec<u32> = p.data().iter().map(|v| v.to_bits()).collect();
                    let pb: Vec<u32> = q.data().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(pa, pb);
                }
                (None, None) => {}
                _ => panic!("param structure diverged"),
            }
        }
        // The template really is weightless: a host whose store is
        // bypassed would serve zeros, not golden weights.
        assert!(h.template.layers()[0]
            .params()
            .unwrap()
            .data()
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn corrupt_detect_recover_roundtrip() {
        let golden = model();
        let milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
        let h = host(&golden);
        h.corrupt_weight(0, 7);
        let mut live = h.materialize();
        assert_ne!(
            live.layers()[0].params().unwrap().data()[7],
            golden.layers()[0].params().unwrap().data()[7]
        );
        let report = milr.detect(&live).unwrap();
        assert_eq!(report.flagged, vec![0]);
        milr.recover_layers(&mut live, &report.flagged).unwrap();
        h.write_back(&live, &report.flagged);
        let healed = h.materialize();
        assert!(milr.detect(&healed).unwrap().is_clean());
    }

    #[test]
    fn scrub_heals_secded_hosted_weights() {
        let golden = model();
        let milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
        let h = ModelHost::new(&golden, &|c| SubstrateKind::Secded.store(c));
        // One raw bit in layer 3's shard: ECC corrects it in place.
        let (r_lo, _) = h.store().shard_raw_range(2);
        h.store().flip_raw_bit(r_lo + 11);
        let summary = h.scrub_layers(&[3]);
        assert_eq!(summary.corrected, 1);
        assert!(milr.detect(&h.materialize()).unwrap().is_clean());
    }

    #[test]
    fn whole_layer_corruption_and_peer_image_import_roundtrip() {
        let golden = model();
        for kind in SubstrateKind::ALL {
            let healthy = ModelHost::new(&golden, &|c| kind.store(c));
            let damaged = ModelHost::new(&golden, &|c| kind.store(c));
            damaged.corrupt_layer(0);
            let seen = damaged.materialize_layers(&[0]);
            let diverged = seen.layers()[0]
                .params()
                .unwrap()
                .data()
                .iter()
                .zip(golden.layers()[0].params().unwrap().data())
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
            assert!(diverged >= 30, "{kind}: only {diverged}/36 corrupted");
            // Import the healthy twin's raw image: bits restored.
            damaged
                .import_layer_raw(0, &healthy.store().export_shard_raw(0))
                .unwrap();
            assert_eq!(
                damaged.store().export_shard_raw(0),
                healthy.store().export_shard_raw(0),
                "{kind}"
            );
            let healed = damaged.materialize();
            let pa: Vec<u32> = golden.layers()[0]
                .params()
                .unwrap()
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let pb: Vec<u32> = healed.layers()[0]
                .params()
                .unwrap()
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(pa, pb, "{kind}");
        }
    }

    #[test]
    fn layer_weight_counts_match_model() {
        let golden = model();
        let h = host(&golden);
        assert_eq!(h.layer_weight_count(0), 3 * 3 * 4);
        assert_eq!(h.layer_weight_count(1), 4);
        assert_eq!(h.weight_count(), golden.param_count());
    }

    #[test]
    fn fused_forward_matches_materialized_forward_bitwise() {
        let golden = model();
        for kind in SubstrateKind::ALL {
            let h = ModelHost::new(&golden, &|c| kind.store(c));
            let mut rng = TensorRng::new(31);
            let examples: Vec<Tensor> = (0..3).map(|_| rng.uniform_tensor(&[8, 8, 1])).collect();
            let fused = h.forward_batch(&examples).unwrap();
            let materialized = h.materialize().forward_batch(&examples).unwrap();
            for (a, b) in fused.iter().zip(materialized.iter()) {
                let ba: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(ba, bb, "{kind}");
            }
        }
    }

    #[test]
    fn cache_hits_on_clean_path_and_invalidates_on_change() {
        let golden = model();
        let h = ModelHost::new(&golden, &|c| SubstrateKind::Secded.store(c));
        let input = TensorRng::new(7).uniform_tensor(&[8, 8, 1]);
        let examples = vec![input];

        h.forward_batch(&examples).unwrap();
        let cold = h.cache_stats();
        assert_eq!(cold.misses, 3, "one decode per parameterized layer");
        assert_eq!(cold.hits, 0);

        h.forward_batch(&examples).unwrap();
        let warm = h.cache_stats();
        assert_eq!(warm.misses, 3, "steady state decodes nothing");
        assert_eq!(warm.hits, 3);

        // A fault bumps the epoch: the corrupted layer re-decodes (and
        // the corruption is observed — no stale-clean serving).
        h.corrupt_weight(0, 2);
        let seen = h.forward_batch(&examples).unwrap();
        let after_fault = h.cache_stats();
        assert_eq!(after_fault.misses, 4, "only the faulted shard re-decodes");
        assert_eq!(after_fault.hits, 5);
        let clean = h.materialize();
        let _ = seen;
        assert!(clean.layers()[0].params().unwrap().data()[2]
            .to_bits()
            .ne(&golden.layers()[0].params().unwrap().data()[2].to_bits()));

        // Heal write-back bumps again; explicit invalidation still works.
        h.write_back(&golden, &[0]);
        h.forward_batch(&examples).unwrap();
        assert_eq!(h.cache_stats().misses, 5);
        h.invalidate_cache();
        h.forward_batch(&examples).unwrap();
        assert_eq!(h.cache_stats().misses, 8, "cold again after invalidate");
    }

    #[test]
    fn cache_is_shared_across_host_clones() {
        let golden = model();
        let h = host(&golden);
        let clone = h.clone();
        let examples = vec![TensorRng::new(3).uniform_tensor(&[8, 8, 1])];
        h.forward_batch(&examples).unwrap();
        clone.forward_batch(&examples).unwrap();
        let stats = clone.cache_stats();
        assert_eq!(stats.misses, 3, "clone reuses the original's decodes");
        assert_eq!(stats.hits, 3);
    }
}
