//! The integrity state machine: one explicit
//! `Scrub → Detect → Heal → Classify → Escalate → Verify → Reprotect →
//! Anchor` loop, shared by every driver that used to hand-roll it.
//!
//! A pipeline lives as long as its host: recurring **ticks**
//! ([`IntegrityPipeline::tick`]) run the Scrub and Detect stages over a
//! cursor chunk, and a flagged detection starts a **heal episode** —
//! one or more [`IntegrityPipeline::heal_round`] calls, each running
//! Heal → Classify → Escalate → Verify, ending in Reprotect → Anchor
//! once verification comes back clean. Drivers that own the clock
//! (the discrete-event simulators) call `heal_round` once per
//! scheduled event; wall-clock drivers loop with
//! [`IntegrityPipeline::run`].
//!
//! ## The steady-state fast path
//!
//! The engine tracks which layers each episode actually touched (the
//! *suspect set*: layers flagged by detection or rewritten by a heal).
//! Post-heal verification replays only those layers through
//! [`Milr::detect_layers`] instead of re-detecting the whole model.
//! On an `N`-layer model with one flagged layer this turns the hot
//! recovery path's verification from `O(N)` layer replays into `O(1)`;
//! the `integrity_bench` binary measures the win per substrate.
//!
//! The subset check is sound exactly when nothing outside the suspect
//! set can change during the engine call — true for **atomic**
//! drivers: a single-threaded boot (cold start) or a discrete-event
//! simulator whose faults land only between events. A threaded host
//! is different: a fault can land in an unverified layer between the
//! subset verify and the re-protect, and re-protection would bake it
//! into the new CRC baseline where no future scrub could ever see it.
//! Such drivers construct the pipeline
//! [`with_reprotect_gate`](IntegrityPipeline::with_reprotect_gate):
//! before re-protecting, the engine re-detects the **whole** snapshot
//! it is about to protect and loops back into healing if anything new
//! is flagged — restoring the old loops' protect-only-a-fully-verified-
//! snapshot contract while intermediate rounds keep the fast path.

use crate::host::ModelHost;
use crate::policy::{Anchored, Budget, DurabilityPolicy, EscalationPolicy, Flushed};
use crate::report::PipelineReport;
use crate::IntegrityError;
use milr_core::{DetectionReport, Milr};
use milr_obs::{EventKind, SpanHandle, SpanTree, TraceHandle};
use milr_substrate::ScrubSummary;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A callable stage seam: invoked with the stage's name every time the
/// pipeline enters a stage — the store's kill-point observers
/// generalized to any pipeline driver. Chaos campaigns attach one to
/// fire torn writes mid-heal (the hook runs *before* the stage body);
/// crash-consistency suites snapshot backing files from it. Cloning
/// shares the underlying callback.
#[derive(Clone)]
pub struct StageHook(Arc<Mutex<dyn FnMut(&'static str) + Send>>);

impl StageHook {
    /// Wraps a callback.
    pub fn new(f: impl FnMut(&'static str) + Send + 'static) -> Self {
        StageHook(Arc::new(Mutex::new(f)))
    }

    /// Invokes the callback with a stage name.
    pub fn fire(&self, stage: &'static str) {
        (self.0.lock().expect("stage hook poisoned"))(stage);
    }
}

impl std::fmt::Debug for StageHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StageHook")
    }
}

/// The explicit stages of the integrity loop, in order. Carried on
/// timing counters and useful for logging; the pipeline itself
/// advances through them structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Substrate-level repair pass (ECC scrub).
    Scrub,
    /// MILR detection (full pass or cursor chunk).
    Detect,
    /// MILR recovery of the flagged layers.
    Heal,
    /// Partition recovery outcomes into accepted and escalated.
    Classify,
    /// Hand irrecoverable layers to the escalation policy.
    Escalate,
    /// Fast-path re-check of the suspect layers.
    Verify,
    /// Re-protect against the healed state.
    Reprotect,
    /// Durably commit the new (weights, artifacts) pair.
    Anchor,
}

impl Stage {
    /// The stage's static name, as carried on `StageEntered` trace
    /// events.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Scrub => "Scrub",
            Stage::Detect => "Detect",
            Stage::Heal => "Heal",
            Stage::Classify => "Classify",
            Stage::Escalate => "Escalate",
            Stage::Verify => "Verify",
            Stage::Reprotect => "Reprotect",
            Stage::Anchor => "Anchor",
        }
    }
}

/// What one tick's Scrub + Detect stages found.
#[derive(Debug, Clone)]
pub struct TickOutcome {
    /// Substrate scrub counts over the chunk.
    pub scrub: ScrubSummary,
    /// Detection over the chunk.
    pub detection: DetectionReport,
}

/// How one heal round ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundOutcome {
    /// Verification came back clean. If the episode healed anything,
    /// protection was re-anchored to the healed state;
    /// `reanchored` is true when that re-anchor was committed durably.
    Clean {
        /// True when a durable anchor commit succeeded this episode.
        reanchored: bool,
    },
    /// Verification still flags layers and budget remains: call
    /// [`IntegrityPipeline::heal_round`] again (simulators charge
    /// virtual time in between).
    Retry {
        /// The layers still flagged.
        flagged: Vec<usize>,
    },
    /// The round budget is exhausted under
    /// [`EscalationPolicy::Quarantine`]: resume serving; the next
    /// scrub cycle re-quarantines.
    GaveUp {
        /// The layers still flagged.
        flagged: Vec<usize>,
    },
    /// Recovery classified layers beyond exact healing under
    /// [`EscalationPolicy::PeerRepair`]: exact heals (if any) are
    /// written back, the rest await certified pages from a peer.
    Escalate {
        /// Layers healed exactly and written back this round.
        healed: Vec<usize>,
        /// Layers whose recovery came back min-norm or failed; their
        /// substrate shards are left untouched.
        escalated: Vec<usize>,
    },
}

/// The shared integrity engine. See the module docs for the stage
/// walk; construct one per host (policies fixed at construction) and
/// drive it with [`tick`](IntegrityPipeline::tick),
/// [`heal_round`](IntegrityPipeline::heal_round) /
/// [`run`](IntegrityPipeline::run), and — after a peer repair import —
/// [`reprotect_and_anchor`](IntegrityPipeline::reprotect_and_anchor).
#[derive(Debug, Clone)]
pub struct IntegrityPipeline {
    escalation: EscalationPolicy,
    budget: Budget,
    timed: bool,
    /// Concurrent-host mode: re-detect the whole snapshot immediately
    /// before every Reprotect (see the module docs).
    gated: bool,
    /// Heal rounds spent in the current episode.
    rounds: usize,
    /// Layers flagged or rewritten this episode — the fast-path verify
    /// set. Everything outside it kept its clean epoch.
    suspect: Vec<usize>,
    /// Whether this episode changed stored state (gates Reprotect +
    /// Anchor; scrub corrections count as heals).
    healed: bool,
    /// The flag set of the episode's opening full detection.
    last_flagged: Vec<usize>,
    report: PipelineReport,
    /// Structured event sink, when a driver attached one.
    trace: Option<TraceHandle>,
    /// Stage seam callback, when a driver attached one. Fired with the
    /// stage name on every stage entry, before the stage body runs.
    hook: Option<StageHook>,
    /// Completed-span ring, when a driver attached one. Each engine
    /// call (tick, heal round, re-anchor) builds one span tree —
    /// entry → stage → layer — stamped with the driver clock (plus
    /// wall offsets on timed pipelines) and pushes it here.
    spans: Option<SpanHandle>,
    /// In-flight span tree of the current engine call.
    tree: SpanTree,
    /// Wall anchor of the current engine call on timed pipelines, so
    /// span stamps carry intra-call offsets on top of `now`.
    call_started: Option<Instant>,
    /// Source id stamped on emitted events (replica index, or 0).
    src: u32,
    /// The driver's clock, in nanoseconds: virtual time in simulators,
    /// wall time since start in live drivers. Events are stamped with
    /// this value — the pipeline never reads a clock of its own, which
    /// is what keeps sim traces seed-reproducible.
    now: u64,
}

/// Ascending, deduplicated union of two layer sets.
fn union(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
    out.sort_unstable();
    out.dedup();
    out
}

impl IntegrityPipeline {
    /// A pipeline with the given escalation policy and budget, without
    /// stage timing (virtual-clock drivers: keeps embedded reports
    /// seed-deterministic).
    pub fn new(escalation: EscalationPolicy, budget: Budget) -> Self {
        IntegrityPipeline {
            escalation,
            budget,
            timed: false,
            gated: false,
            rounds: 0,
            suspect: Vec::new(),
            healed: false,
            last_flagged: Vec::new(),
            report: PipelineReport::default(),
            trace: None,
            hook: None,
            spans: None,
            tree: SpanTree::new(),
            call_started: None,
            src: 0,
            now: 0,
        }
    }

    /// Attaches a structured trace sink; emitted events carry `src` as
    /// their source id. Tracing never changes pipeline behaviour or
    /// its report — attaching a recorder to a seeded simulation leaves
    /// every golden digest byte-identical.
    pub fn attach_trace(&mut self, trace: TraceHandle, src: u32) {
        self.trace = Some(trace);
        self.src = src;
    }

    /// Attaches a span ring: every subsequent engine call (tick, heal
    /// round, re-anchor) pushes one completed span tree — entry →
    /// stage → layer. Spans are stamped with the driver clock
    /// ([`set_now`](IntegrityPipeline::set_now)), so simulator span
    /// streams are byte-identical per seed; timed pipelines add the
    /// intra-call wall offset on top. Like tracing, attaching spans
    /// never changes behaviour or a report byte.
    pub fn attach_spans(&mut self, spans: SpanHandle) {
        self.spans = Some(spans);
    }

    /// Attaches a stage seam hook, fired with the stage name on every
    /// stage entry (before the stage body). The hook observes — and,
    /// for chaos campaigns, corrupts — storage at exactly the seams
    /// the store's kill-point observers expose for the journal, so
    /// torn-write-mid-heal scenarios run against serve and fleet too.
    pub fn attach_stage_hook(&mut self, hook: StageHook) {
        self.hook = Some(hook);
    }

    /// Sets the driver clock used to stamp subsequently emitted
    /// events. Simulators pass their virtual clock before each engine
    /// call; wall-clock drivers pass elapsed time since start.
    pub fn set_now(&mut self, ns: u64) {
        self.now = ns;
    }

    #[inline]
    fn emit(&self, kind: EventKind) {
        if let Some(trace) = &self.trace {
            trace.emit(self.now, self.src, kind);
        }
    }

    #[inline]
    fn enter(&mut self, stage: Stage) {
        if let Some(hook) = &self.hook {
            hook.fire(stage.name());
        }
        self.emit(EventKind::StageEntered {
            stage: stage.name(),
        });
        if self.spans.is_some() && self.tree.depth() > 0 {
            // Stage children sit flat under the engine-call root:
            // close whatever stage (and its layer children) is open,
            // then open the new one.
            let ns = self.span_now();
            while self.tree.depth() > 1 {
                self.tree.close(ns);
            }
            self.tree.open(ns, stage.name(), 0);
        }
    }

    /// The span stamp for "now": the driver clock, plus the wall
    /// offset into the current engine call on timed pipelines (the
    /// virtual clock never advances mid-call, the wall clock does).
    #[inline]
    fn span_now(&self) -> u64 {
        match &self.call_started {
            Some(t0) => self.now + t0.elapsed().as_nanos() as u64,
            None => self.now,
        }
    }

    /// Opens the root span of one engine call. Any tree left open by
    /// an errored-out previous call is sealed first, so the stream
    /// stays well formed.
    fn span_root(&mut self, name: &'static str, tag: u64) {
        let Some(spans) = self.spans.clone() else {
            return;
        };
        spans.push_all(self.tree.finish(self.span_now()));
        self.call_started = self.timed.then(Instant::now);
        self.tree.open(self.now, name, tag);
    }

    /// Closes the engine call's root span (and any open stage under
    /// it) and pushes the completed tree into the ring.
    fn span_seal(&mut self) {
        let Some(spans) = self.spans.clone() else {
            return;
        };
        spans.push_all(self.tree.finish(self.span_now()));
        self.call_started = None;
    }

    /// Records a zero-width layer child under the currently open
    /// stage span (per-layer wall timing is not observable — the
    /// engine heals and verifies layers in batches — but which layers
    /// a stage touched is).
    fn span_layer(&mut self, layer: usize) {
        if self.spans.is_some() && self.tree.depth() > 1 {
            let ns = self.span_now();
            self.tree.open(ns, "layer", layer as u64);
            self.tree.close(ns);
        }
    }

    /// Enables wall-clock stage timing (live servers, cold starts,
    /// benches).
    pub fn with_wall_timing(mut self) -> Self {
        self.timed = true;
        self
    }

    /// Enables the Reprotect gate for hosts where faults can land
    /// concurrently with the engine call (the threaded server): the
    /// engine re-detects the **whole** snapshot it is about to
    /// re-protect and loops back into healing if anything new is
    /// flagged. Atomic drivers (boot-time cold starts, discrete-event
    /// simulators) omit this and keep the pure fast path.
    pub fn with_reprotect_gate(mut self) -> Self {
        self.gated = true;
        self
    }

    /// The accumulated per-stage report.
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }

    /// Consumes the pipeline, yielding its report.
    pub fn into_report(self) -> PipelineReport {
        self.report
    }

    /// The flag set of the current (or most recent) episode's opening
    /// detection pass.
    pub fn last_flagged(&self) -> &[usize] {
        &self.last_flagged
    }

    /// True when the episode has spent its whole heal-round budget.
    pub fn budget_exhausted(&self) -> bool {
        self.rounds >= self.budget.max_heal_rounds
    }

    /// The budget policy this pipeline runs under.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Whether the current episode has changed stored state.
    pub fn healed(&self) -> bool {
        self.healed
    }

    /// Grants a fresh heal-round budget mid-episode (a fleet replica
    /// re-enters the heal ladder after a rejected peer import). The
    /// next round re-detects from scratch; anything already healed
    /// still gates the eventual re-anchor.
    pub fn reset_budget(&mut self) {
        self.rounds = 0;
        self.suspect.clear();
    }

    fn stamp(&self) -> Option<Instant> {
        self.timed.then(Instant::now)
    }

    fn lap(&mut self, t0: Option<Instant>, stage: Stage) {
        let Some(t0) = t0 else { return };
        let ns = t0.elapsed().as_nanos() as u64;
        let s = &mut self.report.stage_ns;
        match stage {
            Stage::Scrub => s.scrub += ns,
            Stage::Detect => s.detect += ns,
            Stage::Heal | Stage::Classify | Stage::Escalate => s.heal += ns,
            Stage::Verify => s.verify += ns,
            Stage::Reprotect => s.reprotect += ns,
            Stage::Anchor => s.anchor += ns,
        }
    }

    /// Scrub-stage bookkeeping shared by full and chunk scrubs: ECC
    /// corrections are heals — they are flushed through the journal and
    /// make the episode's eventual re-anchor mandatory.
    fn note_scrub(
        &mut self,
        summary: &ScrubSummary,
        host: &ModelHost,
        durability: &mut dyn DurabilityPolicy,
    ) -> Result<(), IntegrityError> {
        self.report.scrub_corrected += summary.corrected;
        self.report.scrub_uncorrectable += summary.uncorrectable;
        if summary.corrected > 0 {
            self.healed = true;
            if durability.flush(host)? == Flushed::Failed {
                self.report.durability_errors += 1;
            }
        }
        Ok(())
    }

    /// The Scrub stage over **every** shard — the cold-start entry:
    /// run the substrate's own repair pass and persist its corrections
    /// before the first detection.
    ///
    /// # Errors
    ///
    /// Propagates strict durability failures.
    pub fn scrub_full(
        &mut self,
        host: &ModelHost,
        durability: &mut dyn DurabilityPolicy,
    ) -> Result<ScrubSummary, IntegrityError> {
        self.span_root("scrub_full", 0);
        self.enter(Stage::Scrub);
        let t = self.stamp();
        let summary = host.store().scrub();
        self.lap(t, Stage::Scrub);
        let noted = self.note_scrub(&summary, host, durability);
        self.span_seal();
        noted?;
        Ok(summary)
    }

    /// One recurring tick: the Scrub and Detect stages over a cursor
    /// chunk. A flagged [`TickOutcome::detection`] is the driver's cue
    /// to quarantine and start calling
    /// [`heal_round`](IntegrityPipeline::heal_round).
    ///
    /// # Errors
    ///
    /// Propagates detection and strict durability failures.
    pub fn tick(
        &mut self,
        host: &ModelHost,
        milr: &Milr,
        chunk: &[usize],
        durability: &mut dyn DurabilityPolicy,
    ) -> Result<TickOutcome, IntegrityError> {
        self.span_root("tick", chunk.len() as u64);
        let outcome = self.tick_inner(host, milr, chunk, durability);
        self.span_seal();
        outcome
    }

    fn tick_inner(
        &mut self,
        host: &ModelHost,
        milr: &Milr,
        chunk: &[usize],
        durability: &mut dyn DurabilityPolicy,
    ) -> Result<TickOutcome, IntegrityError> {
        self.enter(Stage::Scrub);
        let t = self.stamp();
        let scrub = host.scrub_layers(chunk);
        self.lap(t, Stage::Scrub);
        self.note_scrub(&scrub, host, durability)?;
        self.enter(Stage::Detect);
        let t = self.stamp();
        let live = host.materialize_layers(chunk);
        let detection = milr.detect_layers(&live, chunk)?;
        self.lap(t, Stage::Detect);
        self.report.chunk_detects += 1;
        self.report.layers_checked += detection.checks.len();
        for &layer in &detection.flagged {
            self.span_layer(layer);
            self.emit(EventKind::ScrubFlagged {
                layer: layer as u32,
            });
        }
        Ok(TickOutcome { scrub, detection })
    }

    /// One heal round: a full Detect pass, then Heal → Classify →
    /// Escalate → Verify, closing with Reprotect → Anchor when
    /// verification is clean. Each call re-detects from scratch, so
    /// event-driven drivers that let virtual time pass between rounds
    /// (the simulators) start every round from the host's current
    /// state — exactly like the loops this engine replaced.
    ///
    /// Running this on an already-clean host is a strict no-op: no
    /// write-back, no re-protect, no anchor, and a report whose
    /// mutation counters stay zero.
    ///
    /// # Errors
    ///
    /// Propagates detection/recovery/protection failures and strict
    /// durability failures; returns
    /// [`IntegrityError::BudgetExhausted`] when the round budget runs
    /// out under [`EscalationPolicy::Fail`] or
    /// [`EscalationPolicy::PeerRepair`].
    pub fn heal_round(
        &mut self,
        host: &ModelHost,
        milr: &mut Milr,
        durability: &mut dyn DurabilityPolicy,
    ) -> Result<RoundOutcome, IntegrityError> {
        self.span_root("heal_round", self.rounds as u64);
        let outcome = self.heal_round_inner(host, milr, durability);
        self.span_seal();
        outcome
    }

    fn heal_round_inner(
        &mut self,
        host: &ModelHost,
        milr: &mut Milr,
        durability: &mut dyn DurabilityPolicy,
    ) -> Result<RoundOutcome, IntegrityError> {
        // ---- Detect ----------------------------------------------
        self.enter(Stage::Detect);
        let t = self.stamp();
        let live = host.materialize();
        let detection = milr.detect(&live)?;
        self.lap(t, Stage::Detect);
        self.report.full_detects += 1;
        self.report.layers_checked += detection.checks.len();
        if self.rounds == 0 {
            self.last_flagged = detection.flagged.clone();
        }
        self.round_with(detection.flagged, Some(live), host, milr, durability)
    }

    /// The round body past Detect: `flagged` is this round's flag set,
    /// `live` the snapshot it was observed on (when available — the
    /// fast path inside [`run`](IntegrityPipeline::run) carries a
    /// verify's flags without re-materializing).
    fn round_with(
        &mut self,
        flagged: Vec<usize>,
        live: Option<milr_nn::Sequential>,
        host: &ModelHost,
        milr: &mut Milr,
        durability: &mut dyn DurabilityPolicy,
    ) -> Result<RoundOutcome, IntegrityError> {
        if flagged.is_empty() {
            return self.finish_clean(host, milr, durability);
        }
        if self.budget_exhausted() {
            return match self.escalation {
                EscalationPolicy::Fail | EscalationPolicy::PeerRepair => {
                    Err(IntegrityError::BudgetExhausted {
                        rounds: self.rounds,
                        flagged,
                    })
                }
                EscalationPolicy::Quarantine => {
                    // Give the damage back to the scrubber with a fresh
                    // budget: the next quarantine episode must get its
                    // full complement of rounds (layers already healed
                    // this episode still gate the eventual re-anchor).
                    self.rounds = 0;
                    Ok(RoundOutcome::GaveUp { flagged })
                }
            };
        }
        self.rounds += 1;
        self.report.heal_rounds += 1;

        // ---- Heal ------------------------------------------------
        self.enter(Stage::Heal);
        let t = self.stamp();
        let mut live = match live {
            Some(live) => live,
            None => host.materialize(),
        };
        let recovery = milr.recover_layers(&mut live, &flagged)?;
        self.lap(t, Stage::Heal);
        for (layer, outcome) in &recovery.outcomes {
            self.span_layer(*layer);
            if outcome.is_exact() {
                self.report.heals_exact += 1;
            } else {
                self.report.heals_approx += 1;
            }
            self.emit(EventKind::HealOutcome {
                layer: *layer as u32,
                exact: outcome.is_exact(),
            });
        }

        // ---- Classify --------------------------------------------
        self.enter(Stage::Classify);
        let (accepted, escalated): (Vec<usize>, Vec<usize>) = match self.escalation {
            // Never serve an approximation: only bit-exact outcomes
            // are written back, the rest go to a peer.
            EscalationPolicy::PeerRepair => (
                recovery
                    .outcomes
                    .iter()
                    .filter(|(_, o)| o.is_exact())
                    .map(|(i, _)| *i)
                    .collect(),
                recovery.irrecoverable(),
            ),
            // Single-instance policies accept whatever recovery
            // produced; verification (and re-protection) decides.
            _ => (flagged.clone(), Vec::new()),
        };
        if !accepted.is_empty() {
            host.write_back(&live, &accepted);
            self.healed = true;
            self.report.layers_healed += accepted.len();
            if durability.flush(host)? == Flushed::Failed {
                self.report.durability_errors += 1;
            }
        }

        // ---- Escalate --------------------------------------------
        if !escalated.is_empty() {
            self.enter(Stage::Escalate);
            self.report.layers_escalated += escalated.len();
            self.suspect = union(&self.suspect, &accepted);
            return Ok(RoundOutcome::Escalate {
                healed: accepted,
                escalated,
            });
        }

        // ---- Verify (fast path) ----------------------------------
        self.suspect = union(&self.suspect, &flagged);
        self.enter(Stage::Verify);
        let t = self.stamp();
        let live = host.materialize_layers(&self.suspect);
        let verify = milr.detect_layers(&live, &self.suspect)?;
        self.lap(t, Stage::Verify);
        self.report.fast_verifies += 1;
        self.report.layers_checked += verify.checks.len();
        self.report.layers_skipped += milr.checkable_count().saturating_sub(self.suspect.len());
        if verify.is_clean() {
            self.finish_clean(host, milr, durability)
        } else {
            Ok(RoundOutcome::Retry {
                flagged: verify.flagged,
            })
        }
    }

    /// Runs heal rounds back to back until the episode resolves — the
    /// wall-clock drivers' loop (cold start, the online server's
    /// recovery thread). Never returns [`RoundOutcome::Retry`]. Inside
    /// the loop a failed verify's flags feed the next round directly
    /// (no redundant re-detect); the rounds are back to back, so
    /// nothing the opening detect certified can have changed meanwhile
    /// that the closing verification (or, on gated pipelines, the
    /// Reprotect gate) would not catch.
    ///
    /// # Errors
    ///
    /// See [`heal_round`](IntegrityPipeline::heal_round).
    pub fn run(
        &mut self,
        host: &ModelHost,
        milr: &mut Milr,
        durability: &mut dyn DurabilityPolicy,
    ) -> Result<RoundOutcome, IntegrityError> {
        let mut carried: Option<Vec<usize>> = None;
        loop {
            let outcome = match carried.take() {
                Some(flagged) => {
                    self.span_root("heal_round", self.rounds as u64);
                    let outcome = self.round_with(flagged, None, host, milr, durability);
                    self.span_seal();
                    outcome?
                }
                None => self.heal_round(host, milr, durability)?,
            };
            match outcome {
                RoundOutcome::Retry { flagged } => carried = Some(flagged),
                outcome => return Ok(outcome),
            }
        }
    }

    /// The Reprotect and Anchor stages, unconditionally: re-protects
    /// against the current live weights and durably commits the new
    /// (weights, artifacts) pair — the re-admission step after a
    /// peer-repair import, whose caller just ran its own full
    /// verification. Ends the episode.
    ///
    /// Returns true when the anchor was committed durably.
    ///
    /// # Errors
    ///
    /// Propagates protection failures and strict durability failures.
    pub fn reprotect_and_anchor(
        &mut self,
        host: &ModelHost,
        milr: &mut Milr,
        durability: &mut dyn DurabilityPolicy,
    ) -> Result<bool, IntegrityError> {
        self.span_root("reanchor", 0);
        let live = host.materialize();
        let anchored = self.reprotect_snapshot(live, host, milr, durability);
        self.span_seal();
        anchored
    }

    /// Re-protects and anchors exactly `live` — the snapshot the
    /// caller has verified. Ends the episode.
    fn reprotect_snapshot(
        &mut self,
        live: milr_nn::Sequential,
        host: &ModelHost,
        milr: &mut Milr,
        durability: &mut dyn DurabilityPolicy,
    ) -> Result<bool, IntegrityError> {
        self.enter(Stage::Reprotect);
        let t = self.stamp();
        *milr = Milr::protect(&live, *milr.config())?;
        self.lap(t, Stage::Reprotect);
        self.report.reprotects += 1;
        self.enter(Stage::Anchor);
        let t = self.stamp();
        let anchored = match durability.anchor(milr, &live, host)? {
            Anchored::Durable => {
                self.report.anchors += 1;
                true
            }
            Anchored::VolatileOnly => false,
            Anchored::Failed => {
                self.report.durability_errors += 1;
                false
            }
        };
        self.lap(t, Stage::Anchor);
        self.emit(EventKind::Reanchor { durable: anchored });
        self.end_episode();
        Ok(anchored)
    }

    fn finish_clean(
        &mut self,
        host: &ModelHost,
        milr: &mut Milr,
        durability: &mut dyn DurabilityPolicy,
    ) -> Result<RoundOutcome, IntegrityError> {
        if !self.healed {
            // Strict no-op: an already-clean episode neither
            // re-protects nor re-anchors.
            self.end_episode();
            return Ok(RoundOutcome::Clean { reanchored: false });
        }
        let live = host.materialize();
        if self.gated {
            // Reprotect gate (concurrent hosts): only a snapshot that
            // passed a *full* detection may become the new baseline —
            // a fault that landed outside the suspect set during this
            // episode must heal now, not get certified forever.
            self.enter(Stage::Verify);
            let t = self.stamp();
            let detection = milr.detect(&live)?;
            self.lap(t, Stage::Verify);
            self.report.full_detects += 1;
            self.report.layers_checked += detection.checks.len();
            if !detection.is_clean() {
                return self.round_with(detection.flagged, Some(live), host, milr, durability);
            }
        }
        let reanchored = self.reprotect_snapshot(live, host, milr, durability)?;
        Ok(RoundOutcome::Clean { reanchored })
    }

    fn end_episode(&mut self) {
        self.rounds = 0;
        self.suspect.clear();
        self.healed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_sorts_and_dedups() {
        assert_eq!(union(&[4, 0], &[0, 2]), vec![0, 2, 4]);
        assert_eq!(union(&[], &[]), Vec::<usize>::new());
    }
}
