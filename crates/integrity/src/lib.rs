//! # milr-integrity
//!
//! **The one integrity loop.** The paper's contribution is a single
//! logical cycle — detect corrupted layers, reconstruct them from
//! checkpoints, re-verify, re-protect — yet by PR 4 this workspace
//! implemented that cycle five separate times (cold start, the online
//! server's recovery thread, the serving simulator, fleet replicas,
//! and the fleet simulator), each with its own heal-round cap,
//! re-protect ordering, and durability rules. This crate is the one
//! place that loop now lives:
//!
//! ```text
//!   Scrub → Detect → Heal → Classify → Escalate → Verify
//!                                                   │ clean
//!                                                   ▼
//!                                         Reprotect → Anchor
//! ```
//!
//! [`IntegrityPipeline`] walks those stages explicitly, parameterized
//! by three pluggable policies:
//!
//! | policy | choices | decides |
//! |---|---|---|
//! | [`DurabilityPolicy`] | [`Volatile`], [`Journaled`] (strict / best-effort) | how heal write-backs and re-anchors reach stable storage |
//! | [`EscalationPolicy`] | `Fail`, `Quarantine`, `PeerRepair` | what happens beyond an exact heal or past the budget |
//! | [`Budget`] | heal rounds, donor retries | when an episode stops trying |
//!
//! The `recover_layers → Milr::protect → commit_reanchor` ladder —
//! quarantine healing, re-protect ordering, CRC-grid rebaselining —
//! appears **only here**; `milr-serve`, `milr-store` cold starts, and
//! `milr-fleet` drive this engine. [`ModelHost`] (the substrate-backed
//! weight owner every driver shares) lives here too.
//!
//! Every run accumulates a [`PipelineReport`] — per-stage timing and
//! outcome counters, embedded in the serving/fleet/cold-start reports
//! — and the post-heal **fast path** re-verifies only the episode's
//! suspect layers via [`milr_core::Milr::detect_layers`] instead of a
//! full re-detect (see [`pipeline`] module docs).

#![deny(missing_docs)]

mod host;
mod pipeline;
mod policy;
mod report;

pub use host::ModelHost;
pub use pipeline::{IntegrityPipeline, RoundOutcome, Stage, StageHook, TickOutcome};
pub use policy::{
    Anchored, Budget, DurabilityPolicy, EscalationPolicy, Flushed, Journaled, Volatile,
    DEFAULT_DONOR_RETRIES, DEFAULT_HEAL_ROUNDS,
};
pub use report::{PipelineReport, StageNanos};

use milr_core::MilrError;
use milr_store::StoreError;
use milr_substrate::SubstrateError;

/// Errors from the integrity engine.
#[derive(Debug)]
pub enum IntegrityError {
    /// Protection, detection, or recovery failed.
    Milr(MilrError),
    /// A durable anchor commit failed under a strict policy.
    Store(StoreError),
    /// A substrate (journal flush, write-back) rejected an operation
    /// under a strict policy.
    Substrate(SubstrateError),
    /// The heal-round budget ran out with layers still flagged.
    BudgetExhausted {
        /// Rounds spent before giving up.
        rounds: usize,
        /// The layers still flagged.
        flagged: Vec<usize>,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::Milr(e) => write!(f, "protection error: {e}"),
            IntegrityError::Store(e) => write!(f, "store error: {e}"),
            IntegrityError::Substrate(e) => write!(f, "substrate error: {e}"),
            IntegrityError::BudgetExhausted { rounds, flagged } => write!(
                f,
                "healing could not reach a clean state: layers {flagged:?} still flagged after {rounds} rounds"
            ),
        }
    }
}

impl std::error::Error for IntegrityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IntegrityError::Milr(e) => Some(e),
            IntegrityError::Store(e) => Some(e),
            IntegrityError::Substrate(e) => Some(e),
            IntegrityError::BudgetExhausted { .. } => None,
        }
    }
}

impl From<MilrError> for IntegrityError {
    fn from(e: MilrError) -> Self {
        IntegrityError::Milr(e)
    }
}

impl From<StoreError> for IntegrityError {
    fn from(e: StoreError) -> Self {
        IntegrityError::Store(e)
    }
}

impl From<SubstrateError> for IntegrityError {
    fn from(e: SubstrateError) -> Self {
        IntegrityError::Substrate(e)
    }
}

impl From<IntegrityError> for StoreError {
    fn from(e: IntegrityError) -> Self {
        match e {
            IntegrityError::Store(e) => e,
            IntegrityError::Milr(e) => StoreError::Milr(e),
            IntegrityError::Substrate(e) => StoreError::Substrate(e),
            e @ IntegrityError::BudgetExhausted { .. } => StoreError::Corrupt(e.to_string()),
        }
    }
}
