//! Per-stage accounting of one pipeline's lifetime: outcome counters
//! plus cumulative wall time per stage.
//!
//! Counters are deterministic functions of the work performed, so a
//! seeded simulation embedding a [`PipelineReport`] in its run report
//! stays byte-reproducible. Stage timings are only populated when the
//! pipeline was built with wall timing enabled
//! ([`IntegrityPipeline::with_wall_timing`](crate::IntegrityPipeline::with_wall_timing));
//! virtual-clock drivers leave them zero.

use serde::Serialize;

/// Cumulative wall nanoseconds per pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StageNanos {
    /// Substrate scrub passes (ECC sweep).
    pub scrub: u64,
    /// Detection passes (full and incremental chunks).
    pub detect: u64,
    /// MILR recovery solves.
    pub heal: u64,
    /// Post-heal verification (fast-path subset re-checks).
    pub verify: u64,
    /// Re-protection against the healed state.
    pub reprotect: u64,
    /// Durable re-anchor commits.
    pub anchor: u64,
}

impl StageNanos {
    /// Folds another pipeline's stage timings into this one.
    pub fn merge(&mut self, other: &StageNanos) {
        self.scrub += other.scrub;
        self.detect += other.detect;
        self.heal += other.heal;
        self.verify += other.verify;
        self.reprotect += other.reprotect;
        self.anchor += other.anchor;
    }

    /// Renders the timings as a flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"scrub\":{},\"detect\":{},\"heal\":{},",
                "\"verify\":{},\"reprotect\":{},\"anchor\":{}}}"
            ),
            self.scrub, self.detect, self.heal, self.verify, self.reprotect, self.anchor,
        )
    }
}

/// Outcome counters and stage timings of one pipeline's lifetime
/// (ticks and heal episodes accumulate until the driver takes the
/// report). Embedded in `ServeReport`, `FleetReport` (per replica and
/// aggregated), and `ColdStartReport`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct PipelineReport {
    /// Raw words the substrate's own scrub corrected in place.
    pub scrub_corrected: usize,
    /// Raw words with detected-but-uncorrectable substrate errors.
    pub scrub_uncorrectable: usize,
    /// Full detection passes over every checkable layer.
    pub full_detects: usize,
    /// Incremental detection chunks (scrub-cursor ticks).
    pub chunk_detects: usize,
    /// Fast-path verifies: post-heal re-checks over only the suspect
    /// layers instead of a full re-detect.
    pub fast_verifies: usize,
    /// Layer checks actually replayed across all detection passes.
    pub layers_checked: usize,
    /// Layer checks the fast path skipped relative to full re-detects.
    pub layers_skipped: usize,
    /// Heal rounds run (detect → recover → verify).
    pub heal_rounds: usize,
    /// Layer recoveries written back to the substrate.
    pub layers_healed: usize,
    /// Layers classified beyond exact recovery and escalated (peer
    /// repair).
    pub layers_escalated: usize,
    /// Re-protections (the healed state became the new baseline).
    pub reprotects: usize,
    /// Durable re-anchor commits.
    pub anchors: usize,
    /// Best-effort durability operations that failed (logged and
    /// swallowed; the container on disk may lag the served state).
    pub durability_errors: usize,
    /// Recovery outcomes that restored exact golden bits
    /// (CRC-certified solves). Counts every outcome the Heal stage
    /// produced, including ones later escalated instead of written
    /// back — it feeds the heal-exactness SLO, which judges the
    /// *recovery* machinery, not the write-back policy.
    pub heals_exact: usize,
    /// Recovery outcomes that came back min-norm/approximate or
    /// failed outright.
    pub heals_approx: usize,
    /// Cumulative wall time per stage (zero under virtual clocks).
    pub stage_ns: StageNanos,
}

impl PipelineReport {
    /// Folds another pipeline's counters into this one (fleet
    /// aggregation over replicas).
    pub fn merge(&mut self, other: &PipelineReport) {
        self.scrub_corrected += other.scrub_corrected;
        self.scrub_uncorrectable += other.scrub_uncorrectable;
        self.full_detects += other.full_detects;
        self.chunk_detects += other.chunk_detects;
        self.fast_verifies += other.fast_verifies;
        self.layers_checked += other.layers_checked;
        self.layers_skipped += other.layers_skipped;
        self.heal_rounds += other.heal_rounds;
        self.layers_healed += other.layers_healed;
        self.layers_escalated += other.layers_escalated;
        self.reprotects += other.reprotects;
        self.anchors += other.anchors;
        self.durability_errors += other.durability_errors;
        self.heals_exact += other.heals_exact;
        self.heals_approx += other.heals_approx;
        self.stage_ns.merge(&other.stage_ns);
    }

    /// True when the pipeline never changed anything: no scrub
    /// correction, no heal, no escalation, no re-protect, no anchor —
    /// the strict-no-op contract for running over an already-clean
    /// host.
    pub fn is_noop(&self) -> bool {
        self.scrub_corrected == 0
            && self.scrub_uncorrectable == 0
            && self.heal_rounds == 0
            && self.layers_healed == 0
            && self.layers_escalated == 0
            && self.reprotects == 0
            && self.anchors == 0
            && self.durability_errors == 0
    }

    /// Renders the report as a flat JSON object (hand-rolled: the
    /// workspace's serde stub has no serializer).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"scrub_corrected\":{},\"scrub_uncorrectable\":{},",
                "\"full_detects\":{},\"chunk_detects\":{},\"fast_verifies\":{},",
                "\"layers_checked\":{},\"layers_skipped\":{},\"heal_rounds\":{},",
                "\"layers_healed\":{},\"layers_escalated\":{},\"reprotects\":{},",
                "\"anchors\":{},\"durability_errors\":{},",
                "\"heals_exact\":{},\"heals_approx\":{},\"stage_ns\":{}}}"
            ),
            self.scrub_corrected,
            self.scrub_uncorrectable,
            self.full_detects,
            self.chunk_detects,
            self.fast_verifies,
            self.layers_checked,
            self.layers_skipped,
            self.heal_rounds,
            self.layers_healed,
            self.layers_escalated,
            self.reprotects,
            self.anchors,
            self.durability_errors,
            self.heals_exact,
            self.heals_approx,
            self.stage_ns.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = PipelineReport {
            scrub_corrected: 1,
            heal_rounds: 2,
            layers_healed: 3,
            stage_ns: StageNanos {
                heal: 10,
                ..StageNanos::default()
            },
            ..PipelineReport::default()
        };
        let b = PipelineReport {
            scrub_corrected: 4,
            heal_rounds: 1,
            layers_escalated: 2,
            stage_ns: StageNanos {
                heal: 5,
                anchor: 7,
                ..StageNanos::default()
            },
            ..PipelineReport::default()
        };
        a.merge(&b);
        assert_eq!(a.scrub_corrected, 5);
        assert_eq!(a.heal_rounds, 3);
        assert_eq!(a.layers_healed, 3);
        assert_eq!(a.layers_escalated, 2);
        assert_eq!(a.stage_ns.heal, 15);
        assert_eq!(a.stage_ns.anchor, 7);
    }

    #[test]
    fn noop_ignores_read_only_counters() {
        let mut r = PipelineReport::default();
        assert!(r.is_noop());
        r.full_detects = 3;
        r.layers_checked = 9;
        r.layers_skipped = 2;
        assert!(r.is_noop(), "detection alone does not change state");
        r.layers_healed = 1;
        assert!(!r.is_noop());
    }

    #[test]
    fn json_is_flat_and_ordered() {
        let json = PipelineReport::default().to_json();
        assert!(json.starts_with("{\"scrub_corrected\":0"));
        assert!(json.contains("\"stage_ns\":{\"scrub\":0"));
        assert!(json.ends_with("}}"));
    }
}
