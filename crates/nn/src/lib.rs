//! # milr-nn
//!
//! Pure-Rust CNN inference and training substrate — the reproduction's
//! stand-in for TensorFlow.
//!
//! The MILR paper implements its scheme "as a library that could be used
//! with TensorFlow, taking a TensorFlow model as input" (§V-A). This
//! crate provides the equivalent host framework, built from scratch on
//! [`milr_tensor`]:
//!
//! * every layer type the paper handles (§IV): [convolution](Layer::Conv2D),
//!   [dense](Layer::Dense), [bias](Layer::Bias) (split out as its own
//!   layer exactly as the paper does), [activations](Activation),
//!   [max/average pooling](Layer::MaxPool2D), [flatten](Layer::Flatten),
//!   [dropout](Layer::Dropout) and [zero padding](Layer::ZeroPad2D);
//! * a [`Sequential`] model with batched forward inference and parameter
//!   introspection (what MILR checkpoints and recovers);
//! * an SGD-with-momentum [`Trainer`] with full backpropagation, so the
//!   evaluation networks are *trained*, not random;
//! * procedural [`data`] sets standing in for MNIST/CIFAR-10 (offline
//!   substitution documented in DESIGN.md §3).
//!
//! ## Example
//!
//! ```
//! use milr_nn::{Activation, Layer, Sequential};
//! use milr_tensor::{ConvSpec, Padding, Tensor, TensorRng};
//!
//! let mut rng = TensorRng::new(7);
//! let mut model = Sequential::new(vec![28, 28, 1]);
//! model.push(Layer::conv2d_random(3, 1, 8, ConvSpec::new(3, 1, Padding::Valid)?, &mut rng)?)?;
//! model.push(Layer::Activation(Activation::Relu))?;
//! model.push(Layer::Flatten)?;
//! model.push(Layer::dense_random(26 * 26 * 8, 10, &mut rng)?)?;
//! let batch = rng.uniform_tensor(&[2, 28, 28, 1]);
//! let logits = model.forward(&batch)?;
//! assert_eq!(logits.shape().dims(), &[2, 10]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod data;
mod error;
mod layer;
mod model;
mod train;

pub use error::NnError;
pub use layer::{Activation, Layer};
pub use model::Sequential;
pub use train::{Batch, Trainer, TrainerConfig};

/// Result alias for network operations.
pub type Result<T> = std::result::Result<T, NnError>;
