use milr_tensor::TensorError;
use std::fmt;

/// Errors produced by network construction, inference and training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A layer received an input whose shape it cannot process.
    BadInput {
        /// Layer description.
        layer: String,
        /// Per-image input shape received (batch dimension removed).
        input: Vec<usize>,
        /// Explanation.
        reason: String,
    },
    /// A layer was configured inconsistently (e.g. dense weight rows not
    /// matching the incoming feature count).
    BadConfig(String),
    /// Training data was inconsistent (e.g. label count != batch size).
    BadData(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput {
                layer,
                input,
                reason,
            } => write!(f, "layer {layer} cannot accept input {input:?}: {reason}"),
            NnError::BadConfig(msg) => write!(f, "bad layer configuration: {msg}"),
            NnError::BadData(msg) => write!(f, "bad training data: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(TensorError::RankMismatch {
            op: "conv2d",
            expected: 4,
            actual: 2,
        });
        assert!(e.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&e).is_some());
        let cfg = NnError::BadConfig("dense rows".into());
        assert!(std::error::Error::source(&cfg).is_none());
        assert!(cfg.to_string().contains("dense rows"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
