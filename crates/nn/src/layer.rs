use crate::{NnError, Result};
use milr_tensor::{avg_pool2d, conv2d, max_pool2d, ConvSpec, PoolSpec, Tensor, TensorRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Activation functions supported by the substrate.
///
/// The paper's networks use ReLU after every convolution/dense layer and
/// (implicitly) softmax at the head; the remaining variants exist because
/// "other activation functions can be used throughout the network"
/// (§IV-D) and exercise MILR's treat-as-identity recovery path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Numerically-stable softmax over the last axis.
    Softmax,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (linear) activation.
    Identity,
}

impl Activation {
    /// Applies the activation to a tensor.
    pub fn apply(&self, input: &Tensor) -> Tensor {
        match self {
            Activation::Relu => input.map(|x| x.max(0.0)),
            Activation::Sigmoid => input.map(|x| 1.0 / (1.0 + (-x).exp())),
            Activation::Tanh => input.map(|x| x.tanh()),
            Activation::Identity => input.clone(),
            Activation::Softmax => softmax_last_axis(input),
        }
    }
}

fn softmax_last_axis(input: &Tensor) -> Tensor {
    let dims = input.shape().dims();
    if dims.is_empty() {
        return Tensor::ones(&[]);
    }
    let last = dims[dims.len() - 1];
    let rows = input.numel() / last.max(1);
    let mut out = vec![0.0f32; input.numel()];
    let data = input.data();
    for r in 0..rows {
        let row = &data[r * last..(r + 1) * last];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f64;
        for (i, &x) in row.iter().enumerate() {
            let e = ((x - max) as f64).exp();
            out[r * last + i] = e as f32;
            sum += e;
        }
        for o in &mut out[r * last..(r + 1) * last] {
            *o = (*o as f64 / sum) as f32;
        }
    }
    Tensor::from_vec(out, dims).expect("same shape")
}

/// One layer of a [`Sequential`](crate::Sequential) network.
///
/// Bias is deliberately **not** folded into `Conv2D`/`Dense`: the paper
/// treats the bias as "its own layer, as it has its own mathematical
/// operation, and its own relationship between its input, output and
/// parameters" (§IV-E), and MILR's per-layer detection/recovery depends
/// on that separation.
///
/// Fields are public: layers are passive compound data that `milr-core`
/// introspects to build checkpoints, invert passes and re-solve
/// parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution with filter tensor `(F, F, Z, Y)`.
    Conv2D {
        /// Filter bank, shape `(F, F, Z, Y)`.
        filters: Tensor,
        /// Geometry (filter size, stride, padding).
        spec: ConvSpec,
    },
    /// Fully-connected layer with weights `(N, P)`; input `(B, N)`.
    Dense {
        /// Weight matrix, shape `(N, P)`.
        weights: Tensor,
    },
    /// Bias addition along the last axis (`Y` per-filter values after a
    /// convolution, `P` per-column values after a dense layer — §IV-E).
    Bias {
        /// Bias vector, length = size of the input's last axis.
        bias: Tensor,
    },
    /// Parameterless activation layer.
    Activation(Activation),
    /// Max pooling (not invertible; MILR checkpoints its input).
    MaxPool2D(PoolSpec),
    /// Average pooling.
    AvgPool2D(PoolSpec),
    /// Flattens `(B, …)` to `(B, N)` (shape-only; inverted by reshaping
    /// on MILR's backward pass).
    Flatten,
    /// Dropout. Inactive during inference — "essentially ignored"
    /// (§IV-D-d) — and applied stochastically only inside the trainer.
    Dropout {
        /// Fraction of activations dropped during training.
        rate: f32,
    },
    /// Symmetric spatial zero-padding of a `(B, H, W, C)` tensor.
    ZeroPad2D {
        /// Cells added on each spatial side.
        pad: usize,
    },
}

impl Layer {
    /// A convolution layer with He-style random initialization.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for zero-sized dimensions.
    pub fn conv2d_random(
        filter: usize,
        in_channels: usize,
        out_filters: usize,
        spec: ConvSpec,
        rng: &mut TensorRng,
    ) -> Result<Self> {
        if filter == 0 || in_channels == 0 || out_filters == 0 {
            return Err(NnError::BadConfig(
                "convolution dimensions must be positive".into(),
            ));
        }
        if filter != spec.filter {
            return Err(NnError::BadConfig(format!(
                "filter size {filter} disagrees with spec {}",
                spec.filter
            )));
        }
        let fan_in = (filter * filter * in_channels) as f32;
        let scale = (2.0 / fan_in).sqrt();
        let filters = rng
            .uniform_tensor(&[filter, filter, in_channels, out_filters])
            .scale(scale);
        Ok(Layer::Conv2D { filters, spec })
    }

    /// A dense layer with He-style random initialization.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for zero-sized dimensions.
    pub fn dense_random(inputs: usize, outputs: usize, rng: &mut TensorRng) -> Result<Self> {
        if inputs == 0 || outputs == 0 {
            return Err(NnError::BadConfig(
                "dense dimensions must be positive".into(),
            ));
        }
        let scale = (2.0 / inputs as f32).sqrt();
        let weights = rng.uniform_tensor(&[inputs, outputs]).scale(scale);
        Ok(Layer::Dense { weights })
    }

    /// A zero-initialized bias layer for `channels` last-axis features.
    pub fn bias_zero(channels: usize) -> Self {
        Layer::Bias {
            bias: Tensor::zeros(&[channels]),
        }
    }

    /// Short human-readable kind name (used in reports and tables).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Conv2D { .. } => "Conv2D",
            Layer::Dense { .. } => "Dense",
            Layer::Bias { .. } => "Bias",
            Layer::Activation(_) => "Activation",
            Layer::MaxPool2D(_) => "MaxPool2D",
            Layer::AvgPool2D(_) => "AvgPool2D",
            Layer::Flatten => "Flatten",
            Layer::Dropout { .. } => "Dropout",
            Layer::ZeroPad2D { .. } => "ZeroPad2D",
        }
    }

    /// The layer's parameter tensor, if it has one.
    pub fn params(&self) -> Option<&Tensor> {
        match self {
            Layer::Conv2D { filters, .. } => Some(filters),
            Layer::Dense { weights } => Some(weights),
            Layer::Bias { bias } => Some(bias),
            _ => None,
        }
    }

    /// Mutable access to the parameter tensor, if any. Fault injectors
    /// and MILR's recovery both write through this.
    pub fn params_mut(&mut self) -> Option<&mut Tensor> {
        match self {
            Layer::Conv2D { filters, .. } => Some(filters),
            Layer::Dense { weights } => Some(weights),
            Layer::Bias { bias } => Some(bias),
            _ => None,
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.params().map_or(0, Tensor::numel)
    }

    /// Computes the per-image output shape for a per-image input shape
    /// (batch dimension excluded).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when the layer cannot process the
    /// shape and [`NnError::Tensor`] for geometry failures.
    pub fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        let bad = |reason: &str| -> NnError {
            NnError::BadInput {
                layer: self.kind_name().to_string(),
                input: input.to_vec(),
                reason: reason.to_string(),
            }
        };
        match self {
            Layer::Conv2D { filters, spec } => {
                if input.len() != 3 {
                    return Err(bad("expected (H, W, C)"));
                }
                if input[2] != filters.shape().dim(2) {
                    return Err(bad("channel count does not match filters"));
                }
                let (gh, _) = spec.output_dim(input[0])?;
                let (gw, _) = spec.output_dim(input[1])?;
                Ok(vec![gh, gw, filters.shape().dim(3)])
            }
            Layer::Dense { weights } => {
                if input.len() != 1 {
                    return Err(bad("expected flat (N,)"));
                }
                if input[0] != weights.shape().dim(0) {
                    return Err(bad("feature count does not match weight rows"));
                }
                Ok(vec![weights.shape().dim(1)])
            }
            Layer::Bias { bias } => {
                if input.is_empty() || input[input.len() - 1] != bias.numel() {
                    return Err(bad("last axis does not match bias length"));
                }
                Ok(input.to_vec())
            }
            Layer::Activation(_) | Layer::Dropout { .. } => Ok(input.to_vec()),
            Layer::MaxPool2D(spec) | Layer::AvgPool2D(spec) => {
                if input.len() != 3 {
                    return Err(bad("expected (H, W, C)"));
                }
                let gh = spec.output_dim(input[0])?;
                let gw = spec.output_dim(input[1])?;
                Ok(vec![gh, gw, input[2]])
            }
            Layer::Flatten => Ok(vec![input.iter().product()]),
            Layer::ZeroPad2D { pad } => {
                if input.len() != 3 {
                    return Err(bad("expected (H, W, C)"));
                }
                Ok(vec![input[0] + 2 * pad, input[1] + 2 * pad, input[2]])
            }
        }
    }

    /// Runs the layer forward over a batch (first dimension = batch).
    ///
    /// Dropout behaves as identity here; stochastic masking happens only
    /// inside the trainer.
    ///
    /// # Errors
    ///
    /// Returns shape/geometry errors for incompatible inputs.
    pub fn forward(&self, batch: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Conv2D { filters, spec } => Ok(conv2d(batch, filters, spec)?),
            Layer::Dense { weights } => Ok(batch.matmul(weights)?),
            Layer::Bias { bias } => add_bias(batch, bias),
            Layer::Activation(a) => Ok(a.apply(batch)),
            Layer::MaxPool2D(spec) => Ok(max_pool2d(batch, spec)?),
            Layer::AvgPool2D(spec) => Ok(avg_pool2d(batch, spec)?),
            Layer::Flatten => {
                let b = batch.shape().dim(0);
                let rest: usize = batch.shape().dims()[1..].iter().product();
                Ok(batch.reshape(&[b, rest])?)
            }
            Layer::Dropout { .. } => Ok(batch.clone()),
            Layer::ZeroPad2D { pad } => zero_pad(batch, *pad),
        }
    }

    /// [`forward`](Layer::forward) with `params` substituted for the
    /// layer's own parameter tensor — the fused decode-forward entry
    /// point: a serving host keeps a zeroed structural template and
    /// supplies freshly decoded (or cached) plaintext per call, so no
    /// mutable model copy is ever materialized. `None` (and any value
    /// for a parameterless layer) falls back to the layer's own params.
    ///
    /// # Errors
    ///
    /// Returns shape/geometry errors for incompatible inputs or a
    /// `params` tensor whose shape does not fit the layer.
    pub fn forward_with_params(&self, batch: &Tensor, params: Option<&Tensor>) -> Result<Tensor> {
        match (self, params) {
            (Layer::Conv2D { spec, .. }, Some(p)) => Ok(conv2d(batch, p, spec)?),
            (Layer::Dense { .. }, Some(p)) => Ok(batch.matmul(p)?),
            (Layer::Bias { .. }, Some(p)) => add_bias(batch, p),
            _ => self.forward(batch),
        }
    }

    /// [`forward_with_params`](Layer::forward_with_params) taking the
    /// batch by value: shape-preserving layers (bias, element-wise
    /// activations, flatten, dropout) mutate the buffer in place with
    /// bit-identical arithmetic, so a stacked forward reuses one
    /// scratch allocation across those layers instead of allocating an
    /// output tensor per layer. Layers that genuinely change the
    /// element count (conv, dense, pools, padding) still allocate.
    ///
    /// # Errors
    ///
    /// Same as [`forward_with_params`](Layer::forward_with_params).
    pub fn forward_owned_with_params(
        &self,
        mut batch: Tensor,
        params: Option<&Tensor>,
    ) -> Result<Tensor> {
        match self {
            Layer::Bias { bias } => {
                add_bias_in_place(&mut batch, params.unwrap_or(bias))?;
                Ok(batch)
            }
            Layer::Activation(a) => match a {
                // Softmax needs row scratch anyway; reuse the allocating path.
                Activation::Softmax => Ok(softmax_last_axis(&batch)),
                Activation::Relu => {
                    batch.map_in_place(|x| x.max(0.0));
                    Ok(batch)
                }
                Activation::Sigmoid => {
                    batch.map_in_place(|x| 1.0 / (1.0 + (-x).exp()));
                    Ok(batch)
                }
                Activation::Tanh => {
                    batch.map_in_place(|x| x.tanh());
                    Ok(batch)
                }
                Activation::Identity => Ok(batch),
            },
            Layer::Flatten => {
                let b = batch.shape().dim(0);
                let rest: usize = batch.shape().dims()[1..].iter().product();
                batch.reshape_in_place(&[b, rest])?;
                Ok(batch)
            }
            Layer::Dropout { .. } => Ok(batch),
            _ => self.forward_with_params(&batch, params),
        }
    }

    /// [`forward`](Layer::forward) taking the batch by value; see
    /// [`forward_owned_with_params`](Layer::forward_owned_with_params).
    ///
    /// # Errors
    ///
    /// Same as [`forward`](Layer::forward).
    pub fn forward_owned(&self, batch: Tensor) -> Result<Tensor> {
        self.forward_owned_with_params(batch, None)
    }
}

/// Adds `bias[c]` to every element whose last-axis coordinate is `c`.
pub(crate) fn add_bias(batch: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let dims = batch.shape().dims();
    if dims.is_empty() || dims[dims.len() - 1] != bias.numel() {
        return Err(NnError::BadInput {
            layer: "Bias".into(),
            input: dims.to_vec(),
            reason: format!("last axis must equal bias length {}", bias.numel()),
        });
    }
    let c = bias.numel();
    let b = bias.data();
    let mut out = batch.data().to_vec();
    for (i, o) in out.iter_mut().enumerate() {
        *o += b[i % c];
    }
    Ok(Tensor::from_vec(out, dims)?)
}

/// [`add_bias`] without the output allocation: the exact same `+=` per
/// element, applied to the batch buffer directly.
pub(crate) fn add_bias_in_place(batch: &mut Tensor, bias: &Tensor) -> Result<()> {
    if batch.shape().dims().last().copied() != Some(bias.numel()) {
        return Err(NnError::BadInput {
            layer: "Bias".into(),
            input: batch.shape().dims().to_vec(),
            reason: format!("last axis must equal bias length {}", bias.numel()),
        });
    }
    let c = bias.numel();
    let b = bias.data();
    for (i, o) in batch.data_mut().iter_mut().enumerate() {
        *o += b[i % c];
    }
    Ok(())
}

fn zero_pad(batch: &Tensor, pad: usize) -> Result<Tensor> {
    if batch.ndim() != 4 {
        return Err(NnError::BadInput {
            layer: "ZeroPad2D".into(),
            input: batch.shape().dims().to_vec(),
            reason: "expected (B, H, W, C)".into(),
        });
    }
    let (b, h, w, c) = (
        batch.shape().dim(0),
        batch.shape().dim(1),
        batch.shape().dim(2),
        batch.shape().dim(3),
    );
    let (nh, nw) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros(&[b, nh, nw, c]);
    let src = batch.data();
    let dst = out.data_mut();
    for img in 0..b {
        for y in 0..h {
            let src_off = (img * h * w + y * w) * c;
            let dst_off = (img * nh * nw + (y + pad) * nw + pad) * c;
            dst[dst_off..dst_off + w * c].copy_from_slice(&src[src_off..src_off + w * c]);
        }
    }
    Ok(out)
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Conv2D { filters, spec } => write!(
                f,
                "Conv2D(filters={}, stride={}, {:?})",
                filters.shape(),
                spec.stride,
                spec.padding
            ),
            Layer::Dense { weights } => write!(f, "Dense(weights={})", weights.shape()),
            Layer::Bias { bias } => write!(f, "Bias({})", bias.numel()),
            Layer::Activation(a) => write!(f, "Activation({a:?})"),
            Layer::MaxPool2D(s) => write!(f, "MaxPool2D(window={}, stride={})", s.window, s.stride),
            Layer::AvgPool2D(s) => write!(f, "AvgPool2D(window={}, stride={})", s.window, s.stride),
            Layer::Flatten => write!(f, "Flatten"),
            Layer::Dropout { rate } => write!(f, "Dropout({rate})"),
            Layer::ZeroPad2D { pad } => write!(f, "ZeroPad2D({pad})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_tensor::Padding;
    use proptest::prelude::*;

    fn rng() -> TensorRng {
        TensorRng::new(42)
    }

    #[test]
    fn activations_behave() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(Activation::Relu.apply(&t).data(), &[0.0, 0.0, 2.0]);
        assert_eq!(Activation::Identity.apply(&t), t);
        let s = Activation::Sigmoid.apply(&t);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        let th = Activation::Tanh.apply(&t);
        assert!(th.data()[0] < 0.0 && th.data()[2] > 0.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 10.0, 10.0, 10.0], &[2, 3]).unwrap();
        let s = Activation::Softmax.apply(&t);
        for r in 0..2 {
            let sum: f32 = s.row(r).unwrap().iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Monotone: bigger logit, bigger probability.
        assert!(s.at(&[0, 2]).unwrap() > s.at(&[0, 0]).unwrap());
        // Uniform logits give uniform probabilities.
        assert!((s.at(&[1, 0]).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let s = Activation::Softmax.apply(&t);
        assert!(s.data().iter().all(|x| x.is_finite()));
        let sum: f32 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn constructors_validate() {
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        assert!(Layer::conv2d_random(3, 0, 4, spec, &mut rng()).is_err());
        assert!(Layer::conv2d_random(5, 1, 4, spec, &mut rng()).is_err());
        assert!(Layer::dense_random(0, 4, &mut rng()).is_err());
        let conv = Layer::conv2d_random(3, 2, 4, spec, &mut rng()).unwrap();
        assert_eq!(conv.param_count(), 3 * 3 * 2 * 4);
        assert_eq!(Layer::bias_zero(7).param_count(), 7);
    }

    #[test]
    fn param_access_matches_kind() {
        let spec = ConvSpec::new(3, 1, Padding::Same).unwrap();
        let mut layers = vec![
            Layer::conv2d_random(3, 1, 2, spec, &mut rng()).unwrap(),
            Layer::dense_random(4, 2, &mut rng()).unwrap(),
            Layer::bias_zero(3),
        ];
        for l in &mut layers {
            assert!(l.params().is_some());
            assert!(l.params_mut().is_some());
        }
        let mut passive = vec![
            Layer::Activation(Activation::Relu),
            Layer::Flatten,
            Layer::Dropout { rate: 0.5 },
            Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()),
            Layer::ZeroPad2D { pad: 1 },
        ];
        for l in &mut passive {
            assert!(l.params().is_none());
            assert_eq!(l.param_count(), 0);
        }
    }

    #[test]
    fn output_shapes_follow_paper_tables() {
        // Table I first rows: 28x28x1 --3x3 valid--> 26x26x32.
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        let conv = Layer::conv2d_random(3, 1, 32, spec, &mut rng()).unwrap();
        assert_eq!(conv.output_shape(&[28, 28, 1]).unwrap(), vec![26, 26, 32]);
        // Max pooling halves: 24x24x32 -> 12x12x32.
        let pool = Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap());
        assert_eq!(pool.output_shape(&[24, 24, 32]).unwrap(), vec![12, 12, 32]);
        // Dense (6400 -> 256) after flatten of 10x10x64.
        let flat = Layer::Flatten;
        assert_eq!(flat.output_shape(&[10, 10, 64]).unwrap(), vec![6400]);
        let dense = Layer::dense_random(6400, 256, &mut rng()).unwrap();
        assert_eq!(dense.output_shape(&[6400]).unwrap(), vec![256]);
    }

    #[test]
    fn output_shape_rejects_mismatches() {
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        let conv = Layer::conv2d_random(3, 3, 8, spec, &mut rng()).unwrap();
        assert!(conv.output_shape(&[28, 28, 1]).is_err());
        assert!(conv.output_shape(&[28, 28]).is_err());
        let dense = Layer::dense_random(10, 4, &mut rng()).unwrap();
        assert!(dense.output_shape(&[11]).is_err());
        let bias = Layer::bias_zero(5);
        assert!(bias.output_shape(&[4]).is_err());
    }

    #[test]
    fn bias_forward_adds_along_last_axis() {
        let batch = Tensor::zeros(&[2, 2, 2, 3]);
        let bias = Layer::Bias {
            bias: Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap(),
        };
        let out = bias.forward(&batch).unwrap();
        for i in 0..out.numel() {
            assert_eq!(out.data()[i], (i % 3) as f32 + 1.0);
        }
    }

    #[test]
    fn flatten_forward_preserves_batch() {
        let batch = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 2, 3, 2]).unwrap();
        let out = Layer::Flatten.forward(&batch).unwrap();
        assert_eq!(out.shape().dims(), &[2, 12]);
        assert_eq!(out.data(), batch.data());
    }

    #[test]
    fn zero_pad_forward() {
        let batch = Tensor::ones(&[1, 2, 2, 1]);
        let out = Layer::ZeroPad2D { pad: 1 }.forward(&batch).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4, 4, 1]);
        assert_eq!(out.at(&[0, 0, 0, 0]).unwrap(), 0.0);
        assert_eq!(out.at(&[0, 1, 1, 0]).unwrap(), 1.0);
        assert_eq!(out.sum(), 4.0);
    }

    #[test]
    fn dropout_is_identity_at_inference() {
        let batch = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]).unwrap();
        let out = Layer::Dropout { rate: 0.9 }.forward(&batch).unwrap();
        assert_eq!(out, batch);
    }

    #[test]
    fn display_is_informative() {
        let spec = ConvSpec::new(3, 1, Padding::Same).unwrap();
        let conv = Layer::conv2d_random(3, 1, 2, spec, &mut rng()).unwrap();
        assert!(conv.to_string().contains("Conv2D"));
        assert!(Layer::Flatten.to_string().contains("Flatten"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn forward_shape_agrees_with_output_shape(
            h in 4usize..8, c in 1usize..3, y in 1usize..4,
        ) {
            let spec = ConvSpec::new(3, 1, Padding::Same).unwrap();
            let conv = Layer::conv2d_random(3, c, y, spec, &mut rng()).unwrap();
            let batch = TensorRng::new(1).uniform_tensor(&[2, h, h, c]);
            let out = conv.forward(&batch).unwrap();
            let expect = conv.output_shape(&[h, h, c]).unwrap();
            prop_assert_eq!(&out.shape().dims()[1..], &expect[..]);
        }

        #[test]
        fn relu_output_nonnegative(v in proptest::collection::vec(-5.0f32..5.0, 1..32)) {
            let n = v.len();
            let t = Tensor::from_vec(v, &[n]).unwrap();
            let out = Activation::Relu.apply(&t);
            prop_assert!(out.data().iter().all(|&x| x >= 0.0));
        }
    }
}
