//! Procedural datasets standing in for MNIST and CIFAR-10.
//!
//! The paper evaluates on MNIST (28×28×1) and CIFAR-10 (32×32×3). Those
//! image files are not available offline, and nothing in MILR's
//! fault-injection methodology depends on *which* images produced the
//! trained weights — the evaluation metric is accuracy *normalized to the
//! error-free network* on a fixed test set. These generators produce
//! deterministic, seedable, 10-class datasets of the same shapes and
//! enough visual structure for a small CNN to learn genuinely
//! discriminative features (see DESIGN.md §3 for the substitution
//! rationale).
//!
//! * [`digits`] renders parameterized glyph strokes on a 28×28 canvas
//!   with position jitter and pixel noise — the MNIST stand-in.
//! * [`patches`] renders oriented color textures on a 32×32×3 canvas —
//!   the CIFAR-10 stand-in.

use milr_tensor::{Tensor, TensorRng};

/// A labeled image set: `images` is `(N, H, W, C)`, `labels[i]` is the
/// class of image `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Batched images, shape `(N, H, W, C)`.
    pub images: Tensor,
    /// Class labels in `0..10`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the set has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies examples `range` into a contiguous batch.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the dataset.
    pub fn batch(&self, range: std::ops::Range<usize>) -> (Tensor, &[usize]) {
        let dims = self.images.shape().dims();
        let per: usize = dims[1..].iter().product();
        let data = self.images.data()[range.start * per..range.end * per].to_vec();
        let mut shape = dims.to_vec();
        shape[0] = range.end - range.start;
        (
            Tensor::from_vec(data, &shape).expect("slice sized to shape"),
            &self.labels[range.clone()],
        )
    }
}

/// Number of classes in both generated datasets.
pub const CLASSES: usize = 10;

/// Draws a line segment of the given thickness onto a single-channel
/// canvas.
fn draw_line(
    canvas: &mut [f32],
    side: usize,
    (x0, y0): (f32, f32),
    (x1, y1): (f32, f32),
    thickness: f32,
) {
    let steps = (side * 2).max(8);
    for s in 0..=steps {
        let t = s as f32 / steps as f32;
        let cx = x0 + (x1 - x0) * t;
        let cy = y0 + (y1 - y0) * t;
        let r = thickness.ceil() as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                let px = cx as isize + dx;
                let py = cy as isize + dy;
                if px < 0 || py < 0 || px >= side as isize || py >= side as isize {
                    continue;
                }
                let dist2 = (px as f32 - cx).powi(2) + (py as f32 - cy).powi(2);
                if dist2 <= thickness * thickness {
                    canvas[py as usize * side + px as usize] = 1.0;
                }
            }
        }
    }
}

/// Stroke endpoints (in unit coordinates) for each of the ten glyph
/// classes. The glyphs are crude digit-like shapes: distinct stroke
/// topologies that a small CNN separates easily but not trivially once
/// jitter and noise are added.
fn glyph_strokes(class: usize) -> Vec<((f32, f32), (f32, f32))> {
    match class {
        0 => vec![
            ((0.3, 0.2), (0.7, 0.2)),
            ((0.7, 0.2), (0.7, 0.8)),
            ((0.7, 0.8), (0.3, 0.8)),
            ((0.3, 0.8), (0.3, 0.2)),
        ],
        1 => vec![((0.5, 0.2), (0.5, 0.8))],
        2 => vec![
            ((0.3, 0.25), (0.7, 0.25)),
            ((0.7, 0.25), (0.7, 0.5)),
            ((0.7, 0.5), (0.3, 0.5)),
            ((0.3, 0.5), (0.3, 0.8)),
            ((0.3, 0.8), (0.7, 0.8)),
        ],
        3 => vec![
            ((0.3, 0.2), (0.7, 0.2)),
            ((0.7, 0.2), (0.7, 0.8)),
            ((0.3, 0.5), (0.7, 0.5)),
            ((0.3, 0.8), (0.7, 0.8)),
        ],
        4 => vec![
            ((0.3, 0.2), (0.3, 0.5)),
            ((0.3, 0.5), (0.7, 0.5)),
            ((0.7, 0.2), (0.7, 0.8)),
        ],
        5 => vec![
            ((0.7, 0.2), (0.3, 0.2)),
            ((0.3, 0.2), (0.3, 0.5)),
            ((0.3, 0.5), (0.7, 0.5)),
            ((0.7, 0.5), (0.7, 0.8)),
            ((0.7, 0.8), (0.3, 0.8)),
        ],
        6 => vec![
            ((0.7, 0.2), (0.3, 0.35)),
            ((0.3, 0.35), (0.3, 0.8)),
            ((0.3, 0.8), (0.7, 0.8)),
            ((0.7, 0.8), (0.7, 0.55)),
            ((0.7, 0.55), (0.3, 0.55)),
        ],
        7 => vec![((0.3, 0.2), (0.7, 0.2)), ((0.7, 0.2), (0.4, 0.8))],
        8 => vec![
            ((0.3, 0.2), (0.7, 0.2)),
            ((0.3, 0.2), (0.3, 0.8)),
            ((0.7, 0.2), (0.7, 0.8)),
            ((0.3, 0.5), (0.7, 0.5)),
            ((0.3, 0.8), (0.7, 0.8)),
        ],
        9 => vec![
            ((0.7, 0.45), (0.3, 0.45)),
            ((0.3, 0.45), (0.3, 0.2)),
            ((0.3, 0.2), (0.7, 0.2)),
            ((0.7, 0.2), (0.7, 0.8)),
        ],
        _ => panic!("class {class} out of range"),
    }
}

/// Generates `n` glyph images of side `side` (use 28 for the MNIST
/// stand-in), with classes cycling `0..10`.
///
/// Every image gets per-example position jitter, scale jitter, stroke
/// thickness variation and additive pixel noise drawn from `seed`, so two
/// images of the same class are never identical.
pub fn digits(n: usize, side: usize, seed: u64) -> Dataset {
    let mut rng = TensorRng::new(seed);
    let mut data = Vec::with_capacity(n * side * side);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % CLASSES;
        labels.push(class);
        let mut canvas = vec![0.0f32; side * side];
        let jx = rng.uniform() * 0.08;
        let jy = rng.uniform() * 0.08;
        let scale = 1.0 + rng.uniform() * 0.15;
        let thickness = side as f32 * (0.05 + 0.02 * (rng.uniform() + 1.0));
        for ((x0, y0), (x1, y1)) in glyph_strokes(class) {
            let m = |x: f32, j: f32| ((x - 0.5) * scale + 0.5 + j) * side as f32;
            draw_line(
                &mut canvas,
                side,
                (m(x0, jx), m(y0, jy)),
                (m(x1, jx), m(y1, jy)),
                thickness,
            );
        }
        // Additive noise, clamped, then centered to [-0.5, 0.5]:
        // zero-mean inputs keep the deeper twins trainable.
        for p in &mut canvas {
            *p = (*p + rng.uniform() * 0.1).clamp(0.0, 1.0) - 0.5;
        }
        data.extend_from_slice(&canvas);
    }
    Dataset {
        images: Tensor::from_vec(data, &[n, side, side, 1]).expect("sized"),
        labels,
    }
}

/// Generates `n` textured color images of side `side` (use 32 for the
/// CIFAR-10 stand-in), classes cycling `0..10`.
///
/// Each class is a distinct combination of stripe orientation, spatial
/// frequency and color ramp; jitter in phase, frequency and hue plus
/// additive noise keeps the task non-trivial.
pub fn patches(n: usize, side: usize, seed: u64) -> Dataset {
    let mut rng = TensorRng::new(seed);
    let mut data = Vec::with_capacity(n * side * side * 3);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % CLASSES;
        labels.push(class);
        // Class-determined texture parameters.
        let angle = (class % 5) as f32 * std::f32::consts::PI / 5.0;
        let base_freq = 2.0 + (class / 5) as f32 * 3.0;
        let freq = base_freq * (1.0 + rng.uniform() * 0.1);
        let phase = rng.uniform() * std::f32::consts::PI;
        let hue_shift = rng.uniform() * 0.15;
        let (sin_a, cos_a) = angle.sin_cos();
        for y in 0..side {
            for x in 0..side {
                let u = x as f32 / side as f32;
                let v = y as f32 / side as f32;
                let wave = ((u * cos_a + v * sin_a) * freq * std::f32::consts::TAU + phase).sin();
                let t = 0.5 + 0.5 * wave;
                // Class-specific color ramp endpoints.
                let c0 = [
                    0.1 + 0.08 * class as f32 / 10.0,
                    0.9 - 0.07 * class as f32,
                    0.2 + 0.06 * class as f32,
                ];
                let c1 = [
                    0.9 - 0.05 * class as f32,
                    0.15 + 0.07 * class as f32,
                    0.8 - 0.04 * class as f32,
                ];
                for ch in 0..3 {
                    let val = c0[ch] * (1.0 - t)
                        + c1[ch] * t
                        + hue_shift * (ch as f32 - 1.0)
                        + rng.uniform() * 0.08;
                    // Centered to [-0.5, 0.5] like `digits`.
                    data.push(val.clamp(0.0, 1.0) - 0.5);
                }
            }
        }
    }
    Dataset {
        images: Tensor::from_vec(data, &[n, side, side, 3]).expect("sized"),
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_shape_and_labels() {
        let ds = digits(25, 28, 1);
        assert_eq!(ds.images.shape().dims(), &[25, 28, 28, 1]);
        assert_eq!(ds.len(), 25);
        assert!(!ds.is_empty());
        assert_eq!(ds.labels[0], 0);
        assert_eq!(ds.labels[13], 3);
        assert!(ds.images.data().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn digits_are_deterministic_per_seed() {
        assert_eq!(digits(10, 14, 7), digits(10, 14, 7));
        assert_ne!(
            digits(10, 14, 7).images.data(),
            digits(10, 14, 8).images.data()
        );
    }

    #[test]
    fn same_class_images_differ() {
        let ds = digits(20, 28, 3);
        // Examples 0 and 10 are both class 0 but jittered differently.
        let per = 28 * 28;
        assert_ne!(
            &ds.images.data()[0..per],
            &ds.images.data()[10 * per..11 * per]
        );
    }

    #[test]
    fn glyphs_have_ink() {
        let ds = digits(10, 28, 2);
        let per = 28 * 28;
        for i in 0..10 {
            let ink = ds.images.data()[i * per..(i + 1) * per]
                .iter()
                .filter(|&&x| x > 0.25)
                .count();
            assert!(ink > 10, "class {i} has almost no ink");
        }
    }

    #[test]
    fn patches_shape_and_range() {
        let ds = patches(12, 32, 9);
        assert_eq!(ds.images.shape().dims(), &[12, 32, 32, 3]);
        assert!(ds.images.data().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn patch_classes_are_visually_distinct() {
        // Mean per-channel difference between class 0 and class 5 images
        // should be noticeable.
        let ds = patches(10, 16, 4);
        let per = 16 * 16 * 3;
        let a = &ds.images.data()[0..per];
        let b = &ds.images.data()[5 * per..6 * per];
        let diff: f32 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff / per as f32 > 0.05);
    }

    #[test]
    fn batch_slices_correctly() {
        let ds = digits(10, 8, 6);
        let (images, labels) = ds.batch(2..5);
        assert_eq!(images.shape().dims(), &[3, 8, 8, 1]);
        assert_eq!(labels, &ds.labels[2..5]);
        let per = 8 * 8;
        assert_eq!(images.data()[0..per], ds.images.data()[2 * per..3 * per]);
    }

    #[test]
    fn all_classes_present() {
        let ds = patches(30, 8, 11);
        for c in 0..CLASSES {
            assert!(ds.labels.contains(&c));
        }
    }
}
