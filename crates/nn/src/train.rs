use crate::data::Dataset;
use crate::{Activation, Layer, NnError, Result, Sequential};
use milr_tensor::{im2col, ConvSpec, PoolSpec, Tensor, TensorRng};

/// Hyperparameters for the SGD-with-momentum [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Step size.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Seed for shuffling and dropout masks.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            learning_rate: 0.01,
            momentum: 0.9,
            seed: 0x5EED,
        }
    }
}

/// A borrowed mini-batch of images and labels.
#[derive(Debug, Clone, Copy)]
pub struct Batch<'a> {
    /// Batched images `(B, …)`.
    pub images: &'a Tensor,
    /// One label per image.
    pub labels: &'a [usize],
}

/// SGD-with-momentum trainer with full backpropagation through every
/// layer type of the substrate.
///
/// The paper's networks are *trained* models (99.2% MNIST, ~84% CIFAR);
/// fault-injection results on random weights would not be credible, so
/// the reproduction trains its networks with this module before injecting
/// errors.
///
/// The loss is softmax cross-entropy. If the model's final layer is
/// `Activation(Softmax)` it is fused with the loss; otherwise the model
/// output is treated as logits.
#[derive(Debug)]
pub struct Trainer {
    config: TrainerConfig,
    /// Per-layer momentum buffers, allocated lazily.
    velocities: Vec<Option<Vec<f32>>>,
    rng: TensorRng,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer {
            rng: TensorRng::new(config.seed),
            config,
            velocities: Vec::new(),
        }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Computes the mean cross-entropy loss and per-layer parameter
    /// gradients for one batch, without updating the model.
    ///
    /// Returned gradients align with `model.layers()`: `None` for
    /// parameterless layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadData`] for label/batch mismatches and
    /// propagates forward/backward shape errors.
    pub fn gradients(
        &mut self,
        model: &Sequential,
        batch: Batch<'_>,
    ) -> Result<(f64, Vec<Option<Vec<f32>>>)> {
        let b = batch.images.shape().dim(0);
        if batch.labels.len() != b {
            return Err(NnError::BadData(format!(
                "{} labels for batch of {b}",
                batch.labels.len()
            )));
        }
        if b == 0 {
            return Err(NnError::BadData("empty batch".into()));
        }
        let n_layers = model.len();
        // Forward pass caching every activation; dropout gets a mask.
        let mut acts: Vec<Tensor> = Vec::with_capacity(n_layers + 1);
        acts.push(batch.images.clone());
        let mut masks: Vec<Option<Tensor>> = vec![None; n_layers];
        for (i, layer) in model.layers().iter().enumerate() {
            let x = acts.last().expect("pushed above");
            let y = match layer {
                Layer::Dropout { rate } if *rate > 0.0 => {
                    let keep = 1.0 - *rate;
                    let mask = Tensor::from_vec(
                        (0..x.numel())
                            .map(|_| {
                                if (self.rng.uniform() + 1.0) / 2.0 < keep {
                                    1.0 / keep
                                } else {
                                    0.0
                                }
                            })
                            .collect(),
                        x.shape().dims(),
                    )?;
                    let y = x.zip_map(&mask, |a, m| a * m)?;
                    masks[i] = Some(mask);
                    y
                }
                other => other.forward(x)?,
            };
            acts.push(y);
        }
        // Fuse a trailing softmax with the loss.
        let fused_softmax = matches!(
            model.layers().last(),
            Some(Layer::Activation(Activation::Softmax))
        );
        let (probs, logits_index) = if fused_softmax {
            (acts[n_layers].clone(), n_layers - 1)
        } else {
            (Activation::Softmax.apply(&acts[n_layers]), n_layers)
        };
        if probs.ndim() != 2 {
            return Err(NnError::BadConfig(format!(
                "training requires (B, classes) output, got {}",
                probs.shape()
            )));
        }
        let classes = probs.shape().dim(1);
        let mut loss = 0.0f64;
        let mut grad_data = probs.data().to_vec();
        for (r, &label) in batch.labels.iter().enumerate() {
            if label >= classes {
                return Err(NnError::BadData(format!(
                    "label {label} outside {classes} classes"
                )));
            }
            let p = probs.data()[r * classes + label].max(1e-12);
            loss -= (p as f64).ln();
            grad_data[r * classes + label] -= 1.0;
        }
        loss /= b as f64;
        let scale = 1.0 / b as f32;
        for g in &mut grad_data {
            *g *= scale;
        }
        let mut grad = Tensor::from_vec(grad_data, probs.shape().dims())?;

        let mut param_grads: Vec<Option<Vec<f32>>> = vec![None; n_layers];
        let last_backward = if fused_softmax {
            n_layers - 1
        } else {
            n_layers
        };
        let _ = logits_index;
        for i in (0..last_backward).rev() {
            let layer = &model.layers()[i];
            let x = &acts[i];
            let y = &acts[i + 1];
            let (dx, dparams) = backward_layer(layer, x, y, &grad, masks[i].as_ref())?;
            param_grads[i] = dparams;
            grad = dx;
        }
        Ok((loss, param_grads))
    }

    /// Runs one SGD step on a batch; returns the batch loss.
    ///
    /// # Errors
    ///
    /// See [`Trainer::gradients`].
    pub fn train_batch(&mut self, model: &mut Sequential, batch: Batch<'_>) -> Result<f64> {
        let (loss, grads) = self.gradients(model, batch)?;
        if self.velocities.len() != model.len() {
            self.velocities = vec![None; model.len()];
        }
        let lr = self.config.learning_rate;
        let mu = self.config.momentum;
        for (i, layer) in model.layers_mut().iter_mut().enumerate() {
            let Some(grad) = &grads[i] else { continue };
            let Some(params) = layer.params_mut() else {
                continue;
            };
            let v = self.velocities[i].get_or_insert_with(|| vec![0.0; grad.len()]);
            if v.len() != grad.len() {
                *v = vec![0.0; grad.len()];
            }
            let w = params.data_mut();
            for ((wi, vi), &gi) in w.iter_mut().zip(v.iter_mut()).zip(grad.iter()) {
                *vi = mu * *vi - lr * gi;
                *wi += *vi;
            }
        }
        Ok(loss)
    }

    /// Trains one epoch over the dataset in shuffled mini-batches;
    /// returns the mean loss.
    ///
    /// # Errors
    ///
    /// See [`Trainer::gradients`]; `batch_size == 0` is
    /// [`NnError::BadData`].
    pub fn train_epoch(
        &mut self,
        model: &mut Sequential,
        data: &Dataset,
        batch_size: usize,
    ) -> Result<f64> {
        if batch_size == 0 {
            return Err(NnError::BadData("batch_size must be positive".into()));
        }
        let n = data.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher–Yates with the trainer's deterministic stream.
        for i in (1..n).rev() {
            let j = (self.rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let dims = data.images.shape().dims().to_vec();
        let per: usize = dims[1..].iter().product();
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(batch_size) {
            let mut images = Vec::with_capacity(chunk.len() * per);
            let mut labels = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                images.extend_from_slice(&data.images.data()[idx * per..(idx + 1) * per]);
                labels.push(data.labels[idx]);
            }
            let mut shape = dims.clone();
            shape[0] = chunk.len();
            let images = Tensor::from_vec(images, &shape)?;
            total += self.train_batch(
                model,
                Batch {
                    images: &images,
                    labels: &labels,
                },
            )?;
            batches += 1;
        }
        Ok(total / batches.max(1) as f64)
    }

    /// Trains for several epochs; returns the per-epoch mean losses.
    ///
    /// # Errors
    ///
    /// See [`Trainer::train_epoch`].
    pub fn fit(
        &mut self,
        model: &mut Sequential,
        data: &Dataset,
        epochs: usize,
        batch_size: usize,
    ) -> Result<Vec<f64>> {
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            losses.push(self.train_epoch(model, data, batch_size)?);
        }
        Ok(losses)
    }
}

/// Backpropagates one layer: given input `x`, output `y` and output
/// gradient `dy`, returns the input gradient and (for parameterized
/// layers) the flat parameter gradient.
fn backward_layer(
    layer: &Layer,
    x: &Tensor,
    y: &Tensor,
    dy: &Tensor,
    mask: Option<&Tensor>,
) -> Result<(Tensor, Option<Vec<f32>>)> {
    match layer {
        Layer::Dense { weights } => {
            let dx = dy.matmul(&weights.transpose()?)?;
            let dw = x.transpose()?.matmul(dy)?;
            Ok((dx, Some(dw.into_vec())))
        }
        Layer::Bias { bias } => {
            let c = bias.numel();
            let mut db = vec![0.0f32; c];
            for (i, &g) in dy.data().iter().enumerate() {
                db[i % c] += g;
            }
            Ok((dy.clone(), Some(db)))
        }
        Layer::Activation(a) => Ok((backward_activation(*a, x, y, dy)?, None)),
        Layer::Conv2D { filters, spec } => backward_conv(filters, spec, x, dy),
        Layer::MaxPool2D(spec) => Ok((backward_max_pool(spec, x, dy)?, None)),
        Layer::AvgPool2D(spec) => Ok((backward_avg_pool(spec, x, dy)?, None)),
        Layer::Flatten => Ok((dy.reshape(x.shape().dims())?, None)),
        Layer::Dropout { .. } => match mask {
            Some(m) => Ok((dy.zip_map(m, |g, k| g * k)?, None)),
            None => Ok((dy.clone(), None)),
        },
        Layer::ZeroPad2D { pad } => Ok((crop_pad(dy, *pad, x.shape().dims())?, None)),
    }
}

fn backward_activation(a: Activation, x: &Tensor, y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    match a {
        Activation::Identity => Ok(dy.clone()),
        Activation::Relu => Ok(dy.zip_map(x, |g, xi| if xi > 0.0 { g } else { 0.0 })?),
        Activation::Sigmoid => Ok(dy.zip_map(y, |g, yi| g * yi * (1.0 - yi))?),
        Activation::Tanh => Ok(dy.zip_map(y, |g, yi| g * (1.0 - yi * yi))?),
        Activation::Softmax => {
            // Full per-row Jacobian: dx_i = y_i (g_i − Σ_j g_j y_j).
            let dims = y.shape().dims();
            let last = dims[dims.len() - 1];
            let rows = y.numel() / last;
            let mut out = vec![0.0f32; y.numel()];
            for r in 0..rows {
                let yr = &y.data()[r * last..(r + 1) * last];
                let gr = &dy.data()[r * last..(r + 1) * last];
                let dot: f64 = yr
                    .iter()
                    .zip(gr.iter())
                    .map(|(&a, &b)| a as f64 * b as f64)
                    .sum();
                for i in 0..last {
                    out[r * last + i] = yr[i] * (gr[i] - dot as f32);
                }
            }
            Ok(Tensor::from_vec(out, dims)?)
        }
    }
}

fn backward_conv(
    filters: &Tensor,
    spec: &ConvSpec,
    x: &Tensor,
    dy: &Tensor,
) -> Result<(Tensor, Option<Vec<f32>>)> {
    let (b, h, w, c) = (
        x.shape().dim(0),
        x.shape().dim(1),
        x.shape().dim(2),
        x.shape().dim(3),
    );
    let (f, z, ny) = (
        filters.shape().dim(0),
        filters.shape().dim(2),
        filters.shape().dim(3),
    );
    let (gh, _) = spec.output_dim(h)?;
    let (gw, _) = spec.output_dim(w)?;
    let cols_width = f * f * z;
    let filter_mat = filters.reshape(&[cols_width, ny])?;
    let filter_mat_t = filter_mat.transpose()?;
    let mut dw_acc = vec![0.0f64; cols_width * ny];
    let mut dx = Tensor::zeros(&[b, h, w, c]);
    let per_img_in = h * w * c;
    let per_img_out = gh * gw * ny;
    for img in 0..b {
        let x_img = Tensor::from_vec(
            x.data()[img * per_img_in..(img + 1) * per_img_in].to_vec(),
            &[h, w, c],
        )?;
        let dy_img = Tensor::from_vec(
            dy.data()[img * per_img_out..(img + 1) * per_img_out].to_vec(),
            &[gh * gw, ny],
        )?;
        let cols = im2col(&x_img, spec)?;
        // dW += colsᵀ · dY (accumulated in f64).
        let colsd = cols.data();
        let dyd = dy_img.data();
        for rc in 0..gh * gw {
            for k in 0..cols_width {
                let cv = colsd[rc * cols_width + k] as f64;
                if cv == 0.0 {
                    continue;
                }
                let dy_row = &dyd[rc * ny..(rc + 1) * ny];
                let acc_row = &mut dw_acc[k * ny..(k + 1) * ny];
                for (a, &g) in acc_row.iter_mut().zip(dy_row.iter()) {
                    *a += cv * g as f64;
                }
            }
        }
        // dX: scatter dcols back with summation.
        let dcols = dy_img.matmul(&filter_mat_t)?;
        scatter_cols_sum(
            dcols.data(),
            dx.data_mut(),
            img * per_img_in,
            h,
            w,
            c,
            spec,
            gh,
            gw,
        )?;
    }
    let dw: Vec<f32> = dw_acc.iter().map(|&v| v as f32).collect();
    Ok((dx, Some(dw)))
}

/// Adds im2col-layout gradients back into the (offset) image buffer,
/// summing overlaps — the adjoint of `im2col`.
#[allow(clippy::too_many_arguments)]
fn scatter_cols_sum(
    dcols: &[f32],
    dst: &mut [f32],
    dst_offset: usize,
    h: usize,
    w: usize,
    c: usize,
    spec: &ConvSpec,
    gh: usize,
    gw: usize,
) -> Result<()> {
    let f = spec.filter;
    let s = spec.stride;
    let (_, pad_h) = spec.output_dim(h)?;
    let (_, pad_w) = spec.output_dim(w)?;
    let cols_width = f * f * c;
    for i in 0..gh {
        for j in 0..gw {
            let row_base = (i * gw + j) * cols_width;
            for f1 in 0..f {
                let y = (i * s + f1) as isize - pad_h as isize;
                if y < 0 || y >= h as isize {
                    continue;
                }
                for f2 in 0..f {
                    let x = (j * s + f2) as isize - pad_w as isize;
                    if x < 0 || x >= w as isize {
                        continue;
                    }
                    for z in 0..c {
                        let d = dst_offset + ((y as usize * w) + x as usize) * c + z;
                        dst[d] += dcols[row_base + (f1 * f + f2) * c + z];
                    }
                }
            }
        }
    }
    Ok(())
}

fn backward_max_pool(spec: &PoolSpec, x: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let (b, h, w, c) = (
        x.shape().dim(0),
        x.shape().dim(1),
        x.shape().dim(2),
        x.shape().dim(3),
    );
    let gh = spec.output_dim(h)?;
    let gw = spec.output_dim(w)?;
    let mut dx = Tensor::zeros(&[b, h, w, c]);
    let xd = x.data();
    let dyd = dy.data();
    let dxd = dx.data_mut();
    for img in 0..b {
        let in_base = img * h * w * c;
        for i in 0..gh {
            for j in 0..gw {
                for z in 0..c {
                    // Locate the window maximum (first occurrence wins,
                    // matching the forward reduce order).
                    let mut best = f32::NEG_INFINITY;
                    let mut best_pos = 0usize;
                    for dy_ in 0..spec.window {
                        for dx_ in 0..spec.window {
                            let yy = i * spec.stride + dy_;
                            let xx = j * spec.stride + dx_;
                            let pos = in_base + (yy * w + xx) * c + z;
                            if xd[pos] > best {
                                best = xd[pos];
                                best_pos = pos;
                            }
                        }
                    }
                    let g = dyd[(img * gh * gw + i * gw + j) * c + z];
                    dxd[best_pos] += g;
                }
            }
        }
    }
    Ok(dx)
}

fn backward_avg_pool(spec: &PoolSpec, x: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let (b, h, w, c) = (
        x.shape().dim(0),
        x.shape().dim(1),
        x.shape().dim(2),
        x.shape().dim(3),
    );
    let gh = spec.output_dim(h)?;
    let gw = spec.output_dim(w)?;
    let mut dx = Tensor::zeros(&[b, h, w, c]);
    let dyd = dy.data();
    let dxd = dx.data_mut();
    let inv = 1.0 / (spec.window * spec.window) as f32;
    for img in 0..b {
        for i in 0..gh {
            for j in 0..gw {
                for z in 0..c {
                    let g = dyd[(img * gh * gw + i * gw + j) * c + z] * inv;
                    for dy_ in 0..spec.window {
                        for dx_ in 0..spec.window {
                            let yy = i * spec.stride + dy_;
                            let xx = j * spec.stride + dx_;
                            dxd[img * h * w * c + (yy * w + xx) * c + z] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(dx)
}

fn crop_pad(dy: &Tensor, pad: usize, target: &[usize]) -> Result<Tensor> {
    let (b, h, w, c) = (target[0], target[1], target[2], target[3]);
    let nw = w + 2 * pad;
    let nh = h + 2 * pad;
    let mut out = Tensor::zeros(target);
    let src = dy.data();
    let dst = out.data_mut();
    for img in 0..b {
        for y in 0..h {
            let s = (img * nh * nw + (y + pad) * nw + pad) * c;
            let d = (img * h * w + y * w) * c;
            dst[d..d + w * c].copy_from_slice(&src[s..s + w * c]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;
    use milr_tensor::Padding;

    fn micro_model(seed: u64) -> Sequential {
        let mut rng = TensorRng::new(seed);
        let mut m = Sequential::new(vec![6, 6, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Same).unwrap();
        m.push(Layer::conv2d_random(3, 1, 3, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(3)).unwrap();
        m.push(Layer::Activation(Activation::Relu)).unwrap();
        m.push(Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()))
            .unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(27, 10, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(10)).unwrap();
        m
    }

    fn micro_batch(seed: u64, n: usize) -> (Tensor, Vec<usize>) {
        let mut rng = TensorRng::new(seed);
        let images = rng.uniform_tensor(&[n, 6, 6, 1]);
        let labels: Vec<usize> = (0..n).map(|i| i % 10).collect();
        (images, labels)
    }

    fn batch_loss(model: &Sequential, images: &Tensor, labels: &[usize]) -> f64 {
        let out = model.forward(images).unwrap();
        let probs = Activation::Softmax.apply(&out);
        let classes = probs.shape().dim(1);
        let mut loss = 0.0f64;
        for (r, &l) in labels.iter().enumerate() {
            loss -= (probs.data()[r * classes + l].max(1e-12) as f64).ln();
        }
        loss / labels.len() as f64
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut model = micro_model(11);
        let (images, labels) = micro_batch(3, 4);
        let mut trainer = Trainer::new(TrainerConfig::default());
        let (_, grads) = trainer
            .gradients(
                &model,
                Batch {
                    images: &images,
                    labels: &labels,
                },
            )
            .unwrap();
        // Spot-check several parameters in every parameterized layer.
        let eps = 1e-3f32;
        #[allow(clippy::needless_range_loop)] // li indexes grads and model together
        for li in 0..model.len() {
            let Some(g) = &grads[li] else { continue };
            let count = g.len();
            for &pi in &[0usize, count / 2, count - 1] {
                let orig = model.layers()[li].params().unwrap().data()[pi];
                model.layers_mut()[li].params_mut().unwrap().data_mut()[pi] = orig + eps;
                let up = batch_loss(&model, &images, &labels);
                model.layers_mut()[li].params_mut().unwrap().data_mut()[pi] = orig - eps;
                let down = batch_loss(&model, &images, &labels);
                model.layers_mut()[li].params_mut().unwrap().data_mut()[pi] = orig;
                let numeric = ((up - down) / (2.0 * eps as f64)) as f32;
                let analytic = g[pi];
                let tol = 2e-2 * (1.0 + numeric.abs().max(analytic.abs()));
                assert!(
                    (numeric - analytic).abs() < tol,
                    "layer {li} param {pi}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut model = micro_model(21);
        let ds = data::digits(60, 6, 77);
        let mut trainer = Trainer::new(TrainerConfig {
            learning_rate: 0.05,
            momentum: 0.9,
            seed: 5,
        });
        let losses = trainer.fit(&mut model, &ds, 8, 10).unwrap();
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "losses did not fall: {losses:?}"
        );
    }

    #[test]
    fn training_improves_accuracy_on_digits() {
        let mut rng = TensorRng::new(33);
        let mut model = Sequential::new(vec![12, 12, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        model
            .push(Layer::conv2d_random(3, 1, 6, spec, &mut rng).unwrap())
            .unwrap();
        model.push(Layer::bias_zero(6)).unwrap();
        model.push(Layer::Activation(Activation::Relu)).unwrap();
        model
            .push(Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()))
            .unwrap();
        model.push(Layer::Flatten).unwrap();
        model
            .push(Layer::dense_random(5 * 5 * 6, 10, &mut rng).unwrap())
            .unwrap();
        model.push(Layer::bias_zero(10)).unwrap();

        let train = data::digits(200, 12, 1);
        let test = data::digits(50, 12, 2);
        let before = model.accuracy(&test.images, &test.labels).unwrap();
        let mut trainer = Trainer::new(TrainerConfig {
            learning_rate: 0.05,
            momentum: 0.9,
            seed: 6,
        });
        trainer.fit(&mut model, &train, 10, 20).unwrap();
        let after = model.accuracy(&test.images, &test.labels).unwrap();
        assert!(
            after > before + 0.2 && after > 0.5,
            "accuracy before {before}, after {after}"
        );
    }

    #[test]
    fn dropout_masks_apply_in_training_only() {
        let mut rng = TensorRng::new(4);
        let mut m = Sequential::new(vec![4]);
        m.push(Layer::Dropout { rate: 0.5 }).unwrap();
        m.push(Layer::dense_random(4, 2, &mut rng).unwrap())
            .unwrap();
        let images = Tensor::ones(&[8, 4]);
        let labels = vec![0usize; 8];
        let mut trainer = Trainer::new(TrainerConfig::default());
        // Gradients must be computable with dropout present.
        let (loss, grads) = trainer
            .gradients(
                &m,
                Batch {
                    images: &images,
                    labels: &labels,
                },
            )
            .unwrap();
        assert!(loss.is_finite());
        assert!(grads[1].is_some());
        // Inference path ignores dropout.
        let out = m.forward(&images).unwrap();
        assert_eq!(out.shape().dims(), &[8, 2]);
    }

    #[test]
    fn trailing_softmax_is_fused() {
        let mut rng = TensorRng::new(8);
        let mut m = Sequential::new(vec![4]);
        m.push(Layer::dense_random(4, 3, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::Activation(Activation::Softmax)).unwrap();
        let images = TensorRng::new(2).uniform_tensor(&[5, 4]);
        let labels = vec![0usize, 1, 2, 0, 1];
        let mut trainer = Trainer::new(TrainerConfig::default());
        let (loss, grads) = trainer
            .gradients(
                &m,
                Batch {
                    images: &images,
                    labels: &labels,
                },
            )
            .unwrap();
        assert!(loss > 0.0);
        assert!(grads[0].is_some());
        assert!(grads[1].is_none());
    }

    #[test]
    fn rejects_bad_batches() {
        let mut m = Sequential::new(vec![4]);
        let mut rng = TensorRng::new(0);
        m.push(Layer::dense_random(4, 3, &mut rng).unwrap())
            .unwrap();
        let images = Tensor::ones(&[2, 4]);
        let mut trainer = Trainer::new(TrainerConfig::default());
        assert!(trainer
            .gradients(
                &m,
                Batch {
                    images: &images,
                    labels: &[0]
                }
            )
            .is_err());
        assert!(trainer
            .gradients(
                &m,
                Batch {
                    images: &images,
                    labels: &[0, 9]
                }
            )
            .is_err());
        let empty = Tensor::zeros(&[0, 4]);
        assert!(trainer
            .gradients(
                &m,
                Batch {
                    images: &empty,
                    labels: &[]
                }
            )
            .is_err());
        let ds = data::digits(4, 4, 1);
        let mut m2 = Sequential::new(vec![4, 4, 1]);
        m2.push(Layer::Flatten).unwrap();
        m2.push(Layer::dense_random(16, 10, &mut rng).unwrap())
            .unwrap();
        assert!(trainer.train_epoch(&mut m2, &ds, 0).is_err());
    }

    #[test]
    fn momentum_accelerates_descent() {
        // With identical seeds, momentum should reach a lower loss than
        // plain SGD over the same few epochs on the same model.
        let ds = data::digits(60, 6, 42);
        let mut plain_model = micro_model(9);
        let mut momentum_model = micro_model(9);
        let mut plain = Trainer::new(TrainerConfig {
            learning_rate: 0.02,
            momentum: 0.0,
            seed: 3,
        });
        let mut with_mu = Trainer::new(TrainerConfig {
            learning_rate: 0.02,
            momentum: 0.9,
            seed: 3,
        });
        let l_plain = plain.fit(&mut plain_model, &ds, 6, 12).unwrap();
        let l_mu = with_mu.fit(&mut momentum_model, &ds, 6, 12).unwrap();
        assert!(
            l_mu.last().unwrap() < l_plain.last().unwrap(),
            "momentum {l_mu:?} vs plain {l_plain:?}"
        );
    }
}
