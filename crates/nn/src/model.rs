use crate::{Layer, NnError, Result};
use milr_tensor::{argmax, Tensor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A feed-forward stack of [`Layer`]s — the substrate's equivalent of a
/// Keras `Sequential` model.
///
/// The model records the per-image input shape and validates every layer
/// against the running shape when it is pushed, so a constructed model
/// can always run forward. MILR walks [`layers`](Sequential::layers) to
/// plan checkpoints and [`layers_mut`](Sequential::layers_mut) to heal
/// parameters in place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequential {
    input_shape: Vec<usize>,
    /// Per-image input shape of each layer: `shapes[i]` feeds layer `i`;
    /// `shapes[len]` is the output shape.
    shapes: Vec<Vec<usize>>,
    layers: Vec<Layer>,
}

impl Sequential {
    /// Creates an empty model accepting per-image inputs of the given
    /// shape (batch dimension excluded).
    pub fn new(input_shape: Vec<usize>) -> Self {
        Sequential {
            shapes: vec![input_shape.clone()],
            input_shape,
            layers: Vec::new(),
        }
    }

    /// Appends a layer, validating it against the current output shape.
    ///
    /// # Errors
    ///
    /// Returns the layer's shape error if it cannot accept the running
    /// output shape.
    pub fn push(&mut self, layer: Layer) -> Result<()> {
        let current = self.shapes.last().expect("at least the input shape");
        let next = layer.output_shape(current)?;
        self.shapes.push(next);
        self.layers.push(layer);
        Ok(())
    }

    /// Per-image model input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Per-image output shape.
    pub fn output_shape(&self) -> &[usize] {
        self.shapes.last().expect("at least the input shape")
    }

    /// Per-image input shape of layer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn shape_at(&self, index: usize) -> &[usize] {
        &self.shapes[index]
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True for a model with no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer stack (parameter corruption and
    /// recovery go through here). Layout-changing mutation is the
    /// caller's responsibility — shapes were validated at `push` time.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Bytes occupied by parameters (4 per `f32`) — the "Backup Weights"
    /// column of the paper's storage tables.
    pub fn param_bytes(&self) -> usize {
        self.param_count() * 4
    }

    /// Runs the full network over a batch (first dimension = batch).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors (possible when parameters were
    /// mutated to incompatible shapes after construction).
    pub fn forward(&self, batch: &Tensor) -> Result<Tensor> {
        let mut x = batch.clone();
        for layer in &self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Runs layers `from..to` (half-open) over a batch — the building
    /// block of MILR's checkpoint propagation.
    ///
    /// # Errors
    ///
    /// Propagates layer errors; `from > to` or `to > len()` is a
    /// [`NnError::BadConfig`].
    pub fn forward_range(&self, batch: &Tensor, from: usize, to: usize) -> Result<Tensor> {
        if from > to || to > self.layers.len() {
            return Err(NnError::BadConfig(format!(
                "invalid layer range {from}..{to} for {} layers",
                self.layers.len()
            )));
        }
        let mut x = batch.clone();
        for layer in &self.layers[from..to] {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Stacks independent per-image examples (each shaped like
    /// [`input_shape`](Sequential::input_shape)) into one `(B, …)`
    /// batch tensor — the request-coalescing step of batched serving.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadData`] for an empty list or an example
    /// whose shape differs from the model input shape.
    pub fn stack_batch(&self, examples: &[Tensor]) -> Result<Tensor> {
        if examples.is_empty() {
            return Err(NnError::BadData("cannot stack an empty batch".into()));
        }
        let per_image: usize = self.input_shape.iter().product();
        let mut data = Vec::with_capacity(examples.len() * per_image);
        for (i, ex) in examples.iter().enumerate() {
            if ex.shape().dims() != self.input_shape.as_slice() {
                return Err(NnError::BadData(format!(
                    "example {i} has shape {} but the model takes ({})",
                    ex.shape(),
                    self.input_shape
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )));
            }
            data.extend_from_slice(ex.data());
        }
        let mut dims = vec![examples.len()];
        dims.extend_from_slice(&self.input_shape);
        Ok(Tensor::from_vec(data, &dims)?)
    }

    /// Runs a batch of independent per-image examples through the
    /// network and returns one output tensor per example (batch
    /// dimension stripped). Results are identical to running each
    /// example alone: every layer treats the batch dimension as
    /// independent rows/images.
    ///
    /// # Errors
    ///
    /// Propagates [`stack_batch`](Sequential::stack_batch) and forward
    /// errors.
    pub fn forward_batch(&self, examples: &[Tensor]) -> Result<Vec<Tensor>> {
        // The stacked batch is owned scratch: shape-preserving layers
        // (bias, activations, flatten, dropout) mutate it in place, so
        // the chain reuses one allocation instead of one per layer.
        let mut x = self.stack_batch(examples)?;
        for layer in &self.layers {
            x = layer.forward_owned(x)?;
        }
        Self::split_batch(&x, examples.len())
    }

    /// Splits a `(B, …)` batch output into one tensor per example
    /// (batch dimension stripped).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (cannot occur for well-formed
    /// batch outputs).
    pub fn split_batch(out: &Tensor, batch: usize) -> Result<Vec<Tensor>> {
        let per_example: usize = out.shape().dims()[1..].iter().product();
        let out_dims = out.shape().dims()[1..].to_vec();
        let data = out.data();
        (0..batch)
            .map(|r| {
                Ok(Tensor::from_vec(
                    data[r * per_example..(r + 1) * per_example].to_vec(),
                    &out_dims,
                )?)
            })
            .collect()
    }

    /// Class predictions (argmax over the last axis) for a batch.
    ///
    /// # Errors
    ///
    /// Propagates forward errors; output must be rank 2 `(B, classes)`.
    pub fn predict(&self, batch: &Tensor) -> Result<Vec<usize>> {
        let out = self.forward(batch)?;
        if out.ndim() != 2 {
            return Err(NnError::BadConfig(format!(
                "predict requires (B, classes) output, got {}",
                out.shape()
            )));
        }
        let classes = out.shape().dim(1);
        Ok((0..out.shape().dim(0))
            .map(|r| argmax(&out.data()[r * classes..(r + 1) * classes]).expect("classes > 0"))
            .collect())
    }

    /// Fraction of `labels` predicted correctly.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadData`] when the label count differs from
    /// the batch size.
    pub fn accuracy(&self, batch: &Tensor, labels: &[usize]) -> Result<f64> {
        let preds = self.predict(batch)?;
        if preds.len() != labels.len() {
            return Err(NnError::BadData(format!(
                "{} labels for a batch of {}",
                labels.len(),
                preds.len()
            )));
        }
        if labels.is_empty() {
            return Ok(0.0);
        }
        let correct = preds
            .iter()
            .zip(labels.iter())
            .filter(|(p, l)| p == l)
            .count();
        Ok(correct as f64 / labels.len() as f64)
    }

    /// A Keras-style textual summary (layer kinds, output shapes,
    /// parameter counts) matching the layout of the paper's Tables
    /// I–III.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<14} {:<18} {:>12}",
            "Layer", "Output Shape", "Trainable"
        );
        for (i, layer) in self.layers.iter().enumerate() {
            let shape = &self.shapes[i + 1];
            let shape_str = format!(
                "({})",
                shape
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            let _ = writeln!(
                s,
                "{:<14} {:<18} {:>12}",
                layer.kind_name(),
                shape_str,
                layer.param_count()
            );
        }
        let _ = writeln!(s, "Total trainable parameters: {}", self.param_count());
        s
    }
}

impl fmt::Display for Sequential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;
    use milr_tensor::{ConvSpec, Padding, PoolSpec, TensorRng};

    fn tiny_model() -> Sequential {
        let mut rng = TensorRng::new(5);
        let mut m = Sequential::new(vec![8, 8, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        m.push(Layer::Activation(Activation::Relu)).unwrap();
        m.push(Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()))
            .unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(3 * 3 * 4, 10, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(10)).unwrap();
        m
    }

    #[test]
    fn shapes_tracked_through_stack() {
        let m = tiny_model();
        assert_eq!(m.shape_at(0), &[8, 8, 1]);
        assert_eq!(m.shape_at(1), &[6, 6, 4]);
        assert_eq!(m.shape_at(4), &[3, 3, 4]);
        assert_eq!(m.shape_at(5), &[36]);
        assert_eq!(m.output_shape(), &[10]);
        assert_eq!(m.len(), 7);
        assert!(!m.is_empty());
    }

    #[test]
    fn push_rejects_incompatible_layer() {
        let mut m = tiny_model();
        let mut rng = TensorRng::new(1);
        // Dense expecting the wrong width cannot attach.
        let bad = Layer::dense_random(11, 2, &mut rng).unwrap();
        assert!(m.push(bad).is_err());
        // Model unchanged after the failed push.
        assert_eq!(m.len(), 7);
    }

    #[test]
    fn forward_produces_logits() {
        let m = tiny_model();
        let batch = TensorRng::new(9).uniform_tensor(&[3, 8, 8, 1]);
        let out = m.forward(&batch).unwrap();
        assert_eq!(out.shape().dims(), &[3, 10]);
        let preds = m.predict(&batch).unwrap();
        assert_eq!(preds.len(), 3);
        assert!(preds.iter().all(|&p| p < 10));
    }

    #[test]
    fn forward_range_composes() {
        let m = tiny_model();
        let batch = TensorRng::new(2).uniform_tensor(&[2, 8, 8, 1]);
        let mid = m.forward_range(&batch, 0, 4).unwrap();
        let out = m.forward_range(&mid, 4, m.len()).unwrap();
        let full = m.forward(&batch).unwrap();
        assert_eq!(out, full);
        assert!(m.forward_range(&batch, 3, 2).is_err());
        assert!(m.forward_range(&batch, 0, 99).is_err());
    }

    #[test]
    fn forward_batch_matches_single_example_runs_bitwise() {
        let m = tiny_model();
        let mut rng = TensorRng::new(11);
        let examples: Vec<Tensor> = (0..5).map(|_| rng.uniform_tensor(&[8, 8, 1])).collect();
        let batched = m.forward_batch(&examples).unwrap();
        assert_eq!(batched.len(), 5);
        for (ex, out) in examples.iter().zip(batched.iter()) {
            assert_eq!(out.shape().dims(), &[10]);
            let alone = m.forward_batch(std::slice::from_ref(ex)).unwrap();
            let bits: Vec<u32> = out.data().iter().map(|v| v.to_bits()).collect();
            let alone_bits: Vec<u32> = alone[0].data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, alone_bits);
        }
    }

    #[test]
    fn stack_batch_validates_shapes() {
        let m = tiny_model();
        assert!(m.stack_batch(&[]).is_err());
        let bad = Tensor::zeros(&[7, 8, 1]);
        assert!(m.stack_batch(&[bad]).is_err());
        let good = Tensor::zeros(&[8, 8, 1]);
        let stacked = m.stack_batch(&[good.clone(), good]).unwrap();
        assert_eq!(stacked.shape().dims(), &[2, 8, 8, 1]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let m = tiny_model();
        let batch = TensorRng::new(3).uniform_tensor(&[4, 8, 8, 1]);
        let preds = m.predict(&batch).unwrap();
        let acc = m.accuracy(&batch, &preds).unwrap();
        assert_eq!(acc, 1.0);
        let wrong: Vec<usize> = preds.iter().map(|&p| (p + 1) % 10).collect();
        assert_eq!(m.accuracy(&batch, &wrong).unwrap(), 0.0);
        assert!(m.accuracy(&batch, &[0]).is_err());
    }

    #[test]
    fn param_accounting() {
        let m = tiny_model();
        let expect = 3 * 3 * 4 + 4 + 36 * 10 + 10;
        assert_eq!(m.param_count(), expect);
        assert_eq!(m.param_bytes(), expect * 4);
    }

    #[test]
    fn summary_lists_layers() {
        let s = tiny_model().summary();
        assert!(s.contains("Conv2D"));
        assert!(s.contains("Dense"));
        assert!(s.contains("Total trainable parameters"));
    }

    #[test]
    fn clone_preserves_equality() {
        let m = tiny_model();
        let copy = m.clone();
        assert_eq!(m, copy);
    }
}
