//! Criterion counterpart of Table X: single/batch prediction and MILR
//! error-identification time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use milr_bench::{prepare, NetChoice, Scale};
use milr_tensor::TensorRng;

fn bench_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("table10");
    group.sample_size(10);
    for net in [NetChoice::Mnist, NetChoice::CifarSmall] {
        let prep = prepare(net, Scale::Reduced, 0xBE7C);
        let mut single_dims = vec![1usize];
        single_dims.extend_from_slice(prep.model.input_shape());
        let single = TensorRng::new(1).uniform_tensor(&single_dims);
        group.bench_with_input(
            BenchmarkId::new("single_prediction", prep.label.clone()),
            &prep,
            |b, p| b.iter(|| p.model.forward(&single).expect("forward")),
        );
        let mut batch_dims = vec![64usize];
        batch_dims.extend_from_slice(prep.model.input_shape());
        let batch = TensorRng::new(2).uniform_tensor(&batch_dims);
        group.bench_with_input(
            BenchmarkId::new("batch64_prediction", prep.label.clone()),
            &prep,
            |b, p| b.iter(|| p.model.forward(&batch).expect("forward")),
        );
        group.bench_with_input(
            BenchmarkId::new("identification", prep.label.clone()),
            &prep,
            |b, p| b.iter(|| p.milr.detect(&p.model).expect("detect")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_timing);
criterion_main!(benches);
