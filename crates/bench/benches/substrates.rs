//! Micro-benchmarks of the substrates MILR is built on: conv/matmul
//! forward, LU/QR solving, SECDED and AES-XTS throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use milr_ecc::{Secded, SecdedMemory};
use milr_linalg::{lstsq, Mat};
use milr_tensor::{conv2d, ConvSpec, Padding, TensorRng};
use milr_xts::{EncryptedMemory, XtsCipher};

fn bench_substrates(c: &mut Criterion) {
    let mut rng = TensorRng::new(3);

    let input = rng.uniform_tensor(&[1, 28, 28, 8]);
    let filters = rng.uniform_tensor(&[3, 3, 8, 16]);
    let spec = ConvSpec::new(3, 1, Padding::Same).expect("static");
    c.bench_function("conv2d_28x28x8_to_16", |b| {
        b.iter(|| conv2d(&input, &filters, &spec).expect("conv"))
    });

    let a = rng.uniform_tensor(&[128, 128]);
    let bmat = rng.uniform_tensor(&[128, 128]);
    c.bench_function("matmul_128", |b| b.iter(|| a.matmul(&bmat).expect("matmul")));

    let sys = Mat::from_fn(96, 96, |i, j| {
        if i == j {
            50.0
        } else {
            ((i * 31 + j * 7) % 11) as f64 / 11.0
        }
    });
    let rhs: Vec<f64> = (0..96).map(|i| i as f64 * 0.25).collect();
    c.bench_function("lu_solve_96", |b| b.iter(|| sys.solve(&rhs).expect("solve")));
    c.bench_function("qr_lstsq_96", |b| b.iter(|| lstsq(&sys, &rhs).expect("lstsq")));

    let weights: Vec<f32> = (0..4096).map(|i| i as f32 * 0.01).collect();
    c.bench_function("secded_protect_scrub_4096", |b| {
        b.iter(|| {
            let mut mem = SecdedMemory::protect(&weights);
            mem.scrub()
        })
    });
    c.bench_function("secded_encode_word", |b| {
        b.iter(|| Secded::encode(0xDEAD_BEEF))
    });

    let cipher = XtsCipher::new(&[7; 16], &[9; 16]);
    c.bench_function("xts_encrypt_decrypt_4096_weights", |b| {
        b.iter(|| {
            let mem = EncryptedMemory::encrypt(&weights, cipher.clone()).expect("encrypt");
            mem.decrypt_all().expect("decrypt")
        })
    });
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
