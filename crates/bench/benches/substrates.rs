//! Micro-benchmarks of the substrates MILR is built on: conv/matmul
//! forward, LU/QR solving, plus — per [`WeightSubstrate`] — encode,
//! scrub, and decode throughput, and serial-vs-parallel detection.
//!
//! The harness prints a JSON summary after the human-readable rows; set
//! `CRITERION_JSON=BENCH_substrates.json` to also write it to a file.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use milr_bench::{prepare, NetChoice, Scale};
use milr_core::{Milr, MilrConfig};
use milr_ecc::Secded;
use milr_fault::{inject_rber, FaultRng};
use milr_linalg::{lstsq, Mat};
use milr_substrate::SubstrateKind;
use milr_tensor::{conv2d, ConvSpec, Padding, TensorRng};

fn bench_kernels(c: &mut Criterion) {
    let mut rng = TensorRng::new(3);

    let input = rng.uniform_tensor(&[1, 28, 28, 8]);
    let filters = rng.uniform_tensor(&[3, 3, 8, 16]);
    let spec = ConvSpec::new(3, 1, Padding::Same).expect("static");
    c.bench_function("conv2d_28x28x8_to_16", |b| {
        b.iter(|| conv2d(&input, &filters, &spec).expect("conv"))
    });

    let a = rng.uniform_tensor(&[128, 128]);
    let bmat = rng.uniform_tensor(&[128, 128]);
    c.bench_function("matmul_128", |b| {
        b.iter(|| a.matmul(&bmat).expect("matmul"))
    });

    let sys = Mat::from_fn(96, 96, |i, j| {
        if i == j {
            50.0
        } else {
            ((i * 31 + j * 7) % 11) as f64 / 11.0
        }
    });
    let rhs: Vec<f64> = (0..96).map(|i| i as f64 * 0.25).collect();
    c.bench_function("lu_solve_96", |b| {
        b.iter(|| sys.solve(&rhs).expect("solve"))
    });
    c.bench_function("qr_lstsq_96", |b| {
        b.iter(|| lstsq(&sys, &rhs).expect("lstsq"))
    });

    c.bench_function("secded_encode_word", |b| {
        b.iter(|| Secded::encode(0xDEAD_BEEF))
    });
}

/// Per-substrate encode / scrub / decode throughput over a 4096-weight
/// buffer — the substrate columns of the storage/latency story. The
/// quantized arms ride along: their pages are 2–4× smaller, so encode /
/// scrub / decode should track well under the f32 arms.
fn bench_substrate_matrix(c: &mut Criterion) {
    let weights: Vec<f32> = (0..4096).map(|i| i as f32 * 0.01).collect();
    let mut group = c.benchmark_group("substrate_4096");
    group.sample_size(10);
    for kind in SubstrateKind::ALL
        .into_iter()
        .chain(SubstrateKind::QUANTIZED)
    {
        group.bench_with_input(BenchmarkId::new("encode", kind), &weights, |b, w| {
            b.iter(|| kind.store(w))
        });
        group.bench_with_input(BenchmarkId::new("decode", kind), &weights, |b, w| {
            let mem = kind.store(w);
            b.iter(|| mem.read_weights())
        });
        group.bench_with_input(
            BenchmarkId::new("inject_scrub_rber_1e-4", kind),
            &weights,
            |b, w| {
                b.iter(|| {
                    let mut mem = kind.store(w);
                    inject_rber(&mut *mem, 1e-4, &mut FaultRng::seed(7));
                    mem.scrub()
                })
            },
        );
    }
    group.finish();
}

/// Serial vs parallel detection over the reduced MNIST twin — the
/// speedup the layer-parallel detection path buys.
fn bench_detection_parallelism(c: &mut Criterion) {
    let prep = prepare(NetChoice::Mnist, Scale::Reduced, 0xBE7C);
    let mut group = c.benchmark_group("detection");
    group.sample_size(10);
    for (label, parallel) in [("serial", false), ("parallel", true)] {
        let milr = Milr::protect(
            &prep.model,
            MilrConfig {
                parallel,
                ..MilrConfig::default()
            },
        )
        .expect("protect");
        group.bench_with_input(BenchmarkId::from_parameter(label), &milr, |b, m| {
            b.iter(|| m.detect(&prep.model).expect("detect"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_substrate_matrix,
    bench_detection_parallelism
);
criterion_main!(benches);
