//! Criterion counterpart of Figure 11: recovery time vs injected error
//! count (superlinear growth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use milr_bench::{prepare, NetChoice, Scale};
use milr_fault::{inject_whole_weight, FaultRng};

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_recovery");
    group.sample_size(10);
    let prep = prepare(NetChoice::Mnist, Scale::Reduced, 0xBE7C);
    let total = prep.model.param_count();
    for errors in [10usize, 100, 500] {
        let q = errors as f64 / total as f64;
        group.bench_with_input(BenchmarkId::from_parameter(errors), &q, |b, &q| {
            b.iter_batched(
                || {
                    let mut model = prep.model.clone();
                    let mut rng = FaultRng::seed(7);
                    for layer in model.layers_mut() {
                        if let Some(p) = layer.params_mut() {
                            inject_whole_weight(p.data_mut(), q, &mut rng);
                        }
                    }
                    let report = prep.milr.detect(&model).expect("detect");
                    (model, report)
                },
                |(mut model, report)| {
                    let _ = prep.milr.recover(&mut model, &report);
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
