//! # milr-bench
//!
//! Experiment harness regenerating every table and figure of the MILR
//! paper's evaluation (§V). Each binary in `src/bin/` prints the rows or
//! series of one artifact; `benches/` holds the criterion timing
//! counterparts of Table X and Figure 11.
//!
//! The harness runs **reduced-scale twins** of the paper networks by
//! default (same layer-type sequence, smaller tensors) so a full sweep
//! finishes in seconds; pass `--paper-scale` to construct and evaluate
//! the verbatim Tables I–III architectures. Every report prints which
//! scale produced it, and EXPERIMENTS.md records the measured outputs.
//!
//! See DESIGN.md §4 for the experiment-by-experiment index.

#![deny(missing_docs)]

pub mod args;
pub mod arms;
pub mod campaigns;
pub mod fleet;
pub mod json;
pub mod live;
pub mod nets;
pub mod obs;
pub mod serve;
pub mod stats;

pub use args::{Args, ArmSet};
pub use arms::{
    run_layer_corruption, run_rber_trial, run_trial, run_whole_weight_trial, Arm, Injection,
    Recovery, SubstrateKind, TrialResult,
};
pub use nets::{prepare, NetChoice, PreparedNet, Scale};
pub use stats::{normalized_accuracy, BoxStats};
