//! Fleet-extended availability: driving the `milr-fleet` simulation
//! and comparing its measured availability against the paper's
//! Equation 6 model extended to N replicas.
//!
//! Equation 6 prices one instance: every detect+recover cycle costs
//! `T_d + T_r` of downtime, so `A₁ = 1 − (T_d + T_r)/P`. A fleet of N
//! independent replicas is (to first order, faults being independent)
//! down only when **all** replicas are down simultaneously:
//!
//! ```text
//! A_fleet = 1 − (1 − A₁)^N
//! ```
//!
//! The simulation measures both sides of that prediction on the same
//! run: the **fleet** availability (zero replicas serving) and the
//! **capacity** availability (mean replica uptime, which tracks the
//! single-instance `A₁`).

use crate::json::JsonObject;
use milr_core::{Milr, MilrConfig, StorageReport};
use milr_fleet::sim::{simulate_observed, FleetConfig, FleetSimResult};
use milr_nn::Sequential;
use milr_obs::Observer;

/// Modeled-vs-measured availability for one simulated fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetComparison {
    /// Replicas in the fleet.
    pub replicas: usize,
    /// Detection time of one full sweep, seconds (virtual).
    pub td_s: f64,
    /// Recovery time of one quarantine, seconds (virtual).
    pub tr_s: f64,
    /// Mean time between injected faults **per replica**, seconds
    /// (infinite when no faults are configured).
    pub tbe_s: f64,
    /// Full scrub-sweep period, seconds.
    pub cycle_period_s: f64,
    /// Equation 6 for one replica at the scrub cadence.
    pub single_modeled_eq6: f64,
    /// The fleet extension `1 − (1 − A₁)^N` of the Eq. 6 figure.
    pub fleet_modeled_eq6: f64,
    /// Measured mean replica availability (the capacity view) — the
    /// empirical counterpart of `A₁`.
    pub measured_capacity: f64,
    /// Measured fleet availability (down only when all replicas are).
    pub measured_fleet: f64,
}

impl FleetComparison {
    /// Renders the comparison as a flat JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .uint("replicas", self.replicas as u64)
            .float("td_s", self.td_s, 6)
            .float("tr_s", self.tr_s, 6)
            .float(
                "tbe_s",
                if self.tbe_s.is_finite() {
                    self.tbe_s
                } else {
                    -1.0
                },
                6,
            )
            .float("cycle_period_s", self.cycle_period_s, 6)
            .float("single_modeled_eq6", self.single_modeled_eq6, 9)
            .float("fleet_modeled_eq6", self.fleet_modeled_eq6, 9)
            .float("measured_capacity", self.measured_capacity, 9)
            .float("measured_fleet", self.measured_fleet, 9)
            .finish()
    }
}

/// Runs the deterministic fleet simulation and derives the
/// fleet-extended Eq. 6 comparison from the same virtual constants the
/// run used, plus the storage report of the protection instance.
///
/// # Errors
///
/// Propagates MILR protection and fleet simulation failures.
pub fn run_fleet_measured(
    model: &Sequential,
    milr_config: MilrConfig,
    fleet_config: &FleetConfig,
) -> Result<(FleetSimResult, FleetComparison, StorageReport), milr_fleet::FleetError> {
    run_fleet_measured_observed(model, milr_config, fleet_config, &Observer::default())
}

/// [`run_fleet_measured`] with an [`Observer`] threaded through the
/// fleet simulation: per-replica events carry the replica index as
/// their trace source. The observer never changes the run.
///
/// # Errors
///
/// As [`run_fleet_measured`].
pub fn run_fleet_measured_observed(
    model: &Sequential,
    milr_config: MilrConfig,
    fleet_config: &FleetConfig,
    obs: &Observer,
) -> Result<(FleetSimResult, FleetComparison, StorageReport), milr_fleet::FleetError> {
    let milr = Milr::protect(model, milr_config)?;
    let storage = milr.storage_report(model);
    let checkable = milr.checkable_layers().len();
    let result = simulate_observed(model, milr_config, fleet_config, obs)?;
    let td_s = fleet_config.costs.full_detect_ns(checkable) as f64 / 1e9;
    let tr_s = fleet_config.costs.recover_ns as f64 / 1e9;
    let ticks_per_cycle = checkable.div_ceil(fleet_config.layers_per_tick);
    let cycle_period_s = ticks_per_cycle as f64 * fleet_config.scrub_interval_ns as f64 / 1e9;
    let total_faults = fleet_config.faults + fleet_config.heavy_faults;
    let tbe_s = if total_faults == 0 {
        f64::INFINITY
    } else {
        fleet_config.requests as f64 * fleet_config.mean_arrival_ns as f64 / 1e9
            * fleet_config.replicas as f64
            / total_faults as f64
    };
    let overhead = td_s + tr_s;
    let single = (1.0 - overhead / cycle_period_s.max(overhead)).max(0.0);
    let comparison = FleetComparison {
        replicas: fleet_config.replicas,
        td_s,
        tr_s,
        tbe_s,
        cycle_period_s,
        single_modeled_eq6: single,
        fleet_modeled_eq6: 1.0 - (1.0 - single).powi(fleet_config.replicas as i32),
        measured_capacity: result.report.capacity.availability,
        measured_fleet: result.report.fleet.availability,
    };
    Ok((result, comparison, storage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_nn::Layer;
    use milr_substrate::SubstrateKind;
    use milr_tensor::{ConvSpec, Padding, TensorRng};

    fn model() -> Sequential {
        let mut rng = TensorRng::new(9);
        let mut m = Sequential::new(vec![8, 8, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(6 * 6 * 4, 5, &mut rng).unwrap())
            .unwrap();
        m
    }

    #[test]
    fn fleet_run_brackets_availability() {
        let m = model();
        let cfg = FleetConfig {
            requests: 60,
            faults: 1,
            replicas: 2,
            kind: SubstrateKind::Plain,
            ..FleetConfig::default()
        };
        let (result, cmp, storage) = run_fleet_measured(&m, MilrConfig::default(), &cfg).unwrap();
        assert_eq!(result.report.fleet.submitted, 60);
        assert!(storage.milr_bytes() > 0);
        // The fleet model strictly improves on the single-instance one.
        assert!(cmp.fleet_modeled_eq6 >= cmp.single_modeled_eq6);
        // Measured fleet availability dominates the capacity view: the
        // fleet is only down when every replica is.
        assert!(cmp.measured_fleet >= cmp.measured_capacity);
        let json = cmp.to_json();
        assert!(json.contains("fleet_modeled_eq6"));
        assert_eq!(json.matches('{').count(), 1);
    }

    #[test]
    fn fault_free_fleet_is_fully_available() {
        let m = model();
        let cfg = FleetConfig {
            requests: 40,
            faults: 0,
            replicas: 2,
            kind: SubstrateKind::Plain,
            ..FleetConfig::default()
        };
        let (result, cmp, _) = run_fleet_measured(&m, MilrConfig::default(), &cfg).unwrap();
        assert_eq!(result.report.fleet.availability, 1.0);
        assert_eq!(cmp.measured_fleet, 1.0);
        assert!(cmp.tbe_s.is_infinite());
        assert!(cmp.to_json().contains("\"tbe_s\":-1.0"));
    }
}
