//! Chaos-campaign matrix driver: runs declarative [`Campaign`]s from
//! `milr-fault` through **both** deterministic simulations — the
//! single-instance serving sim and the replicated fleet sim — and
//! folds each run's SLO verdict, chaos ground truth, and digest into
//! one byte-reproducible [`CampaignReport`].
//!
//! The campaign declares *what* goes wrong (correlated bursts, stuck-at
//! pages, torn writes mid-heal, byzantine donors, schedule skew) and
//! *what must still hold* (its SLO suite); this module owns the mapping
//! from those declarations onto concrete `SimConfig` / `FleetConfig`
//! runs. Everything downstream of a fixed seed is deterministic, so the
//! report JSON is byte-identical run over run — which is what lets the
//! nastiest campaigns sit in CI as `--slo-gate` regression scenarios.

use milr_core::MilrConfig;
use milr_fault::{
    BurstPattern, BurstSpec, ByzantineSpec, Campaign, ChaosSpec, SkewSpec, SloDecl, SloDeclKind,
    StuckAtSpec, TornWriteSpec,
};
use milr_fleet::{FleetConfig, FleetError};
use milr_nn::Sequential;
use milr_obs::{Observer, SloReport, SloSpec};
use milr_serve::sim::SimConfig;
use milr_serve::ChaosStats;
use milr_substrate::SubstrateKind;

/// The campaigns CI locks in as `--slo-gate` regression scenarios —
/// the two nastiest of the builtin roster: the byzantine-donor
/// campaign (the certified-donor check must catch every corrupted
/// donation) and the kitchen-sink storm (bursts + stuck-at + torn
/// writes + schedule skew at once).
pub const CI_GATED: [&str; 2] = ["byzantine-donors", "skewed-storm"];

/// Workload knobs the matrix driver applies to every campaign (the
/// campaign itself owns seed, chaos composition, and SLOs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixTuning {
    /// Requests per simulated run.
    pub requests: usize,
    /// Replicas in the fleet run.
    pub replicas: usize,
}

impl Default for MatrixTuning {
    fn default() -> Self {
        MatrixTuning {
            requests: 120,
            replicas: 3,
        }
    }
}

fn decl(kind: SloDeclKind, objective_milli: u32) -> SloDecl {
    SloDecl {
        kind,
        objective_milli,
        latency_threshold_ns: 0,
    }
}

/// The latency bar campaigns declare: a request stalled behind a full
/// quarantine-plus-redeploy episode must still answer within 400 ms of
/// virtual time — a guard against catastrophic stall, not a p99 tuned
/// to the fault-free service time (the campaigns *deliberately* spend
/// multi-millisecond outages; see `SloEngine::serving_defaults` for
/// why "fast and three nines" would just mean "always red").
const LATENCY_BAR_NS: u64 = 400_000_000;

/// One campaign's declared suite. Objectives are campaign-scaled and
/// shared by both targets, so they sit at the single-instance bar —
/// the fleet clears them with room, the single instance barely.
/// `heal_milli: None` drops the heal-exactness objective (campaigns
/// whose damage legitimately exceeds exact-heal capacity declare no
/// bit-exactness promise; the redeploy path restores golden state
/// without a heal ever being "exact").
fn suite(avail_milli: u32, latency_milli: u32, heal_milli: Option<u32>) -> Vec<SloDecl> {
    let mut slos = vec![
        decl(SloDeclKind::Availability, avail_milli),
        SloDecl {
            kind: SloDeclKind::LatencyP99,
            objective_milli: latency_milli,
            latency_threshold_ns: LATENCY_BAR_NS,
        },
    ];
    if let Some(heal) = heal_milli {
        slos.push(decl(SloDeclKind::HealExactness, heal));
    }
    slos.push(decl(SloDeclKind::Durability, 900));
    slos
}

/// Maps a campaign's numeric SLO declarations onto the observability
/// plane's [`SloSpec`] suite (`milr-fault` stays free of an obs
/// dependency; this is the one place the two vocabularies meet).
pub fn slo_suite(decls: &[SloDecl]) -> Vec<SloSpec> {
    decls
        .iter()
        .map(|d| {
            let objective = f64::from(d.objective_milli) / 1000.0;
            match d.kind {
                SloDeclKind::Availability => SloSpec::availability(objective),
                SloDeclKind::LatencyP99 => SloSpec::latency_p99(d.latency_threshold_ns, objective),
                SloDeclKind::HealExactness => SloSpec::heal_exactness(objective),
                SloDeclKind::Durability => SloSpec::durability(objective),
            }
        })
        .collect()
}

/// The builtin campaign roster: one campaign per correlated-fault
/// regime, plus the two [`CI_GATED`] composites.
pub fn builtin_campaigns() -> Vec<Campaign> {
    vec![
        Campaign {
            name: "row-burst".into(),
            seed: 0xCA11_0001,
            chaos: ChaosSpec {
                bursts: Some(BurstSpec {
                    pattern: BurstPattern::Row,
                    bursts: 3,
                    flip_prob_milli: 300,
                }),
                ..ChaosSpec::default()
            },
            slos: suite(200, 300, None),
        },
        Campaign {
            name: "column-stuck".into(),
            seed: 0xCA11_0002,
            chaos: ChaosSpec {
                bursts: Some(BurstSpec {
                    pattern: BurstPattern::Column,
                    bursts: 2,
                    flip_prob_milli: 400,
                }),
                stuck_at: Some(StuckAtSpec {
                    bits: 8,
                    from_milli: 100,
                    until_milli: 700,
                }),
                ..ChaosSpec::default()
            },
            slos: suite(500, 300, Some(250)),
        },
        Campaign {
            name: "torn-heal".into(),
            seed: 0xCA11_0003,
            chaos: ChaosSpec {
                torn_write: Some(TornWriteSpec {
                    stage: "Heal".into(),
                    fires: 2,
                    flips: 6,
                }),
                ..ChaosSpec::default()
            },
            slos: suite(500, 300, Some(250)),
        },
        Campaign {
            name: "byzantine-donors".into(),
            seed: 0xCA11_0004,
            chaos: ChaosSpec {
                byzantine: Some(ByzantineSpec {
                    donors: vec![0, 1],
                    flips: 24,
                }),
                ..ChaosSpec::default()
            },
            slos: suite(500, 300, Some(250)),
        },
        Campaign {
            name: "skewed-storm".into(),
            seed: 0xCA11_0005,
            chaos: ChaosSpec {
                bursts: Some(BurstSpec {
                    pattern: BurstPattern::DoubleSidedRow,
                    bursts: 2,
                    flip_prob_milli: 400,
                }),
                stuck_at: Some(StuckAtSpec {
                    bits: 6,
                    from_milli: 100,
                    until_milli: 600,
                }),
                torn_write: Some(TornWriteSpec {
                    stage: "Verify".into(),
                    fires: 1,
                    flips: 4,
                }),
                skew: Some(SkewSpec {
                    arrival_milli: 900,
                    scrub_milli: 1200,
                }),
                ..ChaosSpec::default()
            },
            slos: suite(300, 300, Some(250)),
        },
    ]
}

/// The serving-sim half of a campaign run: the campaign's seed, chaos
/// overlay, and SLO suite over the matrix workload, on the ECC
/// substrate (bursts and stuck-at cells are raw-image regimes; the
/// interesting question is what leaks *through* the ECC layer).
pub fn serve_config(campaign: &Campaign, tuning: &MatrixTuning) -> SimConfig {
    SimConfig {
        seed: campaign.seed,
        requests: tuning.requests,
        faults: 1,
        kind: SubstrateKind::Secded,
        chaos: Some(campaign.chaos.clone()),
        slo_specs: Some(slo_suite(&campaign.slos)),
        ..SimConfig::default()
    }
}

/// The fleet half: same derivation, plus one beyond-MILR-capacity
/// heavy fault whenever the campaign fields byzantine donors — peer
/// repair must actually happen for a corrupted donation to exist.
pub fn fleet_config(campaign: &Campaign, tuning: &MatrixTuning) -> FleetConfig {
    FleetConfig {
        seed: campaign.seed,
        replicas: tuning.replicas,
        requests: tuning.requests,
        faults: 1,
        heavy_faults: usize::from(campaign.chaos.byzantine.is_some()),
        chaos: Some(campaign.chaos.clone()),
        slo_specs: Some(slo_suite(&campaign.slos)),
        ..FleetConfig::default()
    }
}

fn chaos_json(c: &ChaosStats) -> String {
    format!(
        concat!(
            "{{\"bursts_fired\":{},\"burst_bits\":{},\"stuck_asserts\":{},",
            "\"torn_fires\":{},\"redeploys\":{}}}"
        ),
        c.bursts_fired, c.burst_bits, c.stuck_asserts, c.torn_fires, c.redeploys
    )
}

/// One simulation target's slice of a campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetVerdict {
    /// `"serve"` or `"fleet"`.
    pub target: &'static str,
    /// The run's output digest (seed-reproducible).
    pub digest: u64,
    /// Requests completed.
    pub completed: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Faults injected (workload faults plus chaos injections).
    pub faults_injected: usize,
    /// Completed peer-repair episodes (fleet only; 0 for serve).
    pub peer_repairs: usize,
    /// Donations rejected by post-import verification (fleet only).
    pub rejected_donations: usize,
    /// What the chaos overlay actually injected.
    pub chaos: ChaosStats,
    /// The run's SLO verdict against the campaign's declared suite.
    pub slo: SloReport,
}

impl TargetVerdict {
    /// Deterministic JSON object (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"target\":\"{}\",\"digest\":{},\"completed\":{},\"rejected\":{},",
                "\"faults_injected\":{},\"peer_repairs\":{},\"rejected_donations\":{},",
                "\"chaos\":{},\"slo\":{},\"pass\":{}}}"
            ),
            self.target,
            self.digest,
            self.completed,
            self.rejected,
            self.faults_injected,
            self.peer_repairs,
            self.rejected_donations,
            chaos_json(&self.chaos),
            self.slo.to_json(),
            self.slo.pass,
        )
    }
}

/// The full verdict of one campaign across both simulation targets.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The campaign that ran (name, seed, chaos, declared SLOs).
    pub campaign: Campaign,
    /// The single-instance serving run.
    pub serve: TargetVerdict,
    /// The replicated fleet run.
    pub fleet: TargetVerdict,
}

impl CampaignReport {
    /// True when the campaign fielded no byzantine donors, or the
    /// certified-donor check caught at least one corrupted donation.
    /// A byzantine campaign where nothing was caught is a *harness*
    /// failure — the adversary never engaged — and must not pass.
    pub fn byzantine_caught(&self) -> bool {
        self.campaign.chaos.byzantine.is_none() || self.fleet.rejected_donations > 0
    }

    /// The campaign verdict: both targets hold their declared SLO
    /// suite, and any declared byzantine adversary was caught.
    pub fn pass(&self) -> bool {
        self.serve.slo.pass && self.fleet.slo.pass && self.byzantine_caught()
    }

    /// Deterministic JSON object: same seed in, same bytes out.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"campaign\":{},\"serve\":{},\"fleet\":{},\"byzantine_caught\":{},\"pass\":{}}}",
            self.campaign.to_json(),
            self.serve.to_json(),
            self.fleet.to_json(),
            self.byzantine_caught(),
            self.pass(),
        )
    }
}

/// Runs one campaign through both simulations with an [`Observer`]
/// threaded through the fleet run (the richer target: per-replica
/// trace sources, peer-repair events). The observer never changes the
/// run — the returned report is byte-identical with or without one.
///
/// # Errors
///
/// Propagates MILR protection/detection/recovery and store failures.
pub fn run_campaign_observed(
    model: &Sequential,
    campaign: &Campaign,
    tuning: &MatrixTuning,
    obs: &Observer,
) -> Result<CampaignReport, FleetError> {
    let serve_result = milr_serve::sim::simulate(
        model,
        MilrConfig::default(),
        &serve_config(campaign, tuning),
    )?;
    let sr = &serve_result.report;
    let serve = TargetVerdict {
        target: "serve",
        digest: sr.digest,
        completed: sr.completed,
        rejected: sr.rejected,
        faults_injected: sr.faults_injected,
        peer_repairs: 0,
        rejected_donations: 0,
        chaos: serve_result.chaos.unwrap_or_default(),
        slo: sr
            .slo
            .clone()
            .expect("serve run carries the campaign SLO suite"),
    };
    let fleet_result = milr_fleet::sim::simulate_observed(
        model,
        MilrConfig::default(),
        &fleet_config(campaign, tuning),
        obs,
    )?;
    let fr = &fleet_result.report;
    let fleet = TargetVerdict {
        target: "fleet",
        digest: fr.fleet.digest,
        completed: fr.fleet.completed,
        rejected: fr.fleet.rejected,
        faults_injected: fr.fleet.faults_injected,
        peer_repairs: fr.peer_repairs(),
        rejected_donations: fr.rejected_donations(),
        chaos: fleet_result.chaos.unwrap_or_default(),
        slo: fr
            .fleet
            .slo
            .clone()
            .expect("fleet run carries the campaign SLO suite"),
    };
    Ok(CampaignReport {
        campaign: campaign.clone(),
        serve,
        fleet,
    })
}

/// [`run_campaign_observed`] without observation.
///
/// # Errors
///
/// As [`run_campaign_observed`].
pub fn run_campaign(
    model: &Sequential,
    campaign: &Campaign,
    tuning: &MatrixTuning,
) -> Result<CampaignReport, FleetError> {
    run_campaign_observed(model, campaign, tuning, &Observer::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_models::serving_probe;

    fn small_tuning() -> MatrixTuning {
        MatrixTuning {
            requests: 60,
            replicas: 3,
        }
    }

    #[test]
    fn roster_names_are_unique_and_cover_the_ci_gate() {
        let roster = builtin_campaigns();
        let names: Vec<&str> = roster.iter().map(|c| c.name.as_str()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate campaign names");
        for gated in CI_GATED {
            assert!(names.contains(&gated), "CI-gated {gated} not in roster");
        }
        // Every campaign declares a non-empty chaos overlay and SLOs.
        for c in &roster {
            assert!(!c.chaos.is_quiet(), "{} is quiet", c.name);
            assert!(!c.slos.is_empty(), "{} declares no SLOs", c.name);
        }
    }

    #[test]
    fn slo_suite_maps_every_declared_kind() {
        let specs = slo_suite(&suite(500, 300, Some(250)));
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].name, "availability");
        assert!((specs[0].objective - 0.5).abs() < 1e-12);
        assert_eq!(specs[1].latency_threshold_ns, LATENCY_BAR_NS);
        assert!((specs[1].objective - 0.3).abs() < 1e-12);
        assert_eq!(specs[2].name, "heal_exactness");
        assert_eq!(specs[3].name, "durability");
        // Campaigns may decline the heal-exactness objective.
        assert_eq!(slo_suite(&suite(200, 300, None)).len(), 3);
    }

    #[test]
    fn campaign_report_json_is_byte_identical_across_runs() {
        let model = serving_probe(11);
        let campaign = builtin_campaigns()
            .into_iter()
            .find(|c| c.name == "skewed-storm")
            .unwrap();
        let tuning = small_tuning();
        let a = run_campaign(&model, &campaign, &tuning).unwrap();
        let b = run_campaign(&model, &campaign, &tuning).unwrap();
        assert_eq!(a, b, "campaign run diverged under a fixed seed");
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "campaign report JSON not byte-identical"
        );
        // The chaos overlay actually engaged on both targets.
        assert!(a.serve.chaos.bursts_fired > 0);
        assert!(a.fleet.chaos.bursts_fired > 0);
        assert!(a
            .to_json()
            .contains("\"campaign\":{\"name\":\"skewed-storm\""));
    }

    #[test]
    fn byzantine_campaign_catches_the_adversary() {
        let model = serving_probe(11);
        let campaign = builtin_campaigns()
            .into_iter()
            .find(|c| c.name == "byzantine-donors")
            .unwrap();
        let report = run_campaign(&model, &campaign, &small_tuning()).unwrap();
        assert!(
            report.fleet.rejected_donations >= 1,
            "byzantine donor was never caught"
        );
        assert!(report.byzantine_caught());
        let json = report.to_json();
        assert!(json.contains("\"byzantine_caught\":true"));
    }
}
