//! Network preparation: build, train briefly, protect.

use milr_core::{Milr, MilrConfig};
use milr_nn::{data, Sequential, Trainer, TrainerConfig};

/// Which evaluation network family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetChoice {
    /// Table I / Figures 5–6 / Tables IV–V.
    Mnist,
    /// Table II / Figures 7–8 / Tables VI–VII.
    CifarSmall,
    /// Table III / Figures 9–10 / Tables VIII–IX.
    CifarLarge,
}

impl NetChoice {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            NetChoice::Mnist => "MNIST",
            NetChoice::CifarSmall => "CIFAR-10 small",
            NetChoice::CifarLarge => "CIFAR-10 large",
        }
    }
}

/// Network scale for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced twin (same layer-type sequence, smaller tensors).
    Reduced,
    /// Verbatim Tables I–III architecture.
    Paper,
}

/// A trained, protected network plus its held-out test set.
#[derive(Debug)]
pub struct PreparedNet {
    /// Display name including the scale.
    pub label: String,
    /// The trained model (the golden state).
    pub model: Sequential,
    /// MILR protection built on the golden state.
    pub milr: Milr,
    /// Held-out test set for accuracy measurement.
    pub test: data::Dataset,
    /// Error-free accuracy on `test` (denominator of normalized
    /// accuracy).
    pub clean_accuracy: f64,
}

/// Builds, trains and protects the requested network.
///
/// Reduced scale trains to genuinely discriminative accuracy in under a
/// second; paper scale constructs the full Tables I–III architectures
/// and trains them briefly on the synthetic datasets (minutes, and the
/// dense-layer recovery systems become the paper's full sizes).
pub fn prepare(net: NetChoice, scale: Scale, seed: u64) -> PreparedNet {
    prepare_with_config(net, scale, seed, MilrConfig::default())
}

/// [`prepare`] with an explicit MILR configuration (used by the
/// ablation binaries).
pub fn prepare_with_config(
    net: NetChoice,
    scale: Scale,
    seed: u64,
    config: MilrConfig,
) -> PreparedNet {
    // Small-data CNN training occasionally collapses for an unlucky
    // initialization; retry with a reseeded init (the golden network
    // just needs non-trivial accuracy for normalized measurements).
    let mut best: Option<PreparedNet> = None;
    for attempt in 0..3u64 {
        let candidate = prepare_once(net, scale, seed.wrapping_add(attempt * 101), config);
        let good_enough = candidate.clean_accuracy >= 0.35;
        let better = best
            .as_ref()
            .map(|b| candidate.clean_accuracy > b.clean_accuracy)
            .unwrap_or(true);
        if better {
            best = Some(candidate);
        }
        if good_enough {
            break;
        }
    }
    best.expect("at least one attempt ran")
}

fn prepare_once(net: NetChoice, scale: Scale, seed: u64, config: MilrConfig) -> PreparedNet {
    let (label, mut model, train, test) = match (net, scale) {
        (NetChoice::Mnist, Scale::Reduced) => {
            let n = milr_models::reduced_mnist(seed);
            (
                format!("{} [reduced]", net.name()),
                n.model,
                data::digits(300, 14, seed ^ 0xAAAA),
                data::digits(100, 14, seed ^ 0x5555),
            )
        }
        (NetChoice::CifarSmall, Scale::Reduced) | (NetChoice::CifarLarge, Scale::Reduced) => {
            let n = milr_models::reduced_cifar_small(seed);
            (
                format!("{} [reduced]", net.name()),
                n.model,
                data::patches(300, 16, seed ^ 0xAAAA),
                data::patches(100, 16, seed ^ 0x5555),
            )
        }
        (NetChoice::Mnist, Scale::Paper) => {
            let n = milr_models::mnist(seed);
            (
                format!("{} [paper]", net.name()),
                n.model,
                data::digits(200, 28, seed ^ 0xAAAA),
                data::digits(60, 28, seed ^ 0x5555),
            )
        }
        (NetChoice::CifarSmall, Scale::Paper) => {
            let n = milr_models::cifar_small(seed);
            (
                format!("{} [paper]", net.name()),
                n.model,
                data::patches(200, 32, seed ^ 0xAAAA),
                data::patches(60, 32, seed ^ 0x5555),
            )
        }
        (NetChoice::CifarLarge, Scale::Paper) => {
            let n = milr_models::cifar_large(seed);
            (
                format!("{} [paper]", net.name()),
                n.model,
                data::patches(200, 32, seed ^ 0xAAAA),
                data::patches(60, 32, seed ^ 0x5555),
            )
        }
    };
    let mut trainer = Trainer::new(TrainerConfig {
        learning_rate: 0.02,
        momentum: 0.9,
        seed,
    });
    let (epochs, batch) = match scale {
        Scale::Reduced => (15, 25),
        Scale::Paper => (2, 25),
    };
    trainer
        .fit(&mut model, &train, epochs, batch)
        .expect("training the prepared nets cannot fail structurally");
    let clean_accuracy = model
        .accuracy(&test.images, &test.labels)
        .expect("test set matches model input");
    let milr = Milr::protect(&model, config).expect("protection of a valid model succeeds");
    PreparedNet {
        label,
        model,
        milr,
        test,
        clean_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_mnist_prepares_and_learns() {
        let p = prepare(NetChoice::Mnist, Scale::Reduced, 3);
        assert!(p.label.contains("reduced"));
        assert!(
            p.clean_accuracy > 0.5,
            "clean accuracy {}",
            p.clean_accuracy
        );
        // Protection is live: a clean detect pass.
        let report = p.milr.detect(&p.model).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn reduced_cifar_prepares() {
        let p = prepare(NetChoice::CifarSmall, Scale::Reduced, 4);
        assert!(p.clean_accuracy > 0.4, "{}", p.clean_accuracy);
    }
}
