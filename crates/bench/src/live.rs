//! Live-server load driver: the real multi-threaded [`Server`] under a
//! wall-clock fault campaign, measured for sustained throughput.
//!
//! Where [`crate::serve`] runs the deterministic virtual-clock twin,
//! this module actually spins up the worker pool and scrubber daemon,
//! pushes a seeded workload through it while a campaign thread keeps
//! injecting weight faults, and reports end-to-end QPS. Running it once
//! per [`ReadPath`] quantifies the fused decode-forward path against
//! the legacy materialize-per-batch server on identical hardware, the
//! same seed, and the same campaign cadence.

use milr_core::MilrConfig;
use milr_nn::Sequential;
use milr_serve::{ReadPath, ServeError, ServeReport, Server, ServerConfig};
use milr_substrate::SubstrateKind;
use milr_tensor::{Tensor, TensorRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// One live load run's knobs.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Requests pushed through the server.
    pub requests: usize,
    /// Input-generation seed (shared across compared runs).
    pub seed: u64,
    /// Worker pool size.
    pub workers: usize,
    /// Maximum requests coalesced into one batch.
    pub batch_max: usize,
    /// Continuous-batching admission deadline (`ZERO` = legacy
    /// immediate dispatch).
    pub batch_wait: Duration,
    /// Scrubber cadence.
    pub scrub_interval: Duration,
    /// Substrate kind backing the weight shards. The encrypted kinds
    /// make the legacy path's per-batch whole-model decode visible.
    pub substrate: SubstrateKind,
    /// Fault-campaign cadence; `None` disables injection.
    pub fault_every: Option<Duration>,
    /// Campaign injection cap; `None` keeps injecting until the
    /// workload drains. A cap guarantees a fault-free tail, so every
    /// request eventually certifies even when a scrub cycle is slower
    /// than the fault cadence (debug builds, starved boxes).
    pub max_faults: Option<usize>,
    /// Optional structured trace sink handed to the server. Live
    /// events stamp wall time since server start.
    pub trace: Option<milr_obs::TraceHandle>,
    /// Optional span sink handed to the server (batch, engine, and
    /// journal trees stamped with wall time since server start).
    pub spans: Option<milr_obs::SpanHandle>,
    /// Optional live-introspection bind address forwarded to
    /// [`ServerConfig::http_addr`]; the bound address is printed so a
    /// probe can curl `/metrics`, `/health`, `/slo`, and `/spans`
    /// while the campaign runs.
    pub http_addr: Option<String>,
    /// How long to keep the server (and its introspection listener)
    /// up after the workload drains. A release-mode fused run can
    /// finish in tens of milliseconds — too narrow a window for an
    /// external probe — so CI smoke runs hold the served endpoints
    /// open briefly. Ignored when no listener is bound; does not
    /// affect the measured elapsed time or QPS.
    pub http_hold: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            requests: 200,
            seed: 0x11FE,
            workers: 2,
            batch_max: 8,
            batch_wait: Duration::ZERO,
            scrub_interval: Duration::from_millis(2),
            substrate: SubstrateKind::XtsSecded,
            fault_every: Some(Duration::from_millis(40)),
            max_faults: None,
            trace: None,
            spans: None,
            http_addr: None,
            http_hold: Duration::ZERO,
        }
    }
}

/// What one live run measured.
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    /// The server's own shutdown report.
    pub report: ServeReport,
    /// Wall time from first submission to last certified response.
    pub elapsed: Duration,
    /// Sustained completed-requests-per-second over `elapsed`.
    pub qps: f64,
    /// Weight faults the campaign injected.
    pub faults_injected: usize,
    /// The server's metrics snapshot, taken just before shutdown.
    pub metrics: milr_obs::MetricsSnapshot,
}

impl LiveOutcome {
    /// Renders the outcome as a JSON object embedding the full report.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"qps\":{:.3},\"elapsed_s\":{:.6},\"faults_injected\":{},\"report\":{}}}",
            self.qps,
            self.elapsed.as_secs_f64(),
            self.faults_injected,
            self.report.to_json()
        )
    }
}

/// Runs the live server once with the given read path. The submitter
/// retries on queue-full backpressure, so every request eventually
/// resolves; the campaign thread keeps flipping one weight of the first
/// parameterized layer until the workload drains.
///
/// # Errors
///
/// Propagates MILR protection failures from server start-up.
///
/// # Panics
///
/// Panics when `model` has no parameterized layer to inject into while
/// a campaign cadence is configured.
pub fn run_live(
    model: &Sequential,
    milr_config: MilrConfig,
    read_path: ReadPath,
    cfg: &LiveConfig,
) -> milr_core::Result<LiveOutcome> {
    let server = Server::start(
        model,
        milr_config,
        ServerConfig {
            workers: cfg.workers,
            batch_max: cfg.batch_max,
            batch_wait: cfg.batch_wait,
            scrub_interval: cfg.scrub_interval,
            substrate: cfg.substrate,
            read_path,
            trace: cfg.trace.clone(),
            spans: cfg.spans.clone(),
            http_addr: cfg.http_addr.clone(),
            ..ServerConfig::default()
        },
    )?;
    if let Some(addr) = server.http_addr() {
        println!("live introspection: http://{addr}");
    }
    let (fault_layer, fault_weights) = model
        .layers()
        .iter()
        .enumerate()
        .find_map(|(i, l)| l.params().map(|p| (i, p.numel())))
        .expect("model has a parameterized layer");

    let mut rng = TensorRng::new(cfg.seed);
    let inputs: Vec<Tensor> = (0..cfg.requests)
        .map(|_| rng.uniform_tensor(model.input_shape()))
        .collect();

    let done = AtomicBool::new(false);
    let start = Instant::now();
    let (completed, faults, elapsed) = std::thread::scope(|s| {
        let campaign = cfg.fault_every.map(|every| {
            let server = &server;
            let done = &done;
            let cap = cfg.max_faults.unwrap_or(usize::MAX);
            s.spawn(move || {
                let mut injected = 0usize;
                let mut weight = 0usize;
                while injected < cap && !done.load(Ordering::Acquire) {
                    std::thread::sleep(every);
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    server.inject_weight_fault(fault_layer, weight % fault_weights);
                    weight = weight.wrapping_add(97);
                    injected += 1;
                }
                injected
            })
        });
        let mut handles = Vec::with_capacity(inputs.len());
        for input in &inputs {
            loop {
                match server.submit(input.clone()) {
                    Ok(h) => {
                        handles.push(h);
                        break;
                    }
                    // Backpressure (queue full) or reject-policy
                    // shedding: retry until admitted.
                    Err(ServeError::Rejected(_)) => std::thread::sleep(Duration::from_micros(200)),
                    Err(ServeError::Stopped) => unreachable!("server is still running"),
                }
            }
        }
        let mut completed = 0usize;
        for h in handles {
            completed += usize::from(h.wait().is_ok());
        }
        let elapsed = start.elapsed();
        done.store(true, Ordering::Release);
        let faults = campaign.map(|c| c.join().expect("campaign panicked"));
        (completed, faults.unwrap_or(0), elapsed)
    });
    if server.http_addr().is_some() && !cfg.http_hold.is_zero() {
        std::thread::sleep(cfg.http_hold);
    }
    let metrics = server.metrics_snapshot();
    let report = server.shutdown();
    Ok(LiveOutcome {
        qps: completed as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        elapsed,
        faults_injected: faults,
        report,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_nn::Layer;
    use milr_tensor::{ConvSpec, Padding};

    fn model() -> Sequential {
        let mut rng = TensorRng::new(31);
        let mut m = Sequential::new(vec![8, 8, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(6 * 6 * 4, 5, &mut rng).unwrap())
            .unwrap();
        m
    }

    #[test]
    fn live_run_completes_the_workload_on_both_read_paths() {
        let m = model();
        let cfg = LiveConfig {
            requests: 24,
            scrub_interval: Duration::from_millis(1),
            substrate: SubstrateKind::Secded,
            fault_every: Some(Duration::from_millis(10)),
            // Bounded campaign: without a cap, a debug-mode scrub cycle
            // can outlast the 10 ms fault gap and no request ever
            // certifies (livelock).
            max_faults: Some(2),
            ..LiveConfig::default()
        };
        for path in [ReadPath::Fused, ReadPath::LegacyMaterialize] {
            let out = run_live(&m, MilrConfig::default(), path, &cfg).unwrap();
            assert_eq!(out.report.completed, 24, "{path:?} lost requests");
            assert!(out.qps > 0.0);
            let json = out.to_json();
            assert!(json.starts_with("{\"qps\":"));
            assert!(json.contains("\"report\":{\"seed\":"));
        }
    }
}
