//! Injection-and-recovery arms: the four protection configurations the
//! paper compares (no recovery, ECC, MILR, ECC + MILR), applied to one
//! trial each.

use crate::nets::PreparedNet;
use milr_core::RecoveryOutcome;
use milr_ecc::SecdedMemory;
use milr_fault::{corrupt_layer, inject_rber, inject_secded_rber, inject_whole_weight, FaultRng};
use milr_nn::Sequential;

/// Protection arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Raw injection, no recovery (panel (a) of Figures 5/7/9).
    None,
    /// Per-word SECDED in DRAM: inject into code words, scrub (panel
    /// (b)).
    Ecc,
    /// MILR detection + recovery on plaintext weights (panel (c)).
    Milr,
    /// ECC scrub first, MILR on the residual multi-bit errors (panel
    /// (d)).
    EccMilr,
}

impl Arm {
    /// Panel label used in report headers.
    pub fn label(&self) -> &'static str {
        match self {
            Arm::None => "No recovery",
            Arm::Ecc => "ECC",
            Arm::Milr => "MILR",
            Arm::EccMilr => "ECC + MILR",
        }
    }
}

/// Outcome of one injection trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// Absolute post-trial accuracy on the held-out set.
    pub accuracy: f64,
    /// Accuracy normalized to the error-free network (the paper's
    /// y-axis).
    pub normalized: f64,
    /// Layers MILR flagged (0 for arms without MILR).
    pub flagged_layers: usize,
}

fn accuracy_of(prep: &PreparedNet, model: &Sequential) -> (f64, f64) {
    let accuracy = model
        .accuracy(&prep.test.images, &prep.test.labels)
        .unwrap_or(0.0);
    let normalized = if prep.clean_accuracy > 0.0 {
        accuracy / prep.clean_accuracy
    } else {
        0.0
    };
    (accuracy, normalized)
}

fn inject_raw(model: &mut Sequential, rber: f64, rng: &mut FaultRng) {
    for layer in model.layers_mut() {
        if let Some(p) = layer.params_mut() {
            inject_rber(p.data_mut(), rber, rng);
        }
    }
}

/// Injects at `rber` into ECC code words per layer, scrubs like a memory
/// controller, and writes the decoded weights back.
fn inject_through_ecc(model: &mut Sequential, rber: f64, rng: &mut FaultRng) {
    for layer in model.layers_mut() {
        if let Some(p) = layer.params_mut() {
            let mut mem = SecdedMemory::protect(p.data());
            inject_secded_rber(&mut mem, rber, rng);
            let (decoded, _report) = mem.scrub();
            p.data_mut().copy_from_slice(&decoded);
        }
    }
}

/// One random-bit-flip trial (experiment 1, Figures 5/7/9).
pub fn run_rber_trial(prep: &PreparedNet, arm: Arm, rber: f64, seed: u64) -> TrialResult {
    let mut model = prep.model.clone();
    let mut rng = FaultRng::seed(seed);
    let mut flagged_layers = 0usize;
    match arm {
        Arm::None => inject_raw(&mut model, rber, &mut rng),
        Arm::Ecc => inject_through_ecc(&mut model, rber, &mut rng),
        Arm::Milr => {
            inject_raw(&mut model, rber, &mut rng);
            if let Ok(report) = prep.milr.detect(&model) {
                flagged_layers = report.flagged.len();
                let _ = prep.milr.recover(&mut model, &report);
            }
        }
        Arm::EccMilr => {
            inject_through_ecc(&mut model, rber, &mut rng);
            if let Ok(report) = prep.milr.detect(&model) {
                flagged_layers = report.flagged.len();
                let _ = prep.milr.recover(&mut model, &report);
            }
        }
    }
    let (accuracy, normalized) = accuracy_of(prep, &model);
    TrialResult {
        accuracy,
        normalized,
        flagged_layers,
    }
}

/// One whole-weight-error trial (experiment 2, Figures 6/8/10). Only the
/// `None` and `Milr` arms are meaningful: "ECC and ECC + MILR were not
/// tested with this scheme as ECC can only correct 1 bit errors and all
/// errors injected would be 32 bit errors" (§V-B).
pub fn run_whole_weight_trial(prep: &PreparedNet, arm: Arm, q: f64, seed: u64) -> TrialResult {
    let mut model = prep.model.clone();
    let mut rng = FaultRng::seed(seed);
    let mut flagged_layers = 0usize;
    for layer in model.layers_mut() {
        if let Some(p) = layer.params_mut() {
            inject_whole_weight(p.data_mut(), q, &mut rng);
        }
    }
    if arm == Arm::Milr {
        if let Ok(report) = prep.milr.detect(&model) {
            flagged_layers = report.flagged.len();
            let _ = prep.milr.recover(&mut model, &report);
        }
    }
    let (accuracy, normalized) = accuracy_of(prep, &model);
    TrialResult {
        accuracy,
        normalized,
        flagged_layers,
    }
}

/// One row of the whole-layer-corruption tables (IV/VI/VIII).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCorruptionRow {
    /// Layer index in the model.
    pub index: usize,
    /// Layer kind ("Conv2D", "Bias", "Dense").
    pub kind: String,
    /// Normalized accuracy with the corrupted layer left in place.
    pub none_normalized: f64,
    /// Normalized accuracy after MILR recovery.
    pub milr_normalized: f64,
    /// True when recovery was the approximate least-squares path (the
    /// paper's "N/A — convolution partial recoverable" marker).
    pub partial_marker: bool,
}

/// Experiment 3: corrupts every parameterized layer in turn, measuring
/// accuracy without and with MILR recovery (Tables IV/VI/VIII).
pub fn run_layer_corruption(prep: &PreparedNet, seed: u64) -> Vec<LayerCorruptionRow> {
    let mut rows = Vec::new();
    for (i, layer) in prep.model.layers().iter().enumerate() {
        if layer.param_count() == 0 {
            continue;
        }
        let mut model = prep.model.clone();
        let mut rng = FaultRng::seed(seed ^ (i as u64) << 8);
        corrupt_layer(
            model.layers_mut()[i].params_mut().expect("param layer").data_mut(),
            &mut rng,
        );
        let (_, none_normalized) = accuracy_of(prep, &model);
        let rec = prep
            .milr
            .recover_layers(&mut model, &[i])
            .expect("structure matches");
        let partial_marker = rec
            .outcomes
            .iter()
            .any(|(_, o)| matches!(o, RecoveryOutcome::MinNorm { .. }));
        let (_, milr_normalized) = accuracy_of(prep, &model);
        rows.push(LayerCorruptionRow {
            index: i,
            kind: layer.kind_name().to_string(),
            none_normalized,
            milr_normalized,
            partial_marker,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nets::{prepare, NetChoice, Scale};

    fn prep() -> PreparedNet {
        prepare(NetChoice::Mnist, Scale::Reduced, 11)
    }

    #[test]
    fn zero_rate_trials_are_clean() {
        let p = prep();
        for arm in [Arm::None, Arm::Ecc, Arm::Milr, Arm::EccMilr] {
            let r = run_rber_trial(&p, arm, 0.0, 1);
            assert!(
                (r.normalized - 1.0).abs() < 1e-9,
                "{:?}: {r:?}",
                arm.label()
            );
        }
    }

    #[test]
    fn milr_beats_none_at_high_rate() {
        // 5e-4 on the reduced net is where the paper-shape gap is
        // widest: the unprotected network collapses while MILR still
        // recovers most trials (cf. Figure 5 panels a/c).
        let p = prep();
        let mut none_sum = 0.0;
        let mut milr_sum = 0.0;
        for t in 0..5 {
            none_sum += run_rber_trial(&p, Arm::None, 5e-4, t).normalized;
            milr_sum += run_rber_trial(&p, Arm::Milr, 5e-4, t).normalized;
        }
        assert!(
            milr_sum > none_sum,
            "MILR {milr_sum} not better than none {none_sum}"
        );
    }

    #[test]
    fn ecc_corrects_everything_at_low_rate() {
        let p = prep();
        let r = run_rber_trial(&p, Arm::Ecc, 1e-5, 3);
        assert!((r.normalized - 1.0).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn whole_weight_milr_recovers() {
        let p = prep();
        let none = run_whole_weight_trial(&p, Arm::None, 5e-3, 4);
        let milr = run_whole_weight_trial(&p, Arm::Milr, 5e-3, 4);
        assert!(milr.normalized >= none.normalized, "{milr:?} vs {none:?}");
        assert!(milr.flagged_layers > 0);
    }

    #[test]
    fn layer_corruption_rows_cover_param_layers() {
        let p = prep();
        let rows = run_layer_corruption(&p, 5);
        let param_layers = p
            .model
            .layers()
            .iter()
            .filter(|l| l.param_count() > 0)
            .count();
        assert_eq!(rows.len(), param_layers);
        // Fully-recoverable layers restore ~100% normalized accuracy.
        for row in &rows {
            if !row.partial_marker {
                assert!(
                    row.milr_normalized > 0.95,
                    "layer {} ({}) only {}",
                    row.index,
                    row.kind,
                    row.milr_normalized
                );
            }
            assert!(row.milr_normalized + 1e-9 >= row.none_normalized * 0.5);
        }
    }
}
