//! Injection-and-recovery arms as a **substrate × recovery** matrix.
//!
//! The paper compares four protection configurations over DRAM (no
//! recovery, ECC, MILR, ECC + MILR) and motivates three more for
//! encrypted VMs (XTS, XTS + MILR, XTS + ECC + MILR). Each arm is the
//! product of a memory substrate ([`SubstrateKind`]) and a recovery
//! scheme ([`Recovery`]); every combination runs through the single
//! generic [`run_trial`] path — injection flips bits in the substrate's
//! raw representation, the substrate scrubs like its memory controller
//! would, and MILR (when armed) heals what survives in plaintext space.

use crate::nets::PreparedNet;
use crate::stats::normalized_accuracy;
use milr_core::RecoveryOutcome;
use milr_fault::{corrupt_layer, inject_rber, inject_whole_weight, FaultRng};
pub use milr_substrate::SubstrateKind;

/// Recovery scheme applied after injection and scrubbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Recovery {
    /// No plaintext-space recovery (substrate scrub only).
    None,
    /// MILR detection + recovery on the plaintext weights.
    Milr,
}

/// One protection arm: a memory substrate combined with a recovery
/// scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arm {
    /// Where the weights live and what the raw fault surface is.
    pub substrate: SubstrateKind,
    /// What heals plaintext-space damage afterwards.
    pub recovery: Recovery,
}

impl Arm {
    /// Raw DRAM, no recovery (panel (a) of Figures 5/7/9).
    pub const NONE: Arm = Arm {
        substrate: SubstrateKind::Plain,
        recovery: Recovery::None,
    };
    /// Per-word SECDED in DRAM: inject into code words, scrub (panel (b)).
    pub const ECC: Arm = Arm {
        substrate: SubstrateKind::Secded,
        recovery: Recovery::None,
    };
    /// MILR detection + recovery on plaintext weights (panel (c)).
    pub const MILR: Arm = Arm {
        substrate: SubstrateKind::Plain,
        recovery: Recovery::Milr,
    };
    /// ECC scrub first, MILR on the residual multi-bit errors (panel (d)).
    pub const ECC_MILR: Arm = Arm {
        substrate: SubstrateKind::Secded,
        recovery: Recovery::Milr,
    };
    /// Encrypted VM, no recovery: ciphertext faults garble whole blocks.
    pub const XTS: Arm = Arm {
        substrate: SubstrateKind::Xts,
        recovery: Recovery::None,
    };
    /// Encrypted VM healed by MILR — the paper's PSEC configuration.
    pub const XTS_MILR: Arm = Arm {
        substrate: SubstrateKind::Xts,
        recovery: Recovery::Milr,
    };
    /// ECC over ciphertext, no plaintext recovery: corrects single raw
    /// flips, passes garbled blocks through.
    pub const XTS_ECC: Arm = Arm {
        substrate: SubstrateKind::XtsSecded,
        recovery: Recovery::None,
    };
    /// ECC over ciphertext plus MILR: the full encrypted-VM stack.
    pub const XTS_ECC_MILR: Arm = Arm {
        substrate: SubstrateKind::XtsSecded,
        recovery: Recovery::Milr,
    };

    /// The paper's four DRAM panels, in figure order.
    pub const PAPER: [Arm; 4] = [Arm::NONE, Arm::ECC, Arm::MILR, Arm::ECC_MILR];

    /// The encrypted-VM arms.
    pub const ENCRYPTED: [Arm; 3] = [Arm::XTS, Arm::XTS_MILR, Arm::XTS_ECC_MILR];

    /// Every arm of the full matrix.
    pub const ALL: [Arm; 8] = [
        Arm::NONE,
        Arm::ECC,
        Arm::MILR,
        Arm::ECC_MILR,
        Arm::XTS,
        Arm::XTS_MILR,
        Arm::XTS_ECC,
        Arm::XTS_ECC_MILR,
    ];
}

impl std::fmt::Display for Arm {
    /// Panel label used in report headers; the paper arms keep the
    /// paper's wording.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = match (self.substrate, self.recovery) {
            (SubstrateKind::Plain, Recovery::None) => "No recovery",
            (SubstrateKind::Secded, Recovery::None) => "ECC",
            (SubstrateKind::Plain, Recovery::Milr) => "MILR",
            (SubstrateKind::Secded, Recovery::Milr) => "ECC + MILR",
            (SubstrateKind::Xts, Recovery::None) => "XTS",
            (SubstrateKind::Xts, Recovery::Milr) => "XTS + MILR",
            (SubstrateKind::XtsSecded, Recovery::None) => "XTS + ECC",
            (SubstrateKind::XtsSecded, Recovery::Milr) => "XTS + ECC + MILR",
            // The experiment matrix never uses file-backed arms: the
            // store benchmarks (`store_cold_start`) cover those.
            _ => "file-backed",
        };
        f.write_str(label)
    }
}

/// The error process a trial injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Injection {
    /// Random raw-bit flips at the given RBER over the substrate's raw
    /// representation (experiment 1).
    Rber(f64),
    /// Whole-weight errors at the given per-weight probability, defined
    /// in plaintext space (experiment 2).
    WholeWeight(f64),
}

/// Outcome of one injection trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// Absolute post-trial accuracy on the held-out set.
    pub accuracy: f64,
    /// Accuracy normalized to the error-free network (the paper's
    /// y-axis).
    pub normalized: f64,
    /// Layers MILR flagged (0 for arms without MILR).
    pub flagged_layers: usize,
}

/// Runs one injection trial of any arm: the single generic path behind
/// every figure panel.
///
/// Per parameterized layer, the weights are encoded into the arm's
/// substrate, the injection flips bits in the substrate's raw
/// representation (plaintext words, ECC code words, or ciphertext), the
/// substrate scrubs like its memory controller would, and the decoded
/// plaintext is written back to the model. MILR arms then run
/// detection + recovery. For the four paper arms this draws exactly the
/// per-layer flip sequences of the original per-arm implementations
/// (same RNG consumption order), so figure numbers are reproduced
/// seed-for-seed.
pub fn run_trial(prep: &PreparedNet, arm: Arm, injection: Injection, seed: u64) -> TrialResult {
    let mut model = prep.model.clone();
    let mut rng = FaultRng::seed(seed);
    for layer in model.layers_mut() {
        if let Some(p) = layer.params_mut() {
            match injection {
                Injection::Rber(rber) => {
                    let mut mem = arm.substrate.store(p.data());
                    inject_rber(&mut *mem, rber, &mut rng);
                    mem.scrub();
                    p.data_mut().copy_from_slice(&mem.read_weights());
                }
                Injection::WholeWeight(q) => {
                    // Whole-weight errors are plaintext-space by
                    // definition; the substrate's scrub cannot touch
                    // them, so inject directly.
                    inject_whole_weight(p.data_mut(), q, &mut rng);
                }
            }
        }
    }
    let mut flagged_layers = 0usize;
    if arm.recovery == Recovery::Milr {
        if let Ok(report) = prep.milr.detect(&model) {
            flagged_layers = report.flagged.len();
            let _ = prep.milr.recover(&mut model, &report);
        }
    }
    let (accuracy, normalized) = normalized_accuracy(prep, &model);
    TrialResult {
        accuracy,
        normalized,
        flagged_layers,
    }
}

/// One random-bit-flip trial (experiment 1, Figures 5/7/9).
pub fn run_rber_trial(prep: &PreparedNet, arm: Arm, rber: f64, seed: u64) -> TrialResult {
    run_trial(prep, arm, Injection::Rber(rber), seed)
}

/// One whole-weight-error trial (experiment 2, Figures 6/8/10). The
/// paper evaluates only the `NONE` and `MILR` arms here: "ECC and ECC +
/// MILR were not tested with this scheme as ECC can only correct 1 bit
/// errors and all errors injected would be 32 bit errors" (§V-B).
pub fn run_whole_weight_trial(prep: &PreparedNet, arm: Arm, q: f64, seed: u64) -> TrialResult {
    run_trial(prep, arm, Injection::WholeWeight(q), seed)
}

/// One row of the whole-layer-corruption tables (IV/VI/VIII).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCorruptionRow {
    /// Layer index in the model.
    pub index: usize,
    /// Layer kind ("Conv2D", "Bias", "Dense").
    pub kind: String,
    /// Normalized accuracy with the corrupted layer left in place.
    pub none_normalized: f64,
    /// Normalized accuracy after MILR recovery.
    pub milr_normalized: f64,
    /// True when recovery was the approximate least-squares path (the
    /// paper's "N/A — convolution partial recoverable" marker).
    pub partial_marker: bool,
}

/// Experiment 3: corrupts every parameterized layer in turn, measuring
/// accuracy without and with MILR recovery (Tables IV/VI/VIII).
pub fn run_layer_corruption(prep: &PreparedNet, seed: u64) -> Vec<LayerCorruptionRow> {
    let mut rows = Vec::new();
    for (i, layer) in prep.model.layers().iter().enumerate() {
        if layer.param_count() == 0 {
            continue;
        }
        let mut model = prep.model.clone();
        let mut rng = FaultRng::seed(seed ^ (i as u64) << 8);
        corrupt_layer(
            model.layers_mut()[i]
                .params_mut()
                .expect("param layer")
                .data_mut(),
            &mut rng,
        );
        let (_, none_normalized) = normalized_accuracy(prep, &model);
        let rec = prep
            .milr
            .recover_layers(&mut model, &[i])
            .expect("structure matches");
        let partial_marker = rec
            .outcomes
            .iter()
            .any(|(_, o)| matches!(o, RecoveryOutcome::MinNorm { .. }));
        let (_, milr_normalized) = normalized_accuracy(prep, &model);
        rows.push(LayerCorruptionRow {
            index: i,
            kind: layer.kind_name().to_string(),
            none_normalized,
            milr_normalized,
            partial_marker,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nets::{prepare, NetChoice, Scale};
    use milr_ecc::SecdedMemory;
    use milr_fault::inject_secded_rber;
    use milr_nn::Sequential;

    fn prep() -> PreparedNet {
        prepare(NetChoice::Mnist, Scale::Reduced, 11)
    }

    #[test]
    fn zero_rate_trials_are_clean() {
        let p = prep();
        for arm in Arm::ALL {
            let r = run_rber_trial(&p, arm, 0.0, 1);
            assert!((r.normalized - 1.0).abs() < 1e-9, "{arm}: {r:?}");
        }
    }

    #[test]
    fn milr_beats_none_at_high_rate() {
        // 5e-4 on the reduced net is where the paper-shape gap is
        // widest: the unprotected network collapses while MILR still
        // recovers most trials (cf. Figure 5 panels a/c).
        let p = prep();
        let mut none_sum = 0.0;
        let mut milr_sum = 0.0;
        for t in 0..10 {
            none_sum += run_rber_trial(&p, Arm::NONE, 5e-4, t).normalized;
            milr_sum += run_rber_trial(&p, Arm::MILR, 5e-4, t).normalized;
        }
        assert!(
            milr_sum > none_sum,
            "MILR {milr_sum} not better than none {none_sum}"
        );
    }

    #[test]
    fn ecc_corrects_everything_at_low_rate() {
        let p = prep();
        let r = run_rber_trial(&p, Arm::ECC, 1e-5, 3);
        assert!((r.normalized - 1.0).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn whole_weight_milr_recovers() {
        let p = prep();
        let none = run_whole_weight_trial(&p, Arm::NONE, 5e-3, 4);
        let milr = run_whole_weight_trial(&p, Arm::MILR, 5e-3, 4);
        assert!(milr.normalized >= none.normalized, "{milr:?} vs {none:?}");
        assert!(milr.flagged_layers > 0);
    }

    /// The acceptance contract of the refactor: the generic trial path
    /// reproduces the seed's hand-written per-arm logic seed-for-seed,
    /// for all four original paper arms.
    #[test]
    fn generic_path_matches_legacy_per_arm_logic() {
        fn legacy_rber_trial(
            prep: &PreparedNet,
            arm: Arm,
            rber: f64,
            seed: u64,
        ) -> (Vec<Vec<u32>>, usize) {
            // Verbatim re-expression of the pre-refactor per-arm
            // branches from the seed implementation.
            fn inject_raw(model: &mut Sequential, rber: f64, rng: &mut FaultRng) {
                for layer in model.layers_mut() {
                    if let Some(p) = layer.params_mut() {
                        inject_rber(p.data_mut(), rber, rng);
                    }
                }
            }
            fn inject_through_ecc(model: &mut Sequential, rber: f64, rng: &mut FaultRng) {
                for layer in model.layers_mut() {
                    if let Some(p) = layer.params_mut() {
                        let mut mem = SecdedMemory::protect(p.data());
                        inject_secded_rber(&mut mem, rber, rng);
                        let (decoded, _report) = mem.scrub();
                        p.data_mut().copy_from_slice(&decoded);
                    }
                }
            }
            let mut model = prep.model.clone();
            let mut rng = FaultRng::seed(seed);
            let mut flagged_layers = 0usize;
            match (arm.substrate, arm.recovery) {
                (SubstrateKind::Plain, Recovery::None) => inject_raw(&mut model, rber, &mut rng),
                (SubstrateKind::Secded, Recovery::None) => {
                    inject_through_ecc(&mut model, rber, &mut rng)
                }
                (SubstrateKind::Plain, Recovery::Milr) => {
                    inject_raw(&mut model, rber, &mut rng);
                    if let Ok(report) = prep.milr.detect(&model) {
                        flagged_layers = report.flagged.len();
                        let _ = prep.milr.recover(&mut model, &report);
                    }
                }
                (SubstrateKind::Secded, Recovery::Milr) => {
                    inject_through_ecc(&mut model, rber, &mut rng);
                    if let Ok(report) = prep.milr.detect(&model) {
                        flagged_layers = report.flagged.len();
                        let _ = prep.milr.recover(&mut model, &report);
                    }
                }
                _ => unreachable!("legacy logic covers the paper arms only"),
            }
            let bits = model
                .layers()
                .iter()
                .filter_map(|l| l.params())
                .map(|p| p.data().iter().map(|x| x.to_bits()).collect())
                .collect();
            (bits, flagged_layers)
        }

        let p = prep();
        for arm in Arm::PAPER {
            for (t, &rate) in [1e-4f64, 5e-4].iter().enumerate() {
                let seed = 0xBE7C ^ (t as u64) << 20;
                let (legacy_bits, legacy_flagged) = legacy_rber_trial(&p, arm, rate, seed);
                // Replay the generic path and capture the final model
                // bits the same way.
                let mut model = p.model.clone();
                let mut rng = FaultRng::seed(seed);
                for layer in model.layers_mut() {
                    if let Some(params) = layer.params_mut() {
                        let mut mem = arm.substrate.store(params.data());
                        inject_rber(&mut *mem, rate, &mut rng);
                        mem.scrub();
                        params.data_mut().copy_from_slice(&mem.read_weights());
                    }
                }
                let mut generic_flagged = 0usize;
                if arm.recovery == Recovery::Milr {
                    if let Ok(report) = p.milr.detect(&model) {
                        generic_flagged = report.flagged.len();
                        let _ = p.milr.recover(&mut model, &report);
                    }
                }
                let generic_bits: Vec<Vec<u32>> = model
                    .layers()
                    .iter()
                    .filter_map(|l| l.params())
                    .map(|params| params.data().iter().map(|x| x.to_bits()).collect())
                    .collect();
                assert_eq!(generic_flagged, legacy_flagged, "{arm} at {rate}");
                assert_eq!(generic_bits, legacy_bits, "{arm} at {rate}");
            }
        }
    }

    #[test]
    fn encrypted_arms_run_through_generic_path() {
        let p = prep();
        for arm in Arm::ENCRYPTED {
            let clean = run_rber_trial(&p, arm, 0.0, 2);
            assert!((clean.normalized - 1.0).abs() < 1e-9, "{arm}: {clean:?}");
        }
        // At a rate where plain ECC shrugs (single-bit errors), bare XTS
        // collapses harder than plain no-recovery cannot distinguish —
        // but XTS+MILR must beat bare XTS on average.
        let mut xts_sum = 0.0;
        let mut xts_milr_sum = 0.0;
        for t in 0..5 {
            xts_sum += run_rber_trial(&p, Arm::XTS, 2e-4, 100 + t).normalized;
            xts_milr_sum += run_rber_trial(&p, Arm::XTS_MILR, 2e-4, 100 + t).normalized;
        }
        assert!(
            xts_milr_sum >= xts_sum,
            "XTS+MILR {xts_milr_sum} not better than XTS {xts_sum}"
        );
    }

    #[test]
    fn display_labels_match_paper_wording() {
        assert_eq!(Arm::NONE.to_string(), "No recovery");
        assert_eq!(Arm::ECC.to_string(), "ECC");
        assert_eq!(Arm::MILR.to_string(), "MILR");
        assert_eq!(Arm::ECC_MILR.to_string(), "ECC + MILR");
        assert_eq!(Arm::XTS_ECC_MILR.to_string(), "XTS + ECC + MILR");
    }

    #[test]
    fn layer_corruption_rows_cover_param_layers() {
        let p = prep();
        let rows = run_layer_corruption(&p, 5);
        let param_layers = p
            .model
            .layers()
            .iter()
            .filter(|l| l.param_count() > 0)
            .count();
        assert_eq!(rows.len(), param_layers);
        // Fully-recoverable layers restore ~100% normalized accuracy.
        for row in &rows {
            if !row.partial_marker {
                assert!(
                    row.milr_normalized > 0.95,
                    "layer {} ({}) only {}",
                    row.index,
                    row.kind,
                    row.milr_normalized
                );
            }
            assert!(row.milr_normalized + 1e-9 >= row.none_normalized * 0.5);
        }
    }
}
