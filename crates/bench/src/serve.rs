//! Measured availability: driving the `milr-serve` simulation and
//! comparing its empirical availability against the closed-form
//! Equation 6 model (`milr_core::availability`).
//!
//! Two modeled numbers bracket the measurement:
//!
//! * **Eq. 6 at the scrub cadence** — the paper's pessimistic model,
//!   where every detect+recover cycle is downtime: `A = 1 − (T_d +
//!   T_r) / P` with `P` the full-sweep period. The serving architecture
//!   beats this because detection runs *concurrently* with serving.
//! * **Per-fault recovery** — only quarantines cost downtime: `A = 1 −
//!   (T_d + T_r) / T_be`. The measured figure lands near this bound;
//!   the gap to Eq. 6 is the overlap dividend of the scrubber-daemon
//!   design.

use milr_core::{Milr, MilrConfig, StorageReport};
use milr_nn::Sequential;
use milr_obs::Observer;
use milr_serve::sim::{simulate_observed, SimConfig, SimResult};

/// Modeled-vs-measured availability for one simulated serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeComparison {
    /// Detection time of one full sweep, seconds (virtual).
    pub td_s: f64,
    /// Recovery time of one quarantine, seconds (virtual).
    pub tr_s: f64,
    /// Mean time between injected faults, seconds (infinite when no
    /// faults are configured).
    pub tbe_s: f64,
    /// Full scrub-sweep period, seconds.
    pub cycle_period_s: f64,
    /// Equation 6 at the scrub cadence (every cycle pays `T_d + T_r`).
    pub modeled_eq6_availability: f64,
    /// Downtime only per fault interval (`1 − (T_d + T_r)/T_be`).
    pub modeled_per_fault_availability: f64,
    /// The simulation's empirical availability.
    pub measured_availability: f64,
}

impl ServeComparison {
    /// Renders the comparison as a flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"td_s\":{:.6},\"tr_s\":{:.6},\"tbe_s\":{:.6},",
                "\"cycle_period_s\":{:.6},\"modeled_eq6_availability\":{:.9},",
                "\"modeled_per_fault_availability\":{:.9},",
                "\"measured_availability\":{:.9}}}"
            ),
            self.td_s,
            self.tr_s,
            if self.tbe_s.is_finite() {
                self.tbe_s
            } else {
                -1.0
            },
            self.cycle_period_s,
            self.modeled_eq6_availability,
            self.modeled_per_fault_availability,
            self.measured_availability,
        )
    }
}

/// Runs the deterministic serving simulation and derives the
/// modeled-vs-measured availability comparison from the same virtual
/// constants the run used, plus the storage-overhead report of the
/// protection instance the comparison was sized from (so callers
/// don't re-protect the model just for Table-style numbers).
///
/// # Errors
///
/// Propagates MILR protection/detection/recovery failures.
pub fn run_measured(
    model: &Sequential,
    milr_config: MilrConfig,
    sim_config: &SimConfig,
) -> milr_core::Result<(SimResult, ServeComparison, StorageReport)> {
    run_measured_observed(model, milr_config, sim_config, &Observer::default())
}

/// [`run_measured`] with an [`Observer`] threaded through the
/// simulation: trace events stamp the virtual clock and metrics land
/// in the observer's registry. The observer never changes the run.
///
/// # Errors
///
/// As [`run_measured`].
pub fn run_measured_observed(
    model: &Sequential,
    milr_config: MilrConfig,
    sim_config: &SimConfig,
    obs: &Observer,
) -> milr_core::Result<(SimResult, ServeComparison, StorageReport)> {
    let milr = Milr::protect(model, milr_config)?;
    let storage = milr.storage_report(model);
    let checkable = milr.checkable_layers().len();
    let result = simulate_observed(model, milr_config, sim_config, obs)?;
    let td_s = sim_config.costs.full_detect_ns(checkable) as f64 / 1e9;
    let tr_s = sim_config.costs.recover_ns as f64 / 1e9;
    let ticks_per_cycle = checkable.div_ceil(sim_config.layers_per_tick);
    let cycle_period_s = ticks_per_cycle as f64 * sim_config.scrub_interval_ns as f64 / 1e9;
    let tbe_s = if sim_config.faults == 0 {
        f64::INFINITY
    } else {
        sim_config.requests as f64 * sim_config.mean_arrival_ns as f64
            / 1e9
            / sim_config.faults as f64
    };
    let overhead = td_s + tr_s;
    let comparison = ServeComparison {
        td_s,
        tr_s,
        tbe_s,
        cycle_period_s,
        modeled_eq6_availability: (1.0 - overhead / cycle_period_s.max(overhead)).max(0.0),
        modeled_per_fault_availability: if tbe_s.is_finite() {
            (1.0 - overhead / tbe_s.max(overhead)).max(0.0)
        } else {
            1.0
        },
        measured_availability: result.report.availability,
    };
    Ok((result, comparison, storage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_nn::Layer;
    use milr_tensor::{ConvSpec, Padding, TensorRng};

    fn model() -> Sequential {
        let mut rng = TensorRng::new(9);
        let mut m = Sequential::new(vec![8, 8, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(6 * 6 * 4, 5, &mut rng).unwrap())
            .unwrap();
        m
    }

    #[test]
    fn measured_run_brackets_availability() {
        let m = model();
        let cfg = SimConfig {
            requests: 80,
            faults: 1,
            ..SimConfig::default()
        };
        let (result, cmp, storage) = run_measured(&m, MilrConfig::default(), &cfg).unwrap();
        assert_eq!(result.report.submitted, 80);
        assert!(storage.milr_bytes() > 0);
        assert!(cmp.modeled_eq6_availability <= cmp.modeled_per_fault_availability);
        assert!(cmp.measured_availability > 0.0 && cmp.measured_availability <= 1.0);
        let json = cmp.to_json();
        assert!(json.contains("measured_availability"));
        assert_eq!(json.matches('{').count(), 1);
    }

    #[test]
    fn fault_free_comparison_is_unity() {
        let m = model();
        let cfg = SimConfig {
            requests: 40,
            faults: 0,
            ..SimConfig::default()
        };
        let (result, cmp, _) = run_measured(&m, MilrConfig::default(), &cfg).unwrap();
        assert_eq!(cmp.modeled_per_fault_availability, 1.0);
        assert_eq!(result.report.availability, 1.0);
        assert!(cmp.tbe_s.is_infinite());
        assert!(cmp.to_json().contains("\"tbe_s\":-1.0"));
    }
}
