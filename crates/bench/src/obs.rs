//! Shared `--trace-out` / `--metrics-out` plumbing for the load
//! benches: builds an [`Observer`] from the CLI flags and flushes its
//! outputs — a JSONL event trace and a Prometheus text-exposition
//! metrics snapshot — to the requested files after the run.

use milr_obs::{MetricsRegistry, Observer, RingRecorder};
use std::sync::Arc;

/// Events the ring recorder retains (oldest overwritten past this).
/// Sized for the load benches: a default run emits a few thousand
/// events, so nothing is dropped unless the workload is scaled far up.
const TRACE_CAPACITY: usize = 262_144;

/// The observability outputs one bench run was asked to produce.
#[derive(Debug, Default)]
pub struct ObsOutputs {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    recorder: Option<Arc<RingRecorder>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl ObsOutputs {
    /// Builds the outputs from the parsed flag values. With neither
    /// flag set the observer is inert and the run is exactly the
    /// unobserved run.
    pub fn from_flags(trace_out: Option<String>, metrics_out: Option<String>) -> Self {
        ObsOutputs {
            recorder: trace_out
                .as_ref()
                .map(|_| Arc::new(RingRecorder::new(TRACE_CAPACITY))),
            metrics: metrics_out
                .as_ref()
                .map(|_| Arc::new(MetricsRegistry::new())),
            trace_out,
            metrics_out,
        }
    }

    /// The observer to thread through the run.
    pub fn observer(&self) -> Observer {
        Observer {
            trace: self
                .recorder
                .clone()
                .map(|r| milr_obs::TraceHandle::new(r as Arc<dyn milr_obs::TraceSink>)),
            metrics: self.metrics.clone(),
        }
    }

    /// The shared metrics registry, when `--metrics-out` was given
    /// (so a bench can pre-set gauges before flushing).
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Writes the requested files. Exits the process on I/O failure —
    /// a bench asked to produce an artifact must not silently not.
    pub fn flush(&self) {
        if let (Some(path), Some(recorder)) = (&self.trace_out, &self.recorder) {
            if recorder.dropped() > 0 {
                eprintln!(
                    "warning: trace ring overflowed, {} oldest events dropped",
                    recorder.dropped()
                );
            }
            if let Err(e) = std::fs::write(path, recorder.to_jsonl()) {
                eprintln!("error: write {path}: {e}");
                std::process::exit(1);
            }
            println!("trace:    {} ({} events)", path, recorder.events().len());
            let episodes = milr_obs::fold_episodes(&recorder.events());
            if !episodes.is_empty() {
                println!("forensics ({} episode(s)):", episodes.len());
                print!("{}", milr_obs::render_timeline(&episodes));
            }
        }
        if let (Some(path), Some(metrics)) = (&self.metrics_out, &self.metrics) {
            if let Err(e) = std::fs::write(path, metrics.snapshot().to_prometheus()) {
                eprintln!("error: write {path}: {e}");
                std::process::exit(1);
            }
            println!("metrics:  {path}");
        }
    }
}
