//! Shared `--trace-out` / `--metrics-out` / `--spans-out` /
//! `--slo-out` plumbing for the load benches: builds an [`Observer`]
//! from the CLI flags and flushes its outputs — a JSONL event trace, a
//! Prometheus text-exposition metrics snapshot, a span-tree JSONL
//! stream, and the run's SLO verdict — to the requested files after
//! the run.

use milr_obs::{MetricsRegistry, Observer, RingRecorder, SloReport, SpanHandle, SpanRing};
use std::sync::Arc;

/// Events the ring recorder retains (oldest overwritten past this).
/// Sized for the load benches: a default run emits a few thousand
/// events, so nothing is dropped unless the workload is scaled far up.
const TRACE_CAPACITY: usize = 262_144;

/// Span trees the span ring retains. Each engine call and batch
/// produces one tree, so this comfortably covers a default run.
const SPAN_CAPACITY: usize = 65_536;

/// The observability outputs one bench run was asked to produce.
#[derive(Debug, Default)]
pub struct ObsOutputs {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    spans_out: Option<String>,
    slo_out: Option<String>,
    recorder: Option<Arc<RingRecorder>>,
    metrics: Option<Arc<MetricsRegistry>>,
    spans: Option<Arc<SpanRing>>,
}

impl ObsOutputs {
    /// Builds the outputs from the parsed flag values. With neither
    /// flag set the observer is inert and the run is exactly the
    /// unobserved run.
    pub fn from_flags(trace_out: Option<String>, metrics_out: Option<String>) -> Self {
        ObsOutputs {
            recorder: trace_out
                .as_ref()
                .map(|_| Arc::new(RingRecorder::new(TRACE_CAPACITY))),
            metrics: metrics_out
                .as_ref()
                .map(|_| Arc::new(MetricsRegistry::new())),
            trace_out,
            metrics_out,
            spans_out: None,
            slo_out: None,
            spans: None,
        }
    }

    /// Adds a `--spans-out` destination: the observer carries a span
    /// ring and the collected trees are written as JSONL on
    /// [`ObsOutputs::flush`].
    pub fn with_spans(mut self, spans_out: Option<String>) -> Self {
        self.spans = spans_out
            .as_ref()
            .map(|_| Arc::new(SpanRing::new(SPAN_CAPACITY)));
        self.spans_out = spans_out;
        self
    }

    /// Adds a `--slo-out` destination for
    /// [`ObsOutputs::write_slo`].
    pub fn with_slo(mut self, slo_out: Option<String>) -> Self {
        self.slo_out = slo_out;
        self
    }

    /// The observer to thread through the run.
    pub fn observer(&self) -> Observer {
        Observer {
            trace: self
                .recorder
                .clone()
                .map(|r| milr_obs::TraceHandle::new(r as Arc<dyn milr_obs::TraceSink>)),
            metrics: self.metrics.clone(),
            spans: self.spans.clone().map(SpanHandle::new),
        }
    }

    /// The shared metrics registry, when `--metrics-out` was given
    /// (so a bench can pre-set gauges before flushing).
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// The span sink, when `--spans-out` was given (so the live bench
    /// can hand it to a threaded [`ServerConfig`](milr_serve::ServerConfig)).
    pub fn span_handle(&self) -> Option<SpanHandle> {
        self.spans.clone().map(SpanHandle::new)
    }

    /// Writes the requested files. Exits the process on I/O failure —
    /// a bench asked to produce an artifact must not silently not.
    pub fn flush(&self) {
        if let (Some(path), Some(recorder)) = (&self.trace_out, &self.recorder) {
            if recorder.dropped() > 0 {
                eprintln!(
                    "warning: trace ring overflowed, {} oldest events dropped",
                    recorder.dropped()
                );
            }
            if let Err(e) = std::fs::write(path, recorder.to_jsonl()) {
                eprintln!("error: write {path}: {e}");
                std::process::exit(1);
            }
            println!("trace:    {} ({} events)", path, recorder.events().len());
            let episodes = milr_obs::fold_episodes(&recorder.events());
            if !episodes.is_empty() {
                println!("forensics ({} episode(s)):", episodes.len());
                print!("{}", milr_obs::render_timeline(&episodes));
            }
        }
        if let (Some(path), Some(spans)) = (&self.spans_out, &self.spans) {
            if spans.dropped() > 0 {
                eprintln!(
                    "warning: span ring overflowed, {} oldest trees dropped",
                    spans.dropped()
                );
            }
            if let Err(e) = std::fs::write(path, spans.to_jsonl()) {
                eprintln!("error: write {path}: {e}");
                std::process::exit(1);
            }
            println!("spans:    {} ({} trees)", path, spans.len());
        }
        if let (Some(path), Some(metrics)) = (&self.metrics_out, &self.metrics) {
            // Fold the observability plane's self-stats (series count,
            // snapshot cost, trace drops) into the exposition.
            metrics.export_self_stats(self.recorder.as_ref().map(|r| r.dropped()));
            if let Err(e) = std::fs::write(path, metrics.snapshot().to_prometheus()) {
                eprintln!("error: write {path}: {e}");
                std::process::exit(1);
            }
            println!("metrics:  {path}");
        }
    }

    /// Writes the run's SLO verdict when `--slo-out` was given. Exits
    /// on I/O failure, or when the run produced no verdict to write.
    pub fn write_slo(&self, slo: Option<&SloReport>) {
        let Some(path) = &self.slo_out else {
            return;
        };
        let Some(slo) = slo else {
            eprintln!("error: --slo-out requested but the run carries no SLO report");
            std::process::exit(1);
        };
        if let Err(e) = std::fs::write(path, slo.to_json()) {
            eprintln!("error: write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "slo:      {path} (pass={}, {} alert(s))",
            slo.pass, slo.alerts
        );
    }
}
