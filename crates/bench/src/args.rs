//! Minimal command-line parsing shared by the experiment binaries.

use crate::{Arm, NetChoice, Scale};

/// Which slice of the substrate × recovery arm matrix to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmSet {
    /// The paper's four DRAM panels (default; reproduces the figures).
    Paper,
    /// The encrypted-VM arms only.
    Encrypted,
    /// The full matrix.
    All,
}

impl ArmSet {
    /// The arms this set selects, in presentation order.
    pub fn arms(&self) -> &'static [Arm] {
        match self {
            ArmSet::Paper => &Arm::PAPER,
            ArmSet::Encrypted => &Arm::ENCRYPTED,
            ArmSet::All => &Arm::ALL,
        }
    }
}

/// Parsed experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Which network family to evaluate.
    pub net: NetChoice,
    /// Reduced-scale twin (default) or verbatim paper architecture.
    pub scale: Scale,
    /// Injection trials per point (the paper uses 40).
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Which arms of the substrate × recovery matrix to run.
    pub arms: ArmSet,
    /// Also measure (not just model) availability by driving the
    /// `milr-serve` simulation — consumed by `fig12_availability`.
    pub measured: bool,
    /// Write the machine-readable summary (storage report, measured
    /// numbers) to this file as JSON.
    pub json: Option<String>,
    /// Write a JSONL structured-event trace of the run to this file.
    pub trace_out: Option<String>,
    /// Write a Prometheus text-exposition metrics snapshot to this
    /// file.
    pub metrics_out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            net: NetChoice::Mnist,
            scale: Scale::Reduced,
            trials: 10,
            seed: 0xBE7C,
            arms: ArmSet::Paper,
            measured: false,
            json: None,
            trace_out: None,
            metrics_out: None,
        }
    }
}

impl Args {
    /// Parses `std::env::args`-style arguments.
    ///
    /// Supported flags: `--net mnist|cifar-small|cifar-large`,
    /// `--paper-scale`, `--trials N`, `--seed N`,
    /// `--arms paper|encrypted|all`, `--measured`, `--json FILE`,
    /// `--trace-out FILE`, `--metrics-out FILE`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or malformed
    /// values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--net" => {
                    let v = iter.next().ok_or("--net needs a value")?;
                    out.net = match v.as_str() {
                        "mnist" => NetChoice::Mnist,
                        "cifar-small" => NetChoice::CifarSmall,
                        "cifar-large" => NetChoice::CifarLarge,
                        other => return Err(format!("unknown net {other}")),
                    };
                }
                "--paper-scale" => out.scale = Scale::Paper,
                "--json" => out.json = Some(iter.next().ok_or("--json needs a value")?),
                "--trace-out" => {
                    out.trace_out = Some(iter.next().ok_or("--trace-out needs a value")?)
                }
                "--metrics-out" => {
                    out.metrics_out = Some(iter.next().ok_or("--metrics-out needs a value")?)
                }
                "--measured" => out.measured = true,
                "--trials" => {
                    let v = iter.next().ok_or("--trials needs a value")?;
                    out.trials = v.parse().map_err(|e| format!("bad --trials: {e}"))?;
                }
                "--seed" => {
                    let v = iter.next().ok_or("--seed needs a value")?;
                    out.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--arms" => {
                    let v = iter.next().ok_or("--arms needs a value")?;
                    out.arms = match v.as_str() {
                        "paper" => ArmSet::Paper,
                        "encrypted" => ArmSet::Encrypted,
                        "all" => ArmSet::All,
                        other => return Err(format!("unknown arm set {other}")),
                    };
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: [--net mnist|cifar-small|cifar-large] [--paper-scale] [--trials N] [--seed N] [--arms paper|encrypted|all] [--measured] [--json FILE] [--trace-out FILE] [--metrics-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Args, String> {
        Args::parse(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, Args::default());
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "--net",
            "cifar-large",
            "--paper-scale",
            "--trials",
            "40",
            "--seed",
            "7",
        ])
        .unwrap();
        assert_eq!(a.net, NetChoice::CifarLarge);
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.trials, 40);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn arm_sets_parse() {
        assert_eq!(parse(&["--arms", "paper"]).unwrap().arms, ArmSet::Paper);
        assert_eq!(
            parse(&["--arms", "encrypted"]).unwrap().arms,
            ArmSet::Encrypted
        );
        assert_eq!(parse(&["--arms", "all"]).unwrap().arms, ArmSet::All);
        assert_eq!(ArmSet::Paper.arms().len(), 4);
        assert_eq!(ArmSet::Encrypted.arms().len(), 3);
        assert_eq!(ArmSet::All.arms().len(), 8);
    }

    #[test]
    fn measured_flag_parses() {
        assert!(!parse(&[]).unwrap().measured);
        assert!(parse(&["--measured"]).unwrap().measured);
    }

    #[test]
    fn json_flag_parses() {
        assert_eq!(parse(&[]).unwrap().json, None);
        assert_eq!(
            parse(&["--json", "out.json"]).unwrap().json.as_deref(),
            Some("out.json")
        );
        assert!(parse(&["--json"]).is_err());
    }

    #[test]
    fn observability_flags_parse() {
        let a = parse(&["--trace-out", "t.jsonl", "--metrics-out", "m.prom"]).unwrap();
        assert_eq!(a.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(a.metrics_out.as_deref(), Some("m.prom"));
        assert!(parse(&["--trace-out"]).is_err());
        assert!(parse(&["--metrics-out"]).is_err());
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--net", "alexnet"]).is_err());
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "many"]).is_err());
        assert!(parse(&["--arms", "bogus"]).is_err());
    }
}
