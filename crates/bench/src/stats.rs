//! Box-plot statistics matching the paper's figure convention:
//! "each plot is centered on the median values, with the box covering
//! the 25th and 75th percentile … whiskers extended 1.5× the
//! interquartile range … outliers are marked by dots" (§V-B) — plus the
//! shared accuracy-normalization helper every trial path reports
//! through.

use crate::nets::PreparedNet;
use milr_nn::Sequential;

/// Measures `model` on the prepared network's held-out test set and
/// returns `(accuracy, normalized)` where `normalized` is relative to
/// the error-free network — the y-axis of every figure.
pub fn normalized_accuracy(prep: &PreparedNet, model: &Sequential) -> (f64, f64) {
    let accuracy = model
        .accuracy(&prep.test.images, &prep.test.labels)
        .unwrap_or(0.0);
    let normalized = if prep.clean_accuracy > 0.0 {
        accuracy / prep.clean_accuracy
    } else {
        0.0
    };
    (accuracy, normalized)
}

/// Five-number summary plus outliers over a set of trial outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxStats {
    /// Median.
    pub median: f64,
    /// 25th percentile.
    pub q1: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Lower whisker (smallest value ≥ q1 − 1.5·IQR).
    pub lo: f64,
    /// Upper whisker (largest value ≤ q3 + 1.5·IQR).
    pub hi: f64,
    /// Values outside the whiskers.
    pub outliers: Vec<f64>,
    /// Arithmetic mean (not plotted by the paper, useful in text).
    pub mean: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl BoxStats {
    /// Computes the summary. NaN inputs are dropped.
    ///
    /// # Panics
    ///
    /// Panics when every sample is NaN or the input is empty.
    pub fn compute(samples: &[f64]) -> Self {
        let mut v: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        assert!(!v.is_empty(), "no finite samples");
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q1 = percentile(&v, 0.25);
        let median = percentile(&v, 0.5);
        let q3 = percentile(&v, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let lo = v.iter().copied().find(|&x| x >= lo_fence).unwrap_or(v[0]);
        let hi = v
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(v[v.len() - 1]);
        let outliers: Vec<f64> = v
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        BoxStats {
            median,
            q1,
            q3,
            lo,
            hi,
            outliers,
            mean,
        }
    }

    /// One-line rendering used by the figure binaries.
    pub fn row(&self) -> String {
        format!(
            "median {:6.3}  q1 {:6.3}  q3 {:6.3}  whiskers [{:6.3}, {:6.3}]  outliers {}",
            self.median,
            self.q1,
            self.q3,
            self.lo,
            self.hi,
            self.outliers.len()
        )
    }

    /// The summary as a flat JSON object — the figure binaries' `--json`
    /// artifacts carry full box-plot statistics per point.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"median\":{:.6},\"q1\":{:.6},\"q3\":{:.6},",
                "\"lo\":{:.6},\"hi\":{:.6},\"mean\":{:.6},\"outliers\":{}}}"
            ),
            self.median,
            self.q1,
            self.q3,
            self.lo,
            self.hi,
            self.mean,
            self.outliers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary() {
        let s = BoxStats::compute(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.lo, 1.0);
        assert_eq!(s.hi, 5.0);
        assert!(s.outliers.is_empty());
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn outliers_detected() {
        let s = BoxStats::compute(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, -10.0]);
        assert_eq!(s.outliers, vec![-10.0]);
        assert_eq!(s.lo, 1.0);
    }

    #[test]
    fn single_sample() {
        let s = BoxStats::compute(&[0.5]);
        assert_eq!(s.median, 0.5);
        assert_eq!(s.lo, 0.5);
        assert_eq!(s.hi, 0.5);
    }

    #[test]
    fn nan_dropped() {
        let s = BoxStats::compute(&[f64::NAN, 2.0, 4.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    #[should_panic(expected = "no finite samples")]
    fn all_nan_panics() {
        BoxStats::compute(&[f64::NAN]);
    }

    #[test]
    fn row_renders() {
        let s = BoxStats::compute(&[1.0, 2.0]);
        assert!(s.row().contains("median"));
    }
}
