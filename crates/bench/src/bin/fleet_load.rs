//! `fleet_load`: drives a seeded synthetic workload through the
//! `milr-fleet` virtual-clock simulation — three (by default) replicas
//! behind the round-robin router, under a fault campaign that includes
//! both recoverable whole-weight faults and beyond-MILR-capacity heavy
//! faults that force peer repair — and emits a JSON summary comparing
//! the measured fleet availability against the paper's Equation 6
//! extended to N replicas (`1 − (1 − A₁)^N`).
//!
//! ```text
//! cargo run --release -p milr-bench --bin fleet_load
//! cargo run --release -p milr-bench --bin fleet_load -- \
//!     --replicas 3 --requests 200 --faults 2 --heavy-faults 1 \
//!     --policy drain --json BENCH_fleet.json
//! ```
//!
//! The run is deterministic under `--seed`: re-running prints the same
//! digest and availability bit-for-bit.

use milr_bench::fleet::run_fleet_measured_observed;
use milr_bench::json::{write_summary, JsonObject};
use milr_bench::obs::ObsOutputs;
use milr_core::MilrConfig;
use milr_fleet::FleetConfig;
use milr_serve::QuarantinePolicy;
use milr_substrate::SubstrateKind;

struct Cli {
    fleet: FleetConfig,
    json: Option<String>,
    model_seed: u64,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    spans_out: Option<String>,
    slo_out: Option<String>,
    slo_gate: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut fleet = FleetConfig {
        requests: 200,
        faults: 2,
        heavy_faults: 1,
        ..FleetConfig::default()
    };
    let mut json = None;
    let mut model_seed = 42u64;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut spans_out = None;
    let mut slo_out = None;
    let mut slo_gate = false;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--replicas" => {
                fleet.replicas = value("--replicas")?
                    .parse()
                    .map_err(|e| format!("bad --replicas: {e}"))?
            }
            "--requests" => {
                fleet.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--seed" => {
                fleet.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--model-seed" => {
                model_seed = value("--model-seed")?
                    .parse()
                    .map_err(|e| format!("bad --model-seed: {e}"))?
            }
            "--workers" => {
                fleet.workers_per_replica = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?
            }
            "--faults" => {
                fleet.faults = value("--faults")?
                    .parse()
                    .map_err(|e| format!("bad --faults: {e}"))?
            }
            "--heavy-faults" => {
                fleet.heavy_faults = value("--heavy-faults")?
                    .parse()
                    .map_err(|e| format!("bad --heavy-faults: {e}"))?
            }
            "--substrate" => {
                fleet.kind = match value("--substrate")?.as_str() {
                    "plain" => SubstrateKind::Plain,
                    "secded" => SubstrateKind::Secded,
                    "xts" => SubstrateKind::Xts,
                    "xts+secded" => SubstrateKind::XtsSecded,
                    other => return Err(format!("unknown substrate {other}")),
                }
            }
            "--policy" => {
                fleet.policy = match value("--policy")?.as_str() {
                    "drain" => QuarantinePolicy::Drain,
                    "reject" => QuarantinePolicy::Reject,
                    other => return Err(format!("unknown policy {other}")),
                }
            }
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "--spans-out" => spans_out = Some(value("--spans-out")?),
            "--slo-out" => slo_out = Some(value("--slo-out")?),
            "--slo-gate" => slo_gate = true,
            "--json" => json = Some(value("--json")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Cli {
        fleet,
        json,
        model_seed,
        trace_out,
        metrics_out,
        spans_out,
        slo_out,
        slo_gate,
    })
}

fn main() {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: [--replicas N] [--requests N] [--seed N] [--model-seed N] [--workers N] \
                 [--faults N] [--heavy-faults N] [--substrate plain|secded|xts|xts+secded] \
                 [--policy drain|reject] [--trace-out FILE] [--metrics-out FILE] \
                 [--spans-out FILE] [--slo-out FILE] [--slo-gate] [--json FILE]"
            );
            std::process::exit(2);
        }
    };
    let net = milr_models::reduced_mnist(cli.model_seed);
    let obs_out = ObsOutputs::from_flags(cli.trace_out.clone(), cli.metrics_out.clone())
        .with_spans(cli.spans_out.clone())
        .with_slo(cli.slo_out.clone());
    let (result, cmp, storage) = run_fleet_measured_observed(
        &net.model,
        MilrConfig::default(),
        &cli.fleet,
        &obs_out.observer(),
    )
    .expect("fleet simulation cannot fail structurally");
    let r = &result.report;

    println!("# fleet_load — replicated serving with peer repair [reduced MNIST twin]");
    println!(
        "fleet:    {} replicas × {} workers, {} substrate, policy {}, seed {:#x}",
        r.replicas,
        cli.fleet.workers_per_replica,
        cli.fleet.kind.name(),
        r.fleet.policy,
        r.fleet.seed
    );
    println!(
        "workload: {} requests -> {} completed, {} rejected, {} re-executed on failover",
        r.fleet.submitted, r.fleet.completed, r.fleet.rejected, r.fleet.reexecuted
    );
    println!(
        "faults:   {} injected ({} heavy) -> {} quarantines, {} MILR layer heals, {} peer repairs ({} pages, {} bytes)",
        r.fleet.faults_injected,
        cli.fleet.heavy_faults,
        r.fleet.quarantines,
        r.fleet.layers_recovered,
        r.peer_repairs(),
        r.repair_pages(),
        r.repair_bytes()
    );
    println!(
        "latency:  mean {:.1} us, p50 {:.1} us, p95 {:.1} us, max {:.1} us",
        r.fleet.latency.mean_us,
        r.fleet.latency.p50_us,
        r.fleet.latency.p95_us,
        r.fleet.latency.max_us
    );
    for rep in &r.per_replica {
        println!(
            "replica {}: {} dispatched, {} completed, {} quarantines, availability {:.9}{}",
            rep.replica,
            rep.report.submitted,
            rep.report.completed,
            rep.report.quarantines,
            rep.report.availability,
            if rep.peer_repairs > 0 {
                format!(", {} peer repair(s)", rep.peer_repairs)
            } else if rep.repairs_donated > 0 {
                format!(", donated {} repair(s)", rep.repairs_donated)
            } else {
                String::new()
            }
        );
    }
    println!(
        "availability (fleet, measured):    {:.9}   <- down only when all replicas are",
        cmp.measured_fleet
    );
    println!(
        "availability (capacity, measured): {:.9}   <- mean replica uptime",
        cmp.measured_capacity
    );
    println!(
        "availability (Eq.6, 1 replica):    {:.9}",
        cmp.single_modeled_eq6
    );
    println!(
        "availability (Eq.6, fleet):        {:.9}   <- 1 - (1 - A1)^{}",
        cmp.fleet_modeled_eq6, r.replicas
    );
    println!("digest:   {:#x} (seed-reproducible)", r.fleet.digest);
    if let Some(slo) = &r.fleet.slo {
        println!(
            "slo:      {} ({} alert(s) fired)",
            if slo.pass { "PASS" } else { "FAIL" },
            slo.alerts
        );
    }

    obs_out.flush();
    obs_out.write_slo(r.fleet.slo.as_ref());
    let json = JsonObject::new()
        .raw("fleet", &r.to_json())
        .raw("comparison", &cmp.to_json())
        .raw("storage", &storage.to_json())
        .finish();
    write_summary(&json, cli.json.as_deref());

    if cli.slo_gate {
        // CI gate: the campaign must leave the fleet-level availability
        // error budget intact. Latency/heal budgets can legitimately be
        // spent by a heavy-fault campaign, so only availability gates.
        let avail_ok = r
            .fleet
            .slo
            .as_ref()
            .and_then(|slo| slo.budget("availability"))
            .map(|b| b.pass);
        match avail_ok {
            Some(true) => println!("slo-gate: PASS (fleet availability budget intact)"),
            Some(false) => {
                eprintln!("slo-gate: FAIL (fleet availability error budget blown)");
                std::process::exit(1);
            }
            None => {
                eprintln!("slo-gate: FAIL (run carried no fleet availability SLO)");
                std::process::exit(1);
            }
        }
    }
}
