//! Ablation: the dense self-recovery extension (`MilrConfig::
//! dense_self_recovery`). Paper-faithful MILR couples a dense layer's
//! recovery to propagated values that may pass through other corrupted
//! layers in the same checkpoint segment; the extension stores one
//! extra dummy row per dense layer and decouples it. This sweep shows
//! the normalized-accuracy effect at high RBER.
//!
//! ```text
//! cargo run --release -p milr-bench --bin ablation_dense_self_recovery
//! ```

use milr_bench::nets::prepare_with_config;
use milr_bench::{run_rber_trial, Args, Arm, BoxStats};
use milr_core::MilrConfig;

fn main() {
    let args = Args::from_env();
    println!("# Ablation — dense self-recovery extension vs paper-faithful MILR");
    for (label, cfg) in [
        ("paper-faithful", MilrConfig::default()),
        (
            "self-recovery",
            MilrConfig {
                dense_self_recovery: true,
                ..MilrConfig::default()
            },
        ),
    ] {
        let prep = prepare_with_config(args.net, args.scale, args.seed, cfg);
        println!("\n## {label} ({})", prep.label);
        for &rate in &[1e-5f64, 1e-4, 5e-4, 1e-3] {
            let samples: Vec<f64> = (0..args.trials)
                .map(|t| {
                    run_rber_trial(&prep, Arm::MILR, rate, args.seed ^ (t as u64) << 16).normalized
                })
                .collect();
            println!("rber {rate:7.0e}  {}", BoxStats::compute(&samples).row());
        }
    }
}
