//! Figure 11: recovery time as a function of the number of injected
//! (whole-weight) errors — grows superlinearly as more layers need
//! solving and partial-recovery systems grow. `--json FILE` writes the
//! per-network rows as a machine-readable summary.
//!
//! ```text
//! cargo run --release -p milr-bench --bin fig11_recovery_time [-- --net mnist]
//! ```

use milr_bench::json::{array, write_summary, JsonObject};
use milr_bench::{prepare, Args, NetChoice};
use milr_fault::{inject_whole_weight, FaultRng};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    println!("# Figure 11 — recovery time vs error count");
    println!(
        "{:<22} {:>8} {:>10} {:>12}",
        "Network", "Errors", "Flagged", "Recovery(s)"
    );
    let mut nets = Vec::new();
    for net in [
        NetChoice::Mnist,
        NetChoice::CifarSmall,
        NetChoice::CifarLarge,
    ] {
        let prep = prepare(net, args.scale, args.seed);
        let total_params: usize = prep.model.param_count();
        let mut rows = Vec::new();
        for &target_errors in &[1usize, 10, 50, 100, 500, 1000] {
            let q = (target_errors as f64 / total_params as f64).min(1.0);
            let mut model = prep.model.clone();
            let mut rng = FaultRng::seed(args.seed ^ target_errors as u64);
            let mut injected = 0usize;
            for layer in model.layers_mut() {
                if let Some(p) = layer.params_mut() {
                    injected += inject_whole_weight(p.data_mut(), q, &mut rng).affected_words;
                }
            }
            let report = prep.milr.detect(&model).expect("detect");
            let start = Instant::now();
            let _ = prep.milr.recover(&mut model, &report);
            let secs = start.elapsed().as_secs_f64();
            println!(
                "{:<22} {:>8} {:>10} {:>12.4}",
                prep.label,
                injected,
                report.flagged.len(),
                secs
            );
            rows.push(
                JsonObject::new()
                    .uint("errors", injected as u64)
                    .uint("flagged_layers", report.flagged.len() as u64)
                    .float("recovery_s", secs, 6)
                    .finish(),
            );
        }
        nets.push(
            JsonObject::new()
                .string("net", &prep.label)
                .uint("params", total_params as u64)
                .raw("rows", &array(rows))
                .finish(),
        );
    }
    let json = JsonObject::new()
        .string("figure", "fig11_recovery_time")
        .raw("nets", &array(nets))
        .finish();
    write_summary(&json, args.json.as_deref());
}
