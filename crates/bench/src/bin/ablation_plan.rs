//! Ablation: the initialization-phase planning decisions — checkpoint
//! placement, dummy-data choices and the checkpoint-vs-dummy cost
//! comparison the paper describes in §III.
//!
//! ```text
//! cargo run --release -p milr-bench --bin ablation_plan -- --net mnist
//! ```

use milr_bench::{prepare, Args};

fn main() {
    let args = Args::from_env();
    let prep = prepare(args.net, args.scale, args.seed);
    let plan = prep.milr.plan();
    println!("# Protection plan — {}", prep.label);
    println!(
        "checkpoints at positions {:?} ({} segments, recoverable-layer budget {})",
        plan.checkpoints,
        plan.segments().len(),
        plan.recoverable_layer_budget()
    );
    println!(
        "\n{:<6} {:<12} {:>10}  {:<26} {:<20}",
        "Layer", "Kind", "Params", "Solving", "Inversion"
    );
    for lp in &plan.layers {
        println!(
            "{:<6} {:<12} {:>10}  {:<26} {:<20}",
            lp.index,
            lp.kind,
            lp.param_count,
            lp.solving
                .map(|s| format!("{s:?}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:?}", lp.inversion),
        );
    }
    let report = prep.milr.storage_report(&prep.model);
    println!(
        "\nstorage: MILR {} bytes vs backup {} bytes (ratio {:.3})",
        report.milr_bytes(),
        report.backup_bytes,
        report.fraction_of_backup()
    );
}
