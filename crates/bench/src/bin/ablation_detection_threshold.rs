//! Ablation: detection-tolerance sensitivity. The paper's lightweight
//! detection misses errors whose impact on the probe output is below
//! the comparison tolerance (§V-B reports 78.6% of MNIST trials
//! detecting all erroneous layers). This sweep measures detection rate
//! vs `rtol` under single-bit corruption of random weights.
//!
//! ```text
//! cargo run --release -p milr-bench --bin ablation_detection_threshold
//! ```

use milr_bench::{Args, NetChoice, Scale};
use milr_core::{Milr, MilrConfig};
use milr_fault::FaultRng;

fn main() {
    let args = Args::from_env();
    let prep = milr_bench::prepare(args.net, Scale::Reduced, args.seed);
    let _ = NetChoice::Mnist;
    println!("# Ablation — detection rate vs tolerance ({})", prep.label);
    println!(
        "{:>10} {:>10} {:>12} {:>14}",
        "rtol", "trials", "detected", "detect-rate"
    );
    for rtol in [1e-1f32, 1e-2, 1e-3, 1e-4, 1e-6] {
        let milr = Milr::protect(
            &prep.model,
            MilrConfig {
                rtol,
                atol: rtol * 0.1,
                ..MilrConfig::default()
            },
        )
        .expect("protect");
        let mut rng = FaultRng::seed(args.seed);
        let mut detected = 0usize;
        let trials = args.trials.max(20);
        for _ in 0..trials {
            let mut model = prep.model.clone();
            // Flip one random mid-significance mantissa/exponent bit of
            // one random weight in one random parameterized layer.
            let param_layers: Vec<usize> = model
                .layers()
                .iter()
                .enumerate()
                .filter(|(_, l)| l.param_count() > 0)
                .map(|(i, _)| i)
                .collect();
            let li = param_layers[rng.below(param_layers.len())];
            let params = model.layers_mut()[li].params_mut().expect("params");
            let wi = rng.below(params.numel());
            let bit = 16 + rng.below(12) as u32; // upper mantissa / exponent
            let d = params.data_mut();
            d[wi] = f32::from_bits(d[wi].to_bits() ^ (1 << bit));
            let report = milr.detect(&model).expect("detect");
            if report.flagged.contains(&li) {
                detected += 1;
            }
        }
        println!(
            "{:>10.0e} {:>10} {:>12} {:>13.1}%",
            rtol,
            trials,
            detected,
            100.0 * detected as f64 / trials as f64
        );
    }
}
