//! `store_cold_start`: persistence benchmarks for the `.milr` weight
//! store — per-substrate cold-start latency and scrub-on-load
//! throughput, with and without disk faults, as a JSON summary
//! (`BENCH_store.json` in CI).
//!
//! ```text
//! cargo run --release -p milr-bench --bin store_cold_start
//! cargo run --release -p milr-bench --bin store_cold_start -- \
//!     --net mnist --seed 42 --json BENCH_store.json
//! ```
//!
//! Per substrate kind the run measures:
//!
//! * `save_ms` — protect + container write (shadow + rename);
//! * `open_ms` — crash recovery + checksummed section parse;
//! * `cold_clean_ms` — scrub-on-load over a clean container
//!   (substrate scrub + full MILR detection);
//! * `cold_faulty_ms` — the same with a whole-weight disk fault to
//!   scrub, heal, and durably re-anchor;
//! * `scrub_mw_s` — clean scrub-on-load throughput in million
//!   weights/second.

use milr_bench::json::{array, write_summary, JsonObject};
use milr_bench::obs::ObsOutputs;
use milr_bench::{prepare, Args};
use milr_serve::cold_start_observed;
use milr_store::{ContainerFootprint, Store, StoreOptions};
use milr_substrate::SubstrateKind;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let obs_out = ObsOutputs::from_flags(args.trace_out.clone(), args.metrics_out.clone());
    let obs = obs_out.observer();
    let prep = prepare(args.net, args.scale, args.seed);
    let params = prep.model.param_count();
    println!(
        "# store_cold_start — persistent weight store [{}]",
        prep.label
    );
    println!("params: {params}");
    println!(
        "{:>12} {:>12} {:>9} {:>9} {:>15} {:>15} {:>10}",
        "substrate",
        "container_kb",
        "save_ms",
        "open_ms",
        "cold_clean_ms",
        "cold_faulty_ms",
        "scrub_mw/s"
    );

    let mut arms = Vec::new();
    for kind in SubstrateKind::ALL {
        let path = std::env::temp_dir().join(format!(
            "milr-bench-store-{}-{kind:?}.milr",
            std::process::id()
        ));
        let opts = StoreOptions {
            kind,
            page_weights: 1024,
        };
        let t = Instant::now();
        let store =
            Store::create_protected(&path, &prep.model, &prep.milr, opts).expect("create store");
        let save_ms = t.elapsed().as_secs_f64() * 1e3;
        let footprint = ContainerFootprint::measure(&store).expect("measure");
        drop(store);

        let t = Instant::now();
        let store = Store::open(&path).expect("open store");
        let open_ms = t.elapsed().as_secs_f64() * 1e3;
        drop(store);

        // Clean cold start: scrub + full detection, no healing.
        let mut store = Store::open(&path).expect("open store");
        let t = Instant::now();
        let (_, _, report) = cold_start_observed(&mut store, 64, &obs).expect("clean cold start");
        let cold_clean_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(report.was_clean(), "{kind}: fresh store must be clean");
        drop(store);

        // Faulty cold start: a whole stored weight corrupted on disk.
        {
            let store = Store::open(&path).expect("open store");
            let stride = store.layer_raw_bits(0)
                / prep.model.layers()[store.layers()[0].layer]
                    .params()
                    .expect("first table entry is a param layer")
                    .numel();
            for bit in 5 * stride..6 * stride {
                store.flip_raw_bit(0, bit).expect("inject disk fault");
            }
        }
        let mut store = Store::open(&path).expect("open store");
        let t = Instant::now();
        let (_, _, report) = cold_start_observed(&mut store, 64, &obs).expect("faulty cold start");
        let cold_faulty_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(
            !report.was_clean(),
            "{kind}: the injected disk fault must be visible"
        );
        let faulty_pipeline = report.pipeline.to_json();
        drop(store);
        let _ = std::fs::remove_file(&path);

        if let Some(m) = obs_out.metrics() {
            m.histogram("store_cold_clean_ns")
                .record((cold_clean_ms * 1e6) as u64);
            m.histogram("store_cold_faulty_ns")
                .record((cold_faulty_ms * 1e6) as u64);
            m.counter("store_cold_starts_total").add(2);
        }
        let scrub_mw_s = params as f64 / (cold_clean_ms / 1e3) / 1e6;
        println!(
            "{:>12} {:>12.1} {:>9.2} {:>9.2} {:>15.2} {:>15.2} {:>10.2}",
            kind.name(),
            (footprint.weight_bytes + footprint.resistant_bytes) as f64 / 1e3,
            save_ms,
            open_ms,
            cold_clean_ms,
            cold_faulty_ms,
            scrub_mw_s
        );
        arms.push(
            JsonObject::new()
                .string("substrate", kind.name())
                .uint("weight_bytes", footprint.weight_bytes)
                .uint("resistant_bytes", footprint.resistant_bytes)
                .float("save_ms", save_ms, 3)
                .float("open_ms", open_ms, 3)
                .float("cold_clean_ms", cold_clean_ms, 3)
                .float("cold_faulty_ms", cold_faulty_ms, 3)
                .float("scrub_mw_s", scrub_mw_s, 3)
                .raw("faulty_pipeline", &faulty_pipeline)
                .finish(),
        );
    }

    obs_out.flush();
    let storage = prep.milr.storage_report(&prep.model);
    let json = JsonObject::new()
        .string("net", &prep.label)
        .uint("params", params as u64)
        .raw("storage", &storage.to_json())
        .raw("arms", &array(arms))
        .finish();
    write_summary(&json, args.json.as_deref());
}
