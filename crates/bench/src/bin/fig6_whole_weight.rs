//! Figures 6 / 8 / 10: normalized accuracy after recovery from
//! whole-weight errors (every bit of a selected weight flipped) at
//! varying rates — the plaintext-space signature of ciphertext errors.
//! Panels: no recovery and MILR (ECC is pointless against 32-bit
//! errors, §V-B; whole-weight errors are substrate-independent by
//! definition, so the encrypted arms would duplicate these panels).
//! `--json FILE` writes the panel × rate matrix as a machine-readable
//! summary.
//!
//! ```text
//! cargo run --release -p milr-bench --bin fig6_whole_weight -- --net mnist
//! ```

use milr_bench::json::{array, write_summary, JsonObject};
use milr_bench::{prepare, run_whole_weight_trial, Args, Arm, BoxStats};

const RATES: [f64; 10] = [1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3];

fn main() {
    let args = Args::from_env();
    let prep = prepare(args.net, args.scale, args.seed);
    println!(
        "# Figure 6/8/10 — {} — whole-weight errors ({} trials, clean accuracy {:.3})",
        prep.label, args.trials, prep.clean_accuracy
    );
    let mut panels = Vec::new();
    for arm in [Arm::NONE, Arm::MILR] {
        println!("\n## panel: {arm}");
        let mut points = Vec::new();
        for &rate in &RATES {
            let samples: Vec<f64> = (0..args.trials)
                .map(|t| {
                    run_whole_weight_trial(
                        &prep,
                        arm,
                        rate,
                        args.seed ^ (t as u64) << 20 ^ rate.to_bits(),
                    )
                    .normalized
                })
                .collect();
            let stats = BoxStats::compute(&samples);
            println!("q {rate:7.0e}  {}", stats.row());
            points.push(
                JsonObject::new()
                    .raw("q", &format!("{rate:e}"))
                    .raw("normalized_accuracy", &stats.to_json())
                    .finish(),
            );
        }
        panels.push(
            JsonObject::new()
                .string("arm", &arm.to_string())
                .raw("points", &array(points))
                .finish(),
        );
    }
    let json = JsonObject::new()
        .string("figure", "fig6_whole_weight")
        .string("net", &prep.label)
        .uint("trials", args.trials as u64)
        .float("clean_accuracy", prep.clean_accuracy, 6)
        .raw("panels", &array(panels))
        .finish();
    write_summary(&json, args.json.as_deref());
}
