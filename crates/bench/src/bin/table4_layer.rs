//! Tables IV / VI / VIII: whole-layer corruption — every parameter of
//! one layer replaced by a random value, accuracy before and after MILR
//! recovery, per layer. "N/A *" marks convolution layers on the partial
//! recoverability path, which by design cannot fully recover from
//! whole-layer corruption (§V-B).
//!
//! ```text
//! cargo run --release -p milr-bench --bin table4_layer -- --net mnist
//! ```

use milr_bench::{prepare, run_layer_corruption, Args};

fn main() {
    let args = Args::from_env();
    let prep = prepare(args.net, args.scale, args.seed);
    println!(
        "# Table IV/VI/VIII — {} — whole-layer corruption (clean accuracy {:.3})",
        prep.label, prep.clean_accuracy
    );
    println!("{:<10} {:<8} {:>8} {:>14}", "Layer", "Kind", "None", "MILR");
    let rows = run_layer_corruption(&prep, args.seed);
    for row in rows {
        let milr = if row.partial_marker {
            format!("{:6.1}% *N/A", row.milr_normalized * 100.0)
        } else {
            format!("{:6.1}%", row.milr_normalized * 100.0)
        };
        println!(
            "{:<10} {:<8} {:>7.1}% {:>14}",
            row.index,
            row.kind,
            row.none_normalized * 100.0,
            milr
        );
    }
    println!("\n* convolution partial recoverable (least-squares approximation)");
}
