//! `kernel_bench`: measures the optimized raw-space kernels against
//! their scalar reference implementations — the proof that the chunked
//! rewrites (slice-by-8 CRC32, table-driven CRC16/CRC8, word-parallel
//! SECDED, T-table AES, single-pass CRC2D) actually buy throughput on
//! the machine at hand, not just in theory.
//!
//! Every optimized kernel is proptested bit-equivalent to its scalar
//! twin in its home crate; this binary only measures. With `--check`
//! it exits non-zero when any optimized kernel fails its speedup floor
//! (1× for all, 3× for the SECDED scrub, 2× for the CRC2D full-grid
//! encode) — the CI regression gate.
//!
//! ```text
//! cargo run --release -p milr-bench --bin kernel_bench -- \
//!     --trials 5 --json BENCH_kernels.json --check
//! ```

use milr_bench::json::{array, write_summary, JsonObject};
use milr_ecc::{crc16, crc32, crc8, scalar, Crc2d, DecodeOutcome, Secded, SecdedMemory};
use milr_xts::Aes128;
use std::hint::black_box;
use std::time::Instant;

/// Bytes hashed per CRC measurement.
const CRC_BYTES: usize = 64 * 1024;
/// Words per SECDED encode/decode/scrub measurement.
const SECDED_WORDS: usize = 8 * 1024;
/// Blocks per AES measurement.
const AES_BLOCKS: usize = 4 * 1024;
/// Side of the square CRC2D grid (a large conv layer's z×y bank).
const CRC2D_SIDE: usize = 256;

struct BenchArgs {
    trials: usize,
    json: Option<String>,
    check: bool,
}

impl BenchArgs {
    fn from_env() -> Self {
        let mut out = BenchArgs {
            trials: 5,
            json: None,
            check: false,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--trials" => {
                    let v = iter.next().unwrap_or_default();
                    out.trials = v.parse().unwrap_or_else(|e| {
                        eprintln!("bad --trials: {e}");
                        std::process::exit(2);
                    });
                }
                "--json" => {
                    out.json = Some(iter.next().unwrap_or_else(|| {
                        eprintln!("--json needs a value");
                        std::process::exit(2);
                    }));
                }
                "--check" => out.check = true,
                other => {
                    eprintln!("unknown flag {other}");
                    eprintln!("usage: [--trials N] [--json FILE] [--check]");
                    std::process::exit(2);
                }
            }
        }
        out.trials = out.trials.max(1);
        out
    }
}

/// Best-of-`trials` wall time of `f`, in nanoseconds. Min over trials
/// filters scheduler noise the way criterion's lower bound does, at a
/// fraction of the runtime.
fn best_ns(trials: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..trials {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

struct Kernel {
    name: &'static str,
    /// Work items per measurement (bytes, words, blocks, cells) — for
    /// the derived per-item throughput column.
    items: u64,
    scalar_ns: u64,
    optimized_ns: u64,
    /// Speedup floor enforced by `--check`.
    floor: f64,
}

impl Kernel {
    fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.optimized_ns.max(1) as f64
    }
}

fn deterministic_bytes(n: usize) -> Vec<u8> {
    let mut state = 0x243F_6A88_85A3_08D3u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 56) as u8
        })
        .collect()
}

fn deterministic_f32(n: usize) -> Vec<f32> {
    deterministic_bytes(n)
        .into_iter()
        .map(|b| b as f32 * 0.01 - 1.28)
        .collect()
}

fn main() {
    let args = BenchArgs::from_env();
    let trials = args.trials;
    let mut kernels = Vec::new();

    // ---- CRC family: one buffer, three polynomials. ----
    let buf = deterministic_bytes(CRC_BYTES);
    assert_eq!(crc32(&buf), scalar::crc32(&buf));
    kernels.push(Kernel {
        name: "crc32",
        items: CRC_BYTES as u64,
        scalar_ns: best_ns(trials, || {
            black_box(scalar::crc32(black_box(&buf)));
        }),
        optimized_ns: best_ns(trials, || {
            black_box(crc32(black_box(&buf)));
        }),
        floor: 1.0,
    });
    assert_eq!(crc16(&buf), scalar::crc16(&buf));
    kernels.push(Kernel {
        name: "crc16",
        items: CRC_BYTES as u64,
        scalar_ns: best_ns(trials, || {
            black_box(scalar::crc16(black_box(&buf)));
        }),
        optimized_ns: best_ns(trials, || {
            black_box(crc16(black_box(&buf)));
        }),
        floor: 1.0,
    });
    assert_eq!(crc8(&buf), scalar::crc8(&buf));
    kernels.push(Kernel {
        name: "crc8",
        items: CRC_BYTES as u64,
        scalar_ns: best_ns(trials, || {
            black_box(scalar::crc8(black_box(&buf)));
        }),
        optimized_ns: best_ns(trials, || {
            black_box(crc8(black_box(&buf)));
        }),
        floor: 1.0,
    });

    // ---- SECDED encode / decode over a word batch. ----
    let data: Vec<u32> = deterministic_bytes(SECDED_WORDS * 4)
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    kernels.push(Kernel {
        name: "secded_encode",
        items: SECDED_WORDS as u64,
        scalar_ns: best_ns(trials, || {
            let mut acc = 0u64;
            for &d in &data {
                acc ^= scalar::secded_encode(black_box(d));
            }
            black_box(acc);
        }),
        optimized_ns: best_ns(trials, || {
            let mut acc = 0u64;
            for &d in &data {
                acc ^= Secded::encode(black_box(d));
            }
            black_box(acc);
        }),
        floor: 1.0,
    });
    let words: Vec<u64> = data.iter().map(|&d| Secded::encode(d)).collect();
    kernels.push(Kernel {
        name: "secded_decode",
        items: SECDED_WORDS as u64,
        scalar_ns: best_ns(trials, || {
            let mut acc = 0u32;
            for &w in &words {
                acc ^= scalar::secded_decode(black_box(w)).data();
            }
            black_box(acc);
        }),
        optimized_ns: best_ns(trials, || {
            let mut acc = 0u32;
            for &w in &words {
                acc ^= Secded::decode(black_box(w)).data();
            }
            black_box(acc);
        }),
        floor: 1.0,
    });

    // ---- SECDED scrub: the serving loop's hottest kernel. ----
    // Mostly-clean memory with a sprinkle of single-bit faults — the
    // realistic scrub profile (clean words dominate; the optimized path
    // screens them with fused popcounts before any decode).
    let weights = deterministic_f32(SECDED_WORDS);
    let mut template = SecdedMemory::protect(&weights);
    for i in (0..SECDED_WORDS).step_by(257) {
        template.flip_bit(i, (i % 39) as u32);
    }
    let faulty = template.words().to_vec();
    let mut scratch = SecdedMemory::protect(&weights);
    kernels.push(Kernel {
        name: "secded_scrub",
        items: SECDED_WORDS as u64,
        scalar_ns: best_ns(trials, || {
            // The pre-optimization scrub: scalar-decode every word,
            // re-encode the corrected ones.
            scratch.words_mut().copy_from_slice(&faulty);
            let mut corrected = 0usize;
            for w in scratch.words_mut() {
                match scalar::secded_decode(*w) {
                    DecodeOutcome::Clean { .. } => {}
                    DecodeOutcome::Corrected { data, .. } => {
                        corrected += 1;
                        *w = scalar::secded_encode(data);
                    }
                    DecodeOutcome::DoubleError { .. } => {}
                }
            }
            black_box(corrected);
        }),
        optimized_ns: best_ns(trials, || {
            scratch.words_mut().copy_from_slice(&faulty);
            black_box(scratch.scrub_in_place());
        }),
        floor: 3.0,
    });

    // ---- AES-128 block cipher (the XTS substrate's inner loop). ----
    let key = *b"kernel-bench-key";
    let fused = Aes128::new(&key);
    let slow = milr_xts::scalar::Aes128::new(&key);
    let blocks = deterministic_bytes(AES_BLOCKS * 16);
    let mut buf_a = blocks.clone();
    let mut buf_b = blocks.clone();
    kernels.push(Kernel {
        name: "aes_encrypt",
        items: AES_BLOCKS as u64,
        scalar_ns: best_ns(trials, || {
            for chunk in buf_a.chunks_exact_mut(16) {
                slow.encrypt_block(chunk.try_into().unwrap());
            }
            black_box(&buf_a);
        }),
        optimized_ns: best_ns(trials, || {
            for chunk in buf_b.chunks_exact_mut(16) {
                fused.encrypt_block(chunk.try_into().unwrap());
            }
            black_box(&buf_b);
        }),
        floor: 1.0,
    });
    kernels.push(Kernel {
        name: "aes_decrypt",
        items: AES_BLOCKS as u64,
        scalar_ns: best_ns(trials, || {
            for chunk in buf_a.chunks_exact_mut(16) {
                slow.decrypt_block(chunk.try_into().unwrap());
            }
            black_box(&buf_a);
        }),
        optimized_ns: best_ns(trials, || {
            for chunk in buf_b.chunks_exact_mut(16) {
                fused.decrypt_block(chunk.try_into().unwrap());
            }
            black_box(&buf_b);
        }),
        floor: 1.0,
    });
    assert_eq!(buf_a, buf_b, "fused AES diverged from scalar");
    assert_eq!(buf_a, blocks, "decrypt did not invert encrypt");

    // ---- CRC2D full-grid encode (protection-time fingerprinting). ----
    let grid = deterministic_f32(CRC2D_SIDE * CRC2D_SIDE);
    let crc2d = Crc2d::new(CRC2D_SIDE, CRC2D_SIDE);
    assert_eq!(
        crc2d.encode(&grid).row_codes(),
        crc2d.encode_scalar(&grid).row_codes()
    );
    kernels.push(Kernel {
        name: "crc2d_encode",
        items: (CRC2D_SIDE * CRC2D_SIDE) as u64,
        scalar_ns: best_ns(trials, || {
            black_box(crc2d.encode_scalar(black_box(&grid)));
        }),
        optimized_ns: best_ns(trials, || {
            black_box(crc2d.encode(black_box(&grid)));
        }),
        floor: 2.0,
    });

    // ---- Report. ----
    println!("# kernel_bench — optimized vs scalar raw-space kernels");
    println!("trials: {trials} (best-of)");
    println!(
        "{:>14} {:>12} {:>12} {:>9} {:>12} {:>7}",
        "kernel", "scalar_ns", "opt_ns", "speedup", "ns_per_item", "floor"
    );
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for k in &kernels {
        let per_item = k.optimized_ns as f64 / k.items as f64;
        println!(
            "{:>14} {:>12} {:>12} {:>8.2}x {:>12.3} {:>6.1}x",
            k.name,
            k.scalar_ns,
            k.optimized_ns,
            k.speedup(),
            per_item,
            k.floor
        );
        if k.speedup() < k.floor {
            failures.push(format!(
                "{}: {:.2}x < required {:.1}x",
                k.name,
                k.speedup(),
                k.floor
            ));
        }
        rows.push(
            JsonObject::new()
                .string("name", k.name)
                .uint("items", k.items)
                .uint("scalar_ns", k.scalar_ns)
                .uint("optimized_ns", k.optimized_ns)
                .float("speedup", k.speedup(), 2)
                .float("ns_per_item", per_item, 4)
                .float("required_speedup", k.floor, 1)
                .finish(),
        );
    }
    let json = JsonObject::new()
        .uint("trials", trials as u64)
        .raw("kernels", &array(rows))
        .finish();
    write_summary(&json, args.json.as_deref());

    if args.check && !failures.is_empty() {
        eprintln!("kernel speedup floors violated:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
