//! Figure 12: the availability vs minimum-accuracy trade-off (Equation
//! 6) for the three networks, with the paper's two example users:
//! (A) minimum accuracy 99.999%, (B) availability 99.9%.
//!
//! Timings (`T_d`, `T_r`) are measured live on the prepared networks;
//! the error-rate assumption is the paper's 75,000 errors per 10⁹
//! device-hours per Mbit.
//!
//! With `--measured`, each network additionally drives the
//! `milr-serve` virtual-clock simulation — live serving under seeded
//! fault injection — and reports the *empirical* availability next to
//! the Eq. 6 prediction for the same `T_d`/`T_r`/`T_be` constants.
//!
//! `--json FILE` writes the modeled curves (and, with `--measured`,
//! the measured comparison) as a machine-readable summary.
//!
//! ```text
//! cargo run --release -p milr-bench --bin fig12_availability
//! cargo run --release -p milr-bench --bin fig12_availability -- --measured
//! ```

use milr_bench::json::{array, write_summary, JsonObject};
use milr_bench::serve::run_measured;
use milr_bench::{prepare, Args, NetChoice};
use milr_core::availability::AvailabilityModel;
use milr_core::MilrConfig;
use milr_serve::sim::SimConfig;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    println!("# Figure 12 — availability vs minimum accuracy (Eq. 6)");
    let mut nets = Vec::new();
    for net in [
        NetChoice::Mnist,
        NetChoice::CifarSmall,
        NetChoice::CifarLarge,
    ] {
        let prep = prepare(net, args.scale, args.seed);
        // Measure detection time live.
        let start = Instant::now();
        for _ in 0..5 {
            prep.milr.detect(&prep.model).expect("detect");
        }
        let td = start.elapsed().as_secs_f64() / 5.0;
        // Recovery time for a representative single-layer heal.
        let mut model = prep.model.clone();
        let target = prep
            .model
            .layers()
            .iter()
            .position(|l| l.param_count() > 0)
            .expect("has params");
        let start = Instant::now();
        let _ = prep.milr.recover_layers(&mut model, &[target]);
        let tr = start.elapsed().as_secs_f64();
        // The error-arrival rate uses the *paper architecture's* memory
        // footprint (Tables I–III); a reduced twin's few hundred
        // kilobits would see one error per ~50 years and the curve
        // would sit entirely in its flat region.
        let paper_params = match net {
            NetChoice::Mnist => milr_models::mnist(0).model.param_count(),
            NetChoice::CifarSmall => milr_models::cifar_small(0).model.param_count(),
            NetChoice::CifarLarge => milr_models::cifar_large(0).model.param_count(),
        };
        let mbits = paper_params as f64 * 32.0 / 1e6;
        let model = AvailabilityModel::from_network(mbits, td, tr, prep.clean_accuracy, 1e-4);
        println!(
            "\n## {} (Td {:.4}s, Tr {:.4}s, {:.1} Mbit, Tbe {:.0}s)",
            prep.label, td, tr, mbits, model.time_between_errors
        );
        println!(
            "{:>16} {:>16} {:>14}",
            "Availability", "Downtime", "MinAccuracy"
        );
        let mut curve = Vec::new();
        for (a, acc) in model.curve(12) {
            println!("{a:>16.12} {:>16.3e} {acc:>14.6}", 1.0 - a);
            curve.push(
                JsonObject::new()
                    .float("availability", a, 12)
                    .float("min_accuracy", acc, 6)
                    .finish(),
            );
        }
        // The paper's example users.
        let user_a = model.availability_for_accuracy(0.99999 * prep.clean_accuracy);
        println!(
            "user A (min accuracy 99.999% of clean): availability {user_a:.12} (downtime {:.3e})",
            1.0 - user_a
        );
        let user_b = model.min_accuracy(0.999);
        println!("user B (availability 99.9%): min accuracy {user_b:.6}");

        let mut net_json = JsonObject::new()
            .string("net", &prep.label)
            .float("td_s", td, 6)
            .float("tr_s", tr, 6)
            .float("mbits", mbits, 3)
            .float("tbe_s", model.time_between_errors, 3)
            .float("user_a_availability", user_a, 12)
            .float("user_b_min_accuracy", user_b, 6)
            .raw("curve", &array(curve));

        if args.measured {
            // Measured counterpart: serve the reduced twin live under
            // seeded fault injection and compare the empirical
            // availability against Eq. 6 built from the same virtual
            // constants.
            let sim = SimConfig {
                seed: args.seed,
                requests: 200,
                faults: 2,
                ..SimConfig::default()
            };
            let (result, cmp, _storage) = run_measured(&prep.model, MilrConfig::default(), &sim)
                .expect("serving simulation cannot fail structurally");
            println!("modeled vs measured (serving simulation, reduced twin):");
            println!(
                "  {:<28} {:>14}",
                "Eq.6 @ scrub cadence",
                format!("{:.9}", cmp.modeled_eq6_availability)
            );
            println!(
                "  {:<28} {:>14}",
                "modeled per fault",
                format!("{:.9}", cmp.modeled_per_fault_availability)
            );
            println!(
                "  {:<28} {:>14}",
                "measured (empirical)",
                format!("{:.9}", cmp.measured_availability)
            );
            println!(
                "  ({} requests, {} faults, {} quarantines, {} re-executions, digest {:#x})",
                result.report.submitted,
                result.report.faults_injected,
                result.report.quarantines,
                result.report.reexecuted,
                result.report.digest
            );
            net_json = net_json
                .raw("measured", &cmp.to_json())
                .raw("measured_report", &result.report.to_json());
        }
        nets.push(net_json.finish());
    }
    let json = JsonObject::new()
        .string("figure", "fig12_availability")
        .raw("nets", &array(nets))
        .finish();
    write_summary(&json, args.json.as_deref());
}
