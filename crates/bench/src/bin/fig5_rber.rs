//! Figures 5 / 7 / 9: normalized accuracy after recovery from varying
//! RBER, box-plot statistics over repeated trials. Default panels are
//! the paper's four DRAM arms (no recovery, ECC, MILR, ECC + MILR);
//! `--arms encrypted` or `--arms all` adds the encrypted-VM arms (XTS,
//! XTS + MILR, XTS + ECC + MILR), where RBER is drawn over the
//! ciphertext. `--json FILE` writes the full panel × rate matrix as a
//! machine-readable summary.
//!
//! ```text
//! cargo run --release -p milr-bench --bin fig5_rber -- --net mnist --trials 40
//! cargo run --release -p milr-bench --bin fig5_rber -- --arms all --json fig5.json
//! ```

use milr_bench::json::{array, write_summary, JsonObject};
use milr_bench::{prepare, run_rber_trial, Args, BoxStats, NetChoice};

fn rates(net: NetChoice) -> Vec<f64> {
    // Paper x-axes: MNIST sweeps to 1e-3; the CIFAR nets to 5e-4.
    let base = [1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4];
    match net {
        NetChoice::Mnist => base.iter().copied().chain([1e-3]).collect(),
        _ => base.to_vec(),
    }
}

fn main() {
    let args = Args::from_env();
    let prep = prepare(args.net, args.scale, args.seed);
    println!(
        "# Figure 5/7/9 — {} — normalized accuracy vs RBER ({} trials, clean accuracy {:.3})",
        prep.label, args.trials, prep.clean_accuracy
    );
    let mut panels = Vec::new();
    for &arm in args.arms.arms() {
        println!("\n## panel: {arm}");
        let mut points = Vec::new();
        for &rate in &rates(args.net) {
            let samples: Vec<f64> = (0..args.trials)
                .map(|t| {
                    run_rber_trial(
                        &prep,
                        arm,
                        rate,
                        args.seed ^ (t as u64) << 20 ^ rate.to_bits(),
                    )
                    .normalized
                })
                .collect();
            let stats = BoxStats::compute(&samples);
            println!("rber {rate:7.0e}  {}", stats.row());
            points.push(
                JsonObject::new()
                    .raw("rber", &format!("{rate:e}"))
                    .raw("normalized_accuracy", &stats.to_json())
                    .finish(),
            );
        }
        panels.push(
            JsonObject::new()
                .string("arm", &arm.to_string())
                .raw("points", &array(points))
                .finish(),
        );
    }
    let json = JsonObject::new()
        .string("figure", "fig5_rber")
        .string("net", &prep.label)
        .uint("trials", args.trials as u64)
        .float("clean_accuracy", prep.clean_accuracy, 6)
        .raw("panels", &array(panels))
        .finish();
    write_summary(&json, args.json.as_deref());
}
