//! Tables V / VII / IX: storage overhead of backup weights vs ECC vs
//! MILR vs ECC + MILR, in MB.
//!
//! ```text
//! cargo run --release -p milr-bench --bin table_storage -- --net mnist --paper-scale
//! ```

use milr_bench::json::{write_summary, JsonObject};
use milr_bench::{prepare, Args};

fn main() {
    let args = Args::from_env();
    let prep = prepare(args.net, args.scale, args.seed);
    let report = prep.milr.storage_report(&prep.model);
    println!("# Table V/VII/IX — {} — storage overhead (MB)", prep.label);
    println!(
        "{:>10} {:>8} {:>8} {:>10}",
        "Backup", "ECC", "MILR", "ECC&MILR"
    );
    println!("{}", report.table_row());
    println!("\nMILR breakdown (bytes):");
    println!(
        "  full checkpoints:    {:>12}",
        report.full_checkpoint_bytes
    );
    println!(
        "  partial checkpoints: {:>12}",
        report.partial_checkpoint_bytes
    );
    println!("  dummy outputs:       {:>12}", report.dummy_output_bytes);
    println!("  2-D CRC codes:       {:>12}", report.crc_bytes);
    println!("  bias sums:           {:>12}", report.bias_sum_bytes);
    println!("  seeds:               {:>12}", report.seed_bytes);
    println!(
        "  MILR / backup ratio: {:>12.3}",
        report.fraction_of_backup()
    );
    // Machine-readable twin of the table row.
    let json = JsonObject::new()
        .string("net", &prep.label)
        .raw("storage", &report.to_json())
        .finish();
    write_summary(&json, args.json.as_deref());
}
