//! `integrity_bench`: measures the unified integrity engine's hot
//! recovery path per substrate kind — full pipeline heal latency
//! (detect → heal → fast-path verify → re-protect) and the verification
//! fast path's win: re-checking only the flagged layers via
//! `Milr::detect_layers` versus the full re-detect the old loops ran.
//!
//! ```text
//! cargo run --release -p milr-bench --bin integrity_bench
//! cargo run --release -p milr-bench --bin integrity_bench -- \
//!     --net mnist --trials 5 --json BENCH_integrity.json
//! ```

use milr_bench::json::{array, write_summary, JsonObject};
use milr_bench::{prepare, Args};
use milr_integrity::{
    Budget, EscalationPolicy, IntegrityPipeline, ModelHost, RoundOutcome, Volatile,
};
use milr_substrate::SubstrateKind;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let prep = prepare(args.net, args.scale, args.seed);
    let trials = args.trials.max(1);
    println!(
        "# integrity_bench — unified integrity engine [{}]",
        prep.label
    );
    println!(
        "params: {}, checkable layers: {}, trials: {trials}",
        prep.model.param_count(),
        prep.milr.checkable_count()
    );
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>12} {:>13} {:>13} {:>9}",
        "substrate",
        "detect_ms",
        "heal_ms",
        "verify_ms",
        "reprotect_ms",
        "full_chk_ms",
        "fast_chk_ms",
        "speedup"
    );

    let mut arms = Vec::new();
    for kind in SubstrateKind::ALL {
        let mut pipe_ns = milr_integrity::StageNanos::default();
        let mut full_check_ns = 0u64;
        let mut fast_check_ns = 0u64;
        for t in 0..trials {
            let host = ModelHost::new(&prep.model, &|c| kind.store(c));
            let mut milr = prep.milr.clone();
            let victim = host.param_layers()[0];
            host.corrupt_weight(victim, 13 + t % 3);

            // Full pipeline episode, wall-timed per stage.
            let mut pipeline =
                IntegrityPipeline::new(EscalationPolicy::Quarantine, Budget::default())
                    .with_wall_timing();
            let outcome = pipeline
                .run(&host, &mut milr, &mut Volatile)
                .expect("single whole-weight fault heals");
            assert!(matches!(outcome, RoundOutcome::Clean { .. }));
            pipe_ns.merge(&pipeline.report().stage_ns);

            // The fast path's win in isolation: post-heal verification
            // as a full re-detect (the old loops) vs the flagged-only
            // subset check (the engine).
            let live = host.materialize();
            let start = Instant::now();
            assert!(milr.detect(&live).expect("detect").is_clean());
            full_check_ns += start.elapsed().as_nanos() as u64;
            let subset = host.materialize_layers(&[victim]);
            let start = Instant::now();
            assert!(milr
                .detect_layers(&subset, &[victim])
                .expect("detect subset")
                .is_clean());
            fast_check_ns += start.elapsed().as_nanos() as u64;
        }
        let ms = |ns: u64| ns as f64 / trials as f64 / 1e6;
        let speedup = full_check_ns as f64 / fast_check_ns.max(1) as f64;
        println!(
            "{:>12} {:>10.3} {:>10.3} {:>10.3} {:>12.3} {:>13.3} {:>13.3} {:>8.1}x",
            kind.name(),
            ms(pipe_ns.detect),
            ms(pipe_ns.heal),
            ms(pipe_ns.verify),
            ms(pipe_ns.reprotect),
            ms(full_check_ns),
            ms(fast_check_ns),
            speedup
        );
        arms.push(
            JsonObject::new()
                .string("substrate", kind.name())
                .float("detect_ms", ms(pipe_ns.detect), 4)
                .float("heal_ms", ms(pipe_ns.heal), 4)
                .float("verify_ms", ms(pipe_ns.verify), 4)
                .float("reprotect_ms", ms(pipe_ns.reprotect), 4)
                .float("full_check_ms", ms(full_check_ns), 4)
                .float("fast_check_ms", ms(fast_check_ns), 4)
                .float("verify_speedup", speedup, 2)
                .finish(),
        );
    }

    let json = JsonObject::new()
        .string("net", &prep.label)
        .uint("params", prep.model.param_count() as u64)
        .uint("checkable_layers", prep.milr.checkable_count() as u64)
        .uint("trials", trials as u64)
        .raw("arms", &array(arms))
        .finish();
    write_summary(&json, args.json.as_deref());
}
