//! `campaign_matrix`: runs the builtin chaos-campaign roster (or a
//! `--campaign`-selected subset) through both deterministic
//! simulations — single-instance serving and the replicated fleet —
//! and emits one JSON summary of per-campaign verdicts.
//!
//! ```text
//! cargo run --release -p milr-bench --bin campaign_matrix
//! cargo run --release -p milr-bench --bin campaign_matrix -- \
//!     --campaign byzantine-donors --campaign skewed-storm \
//!     --slo-gate --artifact-dir out --json BENCH_campaigns.json
//! ```
//!
//! Every campaign run is seed-deterministic: the same roster on the
//! same model prints byte-identical `CampaignReport` JSON. `--slo-gate`
//! turns the aggregated verdict into the exit code (the CI regression
//! gate over the nastiest campaigns); `--artifact-dir DIR` writes one
//! fleet trace (`TRACE_campaign_<name>.jsonl`) and one SLO verdict
//! (`SLO_campaign_<name>.json`) per campaign.

use milr_bench::campaigns::{builtin_campaigns, run_campaign_observed, MatrixTuning, CI_GATED};
use milr_bench::json::{array, write_summary, JsonObject};
use milr_bench::obs::ObsOutputs;

struct Cli {
    tuning: MatrixTuning,
    model_seed: u64,
    selected: Vec<String>,
    artifact_dir: Option<String>,
    json: Option<String>,
    slo_gate: bool,
    list: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut tuning = MatrixTuning::default();
    let mut model_seed = 42u64;
    let mut selected = Vec::new();
    let mut artifact_dir = None;
    let mut json = None;
    let mut slo_gate = false;
    let mut list = false;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--requests" => {
                tuning.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--replicas" => {
                tuning.replicas = value("--replicas")?
                    .parse()
                    .map_err(|e| format!("bad --replicas: {e}"))?
            }
            "--model-seed" => {
                model_seed = value("--model-seed")?
                    .parse()
                    .map_err(|e| format!("bad --model-seed: {e}"))?
            }
            "--campaign" => selected.push(value("--campaign")?),
            "--nastiest" => selected.extend(CI_GATED.iter().map(|s| s.to_string())),
            "--artifact-dir" => artifact_dir = Some(value("--artifact-dir")?),
            "--json" => json = Some(value("--json")?),
            "--slo-gate" => slo_gate = true,
            "--list" => list = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Cli {
        tuning,
        model_seed,
        selected,
        artifact_dir,
        json,
        slo_gate,
        list,
    })
}

fn main() {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: [--requests N] [--replicas N] [--model-seed N] [--campaign NAME]... \
                 [--nastiest] [--artifact-dir DIR] [--slo-gate] [--list] [--json FILE]"
            );
            std::process::exit(2);
        }
    };
    let roster = builtin_campaigns();
    if cli.list {
        println!("# builtin campaigns");
        for c in &roster {
            println!(
                "{:<18} seed {:#x}  chaos {}{}",
                c.name,
                c.seed,
                c.chaos.to_json(),
                if CI_GATED.contains(&c.name.as_str()) {
                    "  [ci-gated]"
                } else {
                    ""
                }
            );
        }
        return;
    }
    let campaigns: Vec<_> = if cli.selected.is_empty() {
        roster
    } else {
        for name in &cli.selected {
            if !roster.iter().any(|c| &c.name == name) {
                eprintln!("error: unknown campaign {name} (try --list)");
                std::process::exit(2);
            }
        }
        roster
            .into_iter()
            .filter(|c| cli.selected.contains(&c.name))
            .collect()
    };
    if let Some(dir) = &cli.artifact_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: create {dir}: {e}");
            std::process::exit(1);
        }
    }

    let net = milr_models::reduced_mnist(cli.model_seed);
    println!("# campaign_matrix — declarative chaos campaigns [reduced MNIST twin]");
    println!(
        "matrix:   {} campaign(s) x (serve + fleet), {} requests, {} replicas",
        campaigns.len(),
        cli.tuning.requests,
        cli.tuning.replicas
    );

    let mut reports = Vec::new();
    for campaign in &campaigns {
        // Per-campaign observability: the fleet run (the richer
        // target) writes one trace and one SLO artifact when asked.
        let obs_out = match &cli.artifact_dir {
            Some(dir) => ObsOutputs::from_flags(
                Some(format!("{dir}/TRACE_campaign_{}.jsonl", campaign.name)),
                None,
            )
            .with_slo(Some(format!("{dir}/SLO_campaign_{}.json", campaign.name))),
            None => ObsOutputs::from_flags(None, None),
        };
        let report = run_campaign_observed(&net.model, campaign, &cli.tuning, &obs_out.observer())
            .expect("campaign simulation cannot fail structurally");
        println!(
            "{:<18} {}  serve[digest {:#x}, {}/{} ok, slo {}]  fleet[digest {:#x}, {}/{} ok, \
             {} peer repair(s), {} rejected donation(s), slo {}]",
            report.campaign.name,
            if report.pass() { "PASS" } else { "FAIL" },
            report.serve.digest,
            report.serve.completed,
            cli.tuning.requests,
            if report.serve.slo.pass {
                "pass"
            } else {
                "FAIL"
            },
            report.fleet.digest,
            report.fleet.completed,
            cli.tuning.requests,
            report.fleet.peer_repairs,
            report.fleet.rejected_donations,
            if report.fleet.slo.pass {
                "pass"
            } else {
                "FAIL"
            },
        );
        let c = &report.fleet.chaos;
        println!(
            "  chaos:  {} burst(s) ({} bits), {} stuck re-assert(s), {} torn write(s) [fleet]{}",
            c.bursts_fired,
            c.burst_bits,
            c.stuck_asserts,
            c.torn_fires,
            if report.campaign.chaos.byzantine.is_some() {
                format!(
                    ", byzantine {}",
                    if report.byzantine_caught() {
                        "caught"
                    } else {
                        "NOT CAUGHT"
                    }
                )
            } else {
                String::new()
            }
        );
        obs_out.flush();
        obs_out.write_slo(Some(&report.fleet.slo));
        reports.push(report);
    }

    let all_pass = reports.iter().all(|r| r.pass());
    println!(
        "verdict:  {} ({}/{} campaigns passed)",
        if all_pass { "PASS" } else { "FAIL" },
        reports.iter().filter(|r| r.pass()).count(),
        reports.len()
    );

    let json = JsonObject::new()
        .uint("requests", cli.tuning.requests as u64)
        .uint("replicas", cli.tuning.replicas as u64)
        .raw(
            "campaigns",
            &array(reports.iter().map(|r| r.to_json()).collect::<Vec<_>>()),
        )
        .raw("pass", if all_pass { "true" } else { "false" })
        .finish();
    write_summary(&json, cli.json.as_deref());

    if cli.slo_gate && !all_pass {
        eprintln!("slo-gate: FAIL (at least one campaign blew its declared SLO suite)");
        std::process::exit(1);
    }
    if cli.slo_gate {
        println!("slo-gate: PASS (every campaign held its declared SLO suite)");
    }
}
