//! Tables I / II / III: the evaluation network architectures with
//! per-layer output shapes and trainable-parameter counts.
//!
//! ```text
//! cargo run --release -p milr-bench --bin tables_networks
//! ```

fn main() {
    for (table, net) in [
        ("Table I — MNIST network", milr_models::mnist(0).model),
        (
            "Table II — CIFAR-10 small network",
            milr_models::cifar_small(0).model,
        ),
        (
            "Table III — CIFAR-10 large network",
            milr_models::cifar_large(0).model,
        ),
    ] {
        println!("# {table}");
        println!("{}", net.summary());
    }
}
