//! `serve_load`: drives a seeded synthetic request workload through the
//! `milr-serve` virtual-clock simulation — batched inference under
//! continuous background fault injection, with online detection,
//! quarantine and recovery — and emits a JSON summary whose measured
//! availability is directly comparable to Equation 6's prediction.
//!
//! ```text
//! cargo run --release -p milr-bench --bin serve_load
//! cargo run --release -p milr-bench --bin serve_load -- \
//!     --requests 400 --faults 3 --policy reject --json BENCH_serve.json
//! ```
//!
//! The run is deterministic under `--seed`: re-running prints the same
//! digest and availability bit-for-bit.

use milr_bench::json::{write_summary, JsonObject};
use milr_bench::serve::run_measured;
use milr_core::MilrConfig;
use milr_serve::sim::SimConfig;
use milr_serve::QuarantinePolicy;

struct Cli {
    sim: SimConfig,
    json: Option<String>,
    model_seed: u64,
}

fn parse_cli() -> Result<Cli, String> {
    let mut sim = SimConfig::default();
    let mut json = None;
    let mut model_seed = 42u64;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--requests" => {
                sim.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--seed" => {
                sim.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--model-seed" => {
                model_seed = value("--model-seed")?
                    .parse()
                    .map_err(|e| format!("bad --model-seed: {e}"))?
            }
            "--workers" => {
                sim.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?
            }
            "--faults" => {
                sim.faults = value("--faults")?
                    .parse()
                    .map_err(|e| format!("bad --faults: {e}"))?
            }
            "--batch-max" => {
                sim.batch_max = value("--batch-max")?
                    .parse()
                    .map_err(|e| format!("bad --batch-max: {e}"))?
            }
            "--scrub-interval-us" => {
                let us: u64 = value("--scrub-interval-us")?
                    .parse()
                    .map_err(|e| format!("bad --scrub-interval-us: {e}"))?;
                sim.scrub_interval_ns = us * 1_000;
            }
            "--policy" => {
                sim.policy = match value("--policy")?.as_str() {
                    "drain" => QuarantinePolicy::Drain,
                    "reject" => QuarantinePolicy::Reject,
                    other => return Err(format!("unknown policy {other}")),
                }
            }
            "--json" => json = Some(value("--json")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Cli {
        sim,
        json,
        model_seed,
    })
}

fn main() {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: [--requests N] [--seed N] [--model-seed N] [--workers N] [--faults N] \
                 [--batch-max N] [--scrub-interval-us N] [--policy drain|reject] [--json FILE]"
            );
            std::process::exit(2);
        }
    };
    let net = milr_models::reduced_mnist(cli.model_seed);
    let (result, cmp, storage) = run_measured(&net.model, MilrConfig::default(), &cli.sim)
        .expect("serving simulation cannot fail structurally");
    let r = &result.report;

    println!("# serve_load — online serving with live fault scrubbing [reduced MNIST twin]");
    println!(
        "workload: {} requests, {} workers, batch ≤ {}, policy {}, seed {:#x}",
        r.submitted, cli.sim.workers, cli.sim.batch_max, r.policy, r.seed
    );
    println!(
        "outcome:  {} completed, {} rejected, {} re-executed after flagged scrubs",
        r.completed, r.rejected, r.reexecuted
    );
    println!(
        "faults:   {} injected -> {} quarantines, {} layer recoveries, {} scrub ticks",
        r.faults_injected, r.quarantines, r.layers_recovered, r.scrub_ticks
    );
    println!(
        "latency:  mean {:.1} us, p50 {:.1} us, p95 {:.1} us, max {:.1} us",
        r.latency.mean_us, r.latency.p50_us, r.latency.p95_us, r.latency.max_us
    );
    println!(
        "clock:    {:.3} ms total, {:.3} ms quarantined",
        r.total_ns as f64 / 1e6,
        r.downtime_ns as f64 / 1e6
    );
    println!(
        "availability (measured):          {:.9}",
        cmp.measured_availability
    );
    println!(
        "availability (Eq.6 @ cadence):    {:.9}   <- every cycle pays Td+Tr",
        cmp.modeled_eq6_availability
    );
    println!(
        "availability (modeled per fault): {:.9}   <- downtime only on faults",
        cmp.modeled_per_fault_availability
    );
    println!("digest:   {:#x} (seed-reproducible)", r.digest);

    let json = JsonObject::new()
        .raw("report", &r.to_json())
        .raw("comparison", &cmp.to_json())
        .raw("storage", &storage.to_json())
        .finish();
    write_summary(&json, cli.json.as_deref());
}
