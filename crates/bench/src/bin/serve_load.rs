//! `serve_load`: drives a seeded synthetic request workload through the
//! `milr-serve` virtual-clock simulation — batched inference under
//! continuous background fault injection, with online detection,
//! quarantine and recovery — and emits a JSON summary whose measured
//! availability is directly comparable to Equation 6's prediction.
//!
//! ```text
//! cargo run --release -p milr-bench --bin serve_load
//! cargo run --release -p milr-bench --bin serve_load -- \
//!     --requests 400 --faults 3 --policy reject --json BENCH_serve.json
//! ```
//!
//! The run is deterministic under `--seed`: re-running prints the same
//! digest and availability bit-for-bit.
//!
//! `--live` instead runs the real multi-threaded server twice under a
//! wall-clock fault campaign — once on the legacy materialize-per-batch
//! read path and once on the fused epoch-cached path — and reports the
//! sustained-QPS speedup on identical hardware and seed.
//!
//! `--check-p99-against FILE` compares this run's p99 latency against a
//! previously recorded summary and exits non-zero when it regressed
//! more than 2x — the CI latency gate.

use milr_bench::json::{write_summary, JsonObject};
use milr_bench::live::{run_live, LiveConfig};
use milr_bench::obs::ObsOutputs;
use milr_bench::serve::run_measured_observed;
use milr_core::MilrConfig;
use milr_serve::sim::SimConfig;
use milr_serve::{QuarantinePolicy, ReadPath};
use milr_substrate::SubstrateKind;
use std::time::Duration;

struct Cli {
    sim: SimConfig,
    json: Option<String>,
    model_seed: u64,
    live: bool,
    substrate: SubstrateKind,
    fault_every_ms: u64,
    check_p99_against: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    spans_out: Option<String>,
    slo_out: Option<String>,
    live_http: Option<String>,
    live_http_hold_ms: u64,
}

fn parse_cli() -> Result<Cli, String> {
    let mut sim = SimConfig::default();
    let mut json = None;
    let mut model_seed = 42u64;
    let mut live = false;
    let mut substrate = SubstrateKind::XtsSecded;
    let mut fault_every_ms = 40u64;
    let mut check_p99_against = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut spans_out = None;
    let mut slo_out = None;
    let mut live_http = None;
    let mut live_http_hold_ms = 0u64;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--requests" => {
                sim.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--seed" => {
                sim.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--model-seed" => {
                model_seed = value("--model-seed")?
                    .parse()
                    .map_err(|e| format!("bad --model-seed: {e}"))?
            }
            "--workers" => {
                sim.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?
            }
            "--faults" => {
                sim.faults = value("--faults")?
                    .parse()
                    .map_err(|e| format!("bad --faults: {e}"))?
            }
            "--batch-max" => {
                sim.batch_max = value("--batch-max")?
                    .parse()
                    .map_err(|e| format!("bad --batch-max: {e}"))?
            }
            "--scrub-interval-us" => {
                let us: u64 = value("--scrub-interval-us")?
                    .parse()
                    .map_err(|e| format!("bad --scrub-interval-us: {e}"))?;
                sim.scrub_interval_ns = us * 1_000;
            }
            "--policy" => {
                sim.policy = match value("--policy")?.as_str() {
                    "drain" => QuarantinePolicy::Drain,
                    "reject" => QuarantinePolicy::Reject,
                    other => return Err(format!("unknown policy {other}")),
                }
            }
            "--batch-wait-us" => {
                let us: u64 = value("--batch-wait-us")?
                    .parse()
                    .map_err(|e| format!("bad --batch-wait-us: {e}"))?;
                sim.batch_wait_ns = us * 1_000;
            }
            "--live" => live = true,
            "--substrate" => {
                substrate = match value("--substrate")?.as_str() {
                    "plain" => SubstrateKind::Plain,
                    "secded" => SubstrateKind::Secded,
                    "xts" => SubstrateKind::Xts,
                    "xts-secded" => SubstrateKind::XtsSecded,
                    other => return Err(format!("unknown substrate {other}")),
                }
            }
            "--fault-every-ms" => {
                fault_every_ms = value("--fault-every-ms")?
                    .parse()
                    .map_err(|e| format!("bad --fault-every-ms: {e}"))?
            }
            "--check-p99-against" => check_p99_against = Some(value("--check-p99-against")?),
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "--spans-out" => spans_out = Some(value("--spans-out")?),
            "--slo-out" => slo_out = Some(value("--slo-out")?),
            "--live-http" => live_http = Some(value("--live-http")?),
            "--live-http-hold-ms" => {
                live_http_hold_ms = value("--live-http-hold-ms")?
                    .parse()
                    .map_err(|e| format!("bad --live-http-hold-ms: {e}"))?
            }
            "--json" => json = Some(value("--json")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Cli {
        sim,
        json,
        model_seed,
        live,
        substrate,
        fault_every_ms,
        check_p99_against,
        trace_out,
        metrics_out,
        spans_out,
        slo_out,
        live_http,
        live_http_hold_ms,
    })
}

/// Pulls `"latency_p99_us":<float>` out of a previously written summary
/// (our own serializer, so a string scan is exact) — the first
/// occurrence, which belongs to the headline report.
fn baseline_p99_us(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let key = "\"latency_p99_us\":";
    let at = text.find(key).ok_or(format!("{path}: no latency_p99_us"))?;
    let rest = &text[at + key.len()..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|e| format!("{path}: bad latency_p99_us: {e}"))
}

/// The CI latency gate: fail when p99 regressed more than 2x over the
/// recorded baseline. A sub-baseline p99 always passes.
fn enforce_p99_gate(current_us: f64, baseline_path: &str) {
    match baseline_p99_us(baseline_path) {
        Ok(baseline_us) => {
            println!("p99 gate: current {current_us:.1} us vs baseline {baseline_us:.1} us");
            if baseline_us > 0.0 && current_us > 2.0 * baseline_us {
                eprintln!(
                    "error: p99 regressed more than 2x over the recorded baseline \
                     ({current_us:.1} us > 2 * {baseline_us:.1} us)"
                );
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("error: p99 gate could not read the baseline: {msg}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: [--requests N] [--seed N] [--model-seed N] [--workers N] [--faults N] \
                 [--batch-max N] [--batch-wait-us N] [--scrub-interval-us N] \
                 [--policy drain|reject] [--live] [--substrate plain|secded|xts|xts-secded] \
                 [--fault-every-ms N] [--check-p99-against FILE] [--trace-out FILE] \
                 [--metrics-out FILE] [--spans-out FILE] [--slo-out FILE] \
                 [--live-http ADDR] [--live-http-hold-ms N] [--json FILE]"
            );
            std::process::exit(2);
        }
    };
    let net = milr_models::reduced_mnist(cli.model_seed);
    if cli.live {
        run_live_comparison(&cli, &net.model);
        return;
    }
    let obs_out = ObsOutputs::from_flags(cli.trace_out.clone(), cli.metrics_out.clone())
        .with_spans(cli.spans_out.clone())
        .with_slo(cli.slo_out.clone());
    let (result, cmp, storage) = run_measured_observed(
        &net.model,
        MilrConfig::default(),
        &cli.sim,
        &obs_out.observer(),
    )
    .expect("serving simulation cannot fail structurally");
    let r = &result.report;

    println!("# serve_load — online serving with live fault scrubbing [reduced MNIST twin]");
    println!(
        "workload: {} requests, {} workers, batch ≤ {}, policy {}, seed {:#x}",
        r.submitted, cli.sim.workers, cli.sim.batch_max, r.policy, r.seed
    );
    println!(
        "outcome:  {} completed, {} rejected, {} re-executed after flagged scrubs",
        r.completed, r.rejected, r.reexecuted
    );
    println!(
        "faults:   {} injected -> {} quarantines, {} layer recoveries, {} scrub ticks",
        r.faults_injected, r.quarantines, r.layers_recovered, r.scrub_ticks
    );
    println!(
        "latency:  mean {:.1} us, p50 {:.1} us, p95 {:.1} us, p99 {:.1} us, max {:.1} us",
        r.latency.mean_us, r.latency.p50_us, r.latency.p95_us, r.latency.p99_us, r.latency.max_us
    );
    println!(
        "batching: {} batches ({} full), mean occupancy {:.2} of {} max",
        r.batches, r.full_batches, r.batch_occupancy, cli.sim.batch_max
    );
    println!(
        "clock:    {:.3} ms total, {:.3} ms quarantined",
        r.total_ns as f64 / 1e6,
        r.downtime_ns as f64 / 1e6
    );
    println!(
        "availability (measured):          {:.9}",
        cmp.measured_availability
    );
    println!(
        "availability (Eq.6 @ cadence):    {:.9}   <- every cycle pays Td+Tr",
        cmp.modeled_eq6_availability
    );
    println!(
        "availability (modeled per fault): {:.9}   <- downtime only on faults",
        cmp.modeled_per_fault_availability
    );
    println!("digest:   {:#x} (seed-reproducible)", r.digest);
    if let Some(slo) = &r.slo {
        println!(
            "slo:      {} ({} alert(s) fired)",
            if slo.pass { "PASS" } else { "FAIL" },
            slo.alerts
        );
    }

    obs_out.flush();
    obs_out.write_slo(r.slo.as_ref());
    let json = JsonObject::new()
        .raw("report", &r.to_json())
        .raw("comparison", &cmp.to_json())
        .raw("storage", &storage.to_json())
        .finish();
    write_summary(&json, cli.json.as_deref());
    if let Some(baseline) = &cli.check_p99_against {
        enforce_p99_gate(r.latency.p99_us, baseline);
    }
}

/// The `--live` mode: one wall-clock campaign per read path, same seed
/// and hardware, reporting the fused-over-legacy sustained-QPS speedup.
fn run_live_comparison(cli: &Cli, model: &milr_nn::Sequential) {
    // The live server keeps its own metrics registry (snapshotted at
    // shutdown), so only the trace and spans ride through ObsOutputs.
    let obs_out = ObsOutputs::from_flags(cli.trace_out.clone(), None)
        .with_spans(cli.spans_out.clone())
        .with_slo(cli.slo_out.clone());
    let live_cfg = LiveConfig {
        requests: cli.sim.requests,
        seed: cli.sim.seed,
        workers: cli.sim.workers,
        batch_max: cli.sim.batch_max,
        batch_wait: Duration::from_nanos(cli.sim.batch_wait_ns),
        substrate: cli.substrate,
        fault_every: (cli.fault_every_ms > 0).then(|| Duration::from_millis(cli.fault_every_ms)),
        // Termination guarantee on starved machines: a fault-free tail
        // always exists, so certification cannot livelock.
        max_faults: Some(cli.sim.requests),
        ..LiveConfig::default()
    };
    println!("# serve_load --live — real server under a fault campaign [reduced MNIST twin]");
    println!(
        "workload: {} requests, {} workers, batch <= {} (wait {} us), {:?} substrate, \
         fault every {} ms",
        live_cfg.requests,
        live_cfg.workers,
        live_cfg.batch_max,
        live_cfg.batch_wait.as_micros(),
        live_cfg.substrate,
        cli.fault_every_ms
    );
    let legacy = run_live(
        model,
        MilrConfig::default(),
        ReadPath::LegacyMaterialize,
        &live_cfg,
    )
    .expect("live server cannot fail structurally");
    // Only the fused (headline) run is observed: the comparison trace
    // and spans would interleave two servers' wall clocks in one
    // stream. It also hosts the live introspection endpoint.
    let fused_cfg = LiveConfig {
        trace: obs_out.observer().trace,
        spans: obs_out.span_handle(),
        http_addr: cli.live_http.clone(),
        http_hold: Duration::from_millis(cli.live_http_hold_ms),
        ..live_cfg
    };
    let fused = run_live(model, MilrConfig::default(), ReadPath::Fused, &fused_cfg)
        .expect("live server cannot fail structurally");
    for (name, out) in [("legacy", &legacy), ("fused", &fused)] {
        println!(
            "{name:>7}: {:.1} qps ({} completed in {:.3} s), p50 {:.1} us, p99 {:.1} us, \
             {} faults -> {} quarantines",
            out.qps,
            out.report.completed,
            out.elapsed.as_secs_f64(),
            out.report.latency.p50_us,
            out.report.latency.p99_us,
            out.faults_injected,
            out.report.quarantines
        );
    }
    let speedup = fused.qps / legacy.qps.max(f64::MIN_POSITIVE);
    println!("speedup: fused is {speedup:.2}x legacy sustained QPS");
    if let Some(slo) = &fused.report.slo {
        println!(
            "slo:      {} ({} alert(s) fired, fused run)",
            if slo.pass { "PASS" } else { "FAIL" },
            slo.alerts
        );
    }
    obs_out.flush();
    obs_out.write_slo(fused.report.slo.as_ref());
    if let Some(path) = &cli.metrics_out {
        if let Err(e) = std::fs::write(path, fused.metrics.to_prometheus()) {
            eprintln!("error: write {path}: {e}");
            std::process::exit(1);
        }
        println!("metrics:  {path} (fused run)");
    }
    let json = JsonObject::new()
        .raw("legacy", &legacy.to_json())
        .raw("fused", &fused.to_json())
        .raw("speedup", &format!("{speedup:.3}"))
        .finish();
    write_summary(&json, cli.json.as_deref());
    if let Some(baseline) = &cli.check_p99_against {
        enforce_p99_gate(fused.report.latency.p99_us, baseline);
    }
}
