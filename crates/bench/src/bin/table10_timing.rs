//! Table X: MILR prediction and identification time in seconds —
//! single prediction, per-image batch prediction, and error
//! identification (detection pass).
//!
//! ```text
//! cargo run --release -p milr-bench --bin table10_timing [-- --paper-scale]
//! ```

use milr_bench::{prepare, Args, NetChoice};
use milr_tensor::TensorRng;
use std::time::Instant;

fn time_runs(mut f: impl FnMut(), runs: usize) -> f64 {
    // One warm-up, then the mean of `runs` measurements.
    f();
    let start = Instant::now();
    for _ in 0..runs {
        f();
    }
    start.elapsed().as_secs_f64() / runs as f64
}

fn main() {
    let args = Args::from_env();
    println!("# Table X — prediction and identification time (seconds)");
    println!(
        "{:<22} {:>12} {:>14} {:>14}",
        "Network", "Single", "Batch(/img)", "Identification"
    );
    for net in [
        NetChoice::Mnist,
        NetChoice::CifarSmall,
        NetChoice::CifarLarge,
    ] {
        let prep = prepare(net, args.scale, args.seed);
        let mut single_dims = vec![1usize];
        single_dims.extend_from_slice(prep.model.input_shape());
        let single_img = TensorRng::new(1).uniform_tensor(&single_dims);
        let batch_n = 64usize;
        let mut batch_dims = vec![batch_n];
        batch_dims.extend_from_slice(prep.model.input_shape());
        let batch_img = TensorRng::new(2).uniform_tensor(&batch_dims);

        let single = time_runs(
            || {
                prep.model.forward(&single_img).expect("forward");
            },
            10,
        );
        let batch = time_runs(
            || {
                prep.model.forward(&batch_img).expect("forward");
            },
            5,
        ) / batch_n as f64;
        let ident = time_runs(
            || {
                prep.milr.detect(&prep.model).expect("detect");
            },
            10,
        );
        println!(
            "{:<22} {:>12.6} {:>14.3e} {:>14.6}",
            prep.label, single, batch, ident
        );
    }
}
