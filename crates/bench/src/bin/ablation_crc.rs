//! Ablation: 2-D CRC group width — localization precision (false
//! positives) vs metadata storage. The paper fixes the group at 4
//! parameters (§IV-B-c); this sweep shows why that is a sweet spot.
//!
//! ```text
//! cargo run --release -p milr-bench --bin ablation_crc
//! ```

use milr_bench::Args;
use milr_ecc::Crc2d;
use milr_fault::FaultRng;

fn main() {
    let args = Args::from_env();
    let (rows, cols) = (32usize, 64usize); // a (Z, Y) filter slice
    let grid: Vec<f32> = (0..rows * cols).map(|i| (i as f32).sin()).collect();
    println!("# Ablation — 2-D CRC group width on a {rows}x{cols} parameter slice");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "group", "codes(B)", "errors", "flagged", "false+"
    );
    for group in [2usize, 4, 8, 16] {
        let cfg = Crc2d::with_group(rows, cols, group);
        let codes = cfg.encode(&grid);
        let mut rng = FaultRng::seed(args.seed);
        for n_err in [1usize, 4, 16, 64] {
            let mut bad = grid.clone();
            let mut truth = std::collections::HashSet::new();
            while truth.len() < n_err {
                let r = rng.below(rows);
                let c = rng.below(cols);
                if truth.insert((r, c)) {
                    bad[r * cols + c] += 1.0;
                }
            }
            let flagged = codes.locate_errors(&bad);
            let false_pos = flagged.iter().filter(|cell| !truth.contains(cell)).count();
            println!(
                "{:>6} {:>10} {:>10} {:>12} {:>12}",
                group,
                codes.storage_bytes(),
                n_err,
                flagged.len(),
                false_pos
            );
        }
    }
}
