//! Shared JSON emission for the benchmark binaries.
//!
//! Every `--json` artifact (`BENCH_serve.json`, `BENCH_store.json`,
//! `BENCH_fleet.json`, `table_storage --json`, …) is assembled from
//! library-provided fragments (`ServeReport::to_json`,
//! `StorageReport::to_json`, `FleetReport::to_json`) glued together
//! with a handful of scalar fields. This module is the one place that
//! glue lives: an order-preserving object builder plus the
//! print-and-write tail every binary shares. (Hand-rolled because the
//! workspace's serde stub has no serializer.)

/// An order-preserving JSON object builder.
///
/// ```
/// use milr_bench::json::JsonObject;
/// let json = JsonObject::new()
///     .string("net", "mnist")
///     .uint("params", 1724)
///     .float("ms", 1.25, 3)
///     .raw("nested", "{\"a\":1}")
///     .finish();
/// assert_eq!(json, "{\"net\":\"mnist\",\"params\":1724,\"ms\":1.250,\"nested\":{\"a\":1}}");
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(mut self, key: &str) -> Self {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(key);
        self.buf.push_str("\":");
        self
    }

    /// Appends a field whose value is already-encoded JSON (a nested
    /// object, array, or literal).
    pub fn raw(self, key: &str, value: &str) -> Self {
        let mut o = self.key(key);
        o.buf.push_str(value);
        o
    }

    /// Appends a string field (no escaping: benchmark labels are plain
    /// identifiers).
    pub fn string(self, key: &str, value: &str) -> Self {
        let mut o = self.key(key);
        o.buf.push('"');
        o.buf.push_str(value);
        o.buf.push('"');
        o
    }

    /// Appends an unsigned integer field.
    pub fn uint(self, key: &str, value: u64) -> Self {
        let mut o = self.key(key);
        o.buf.push_str(&value.to_string());
        o
    }

    /// Appends a float field with fixed `decimals`.
    pub fn float(self, key: &str, value: f64, decimals: usize) -> Self {
        let mut o = self.key(key);
        o.buf.push_str(&format!("{value:.decimals$}"));
        o
    }

    /// Closes the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Encodes a sequence of already-encoded JSON values as an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
}

/// The shared tail of every benchmark binary: print the JSON summary to
/// stdout and, when `--json FILE` was given, write it (newline
/// terminated) and confirm on stderr.
///
/// # Panics
///
/// Panics when the file cannot be written — a benchmark whose artifact
/// silently vanished is worse than a failed run.
pub fn write_summary(json: &str, path: Option<&str>) {
    println!("{json}");
    if let Some(path) = path {
        std::fs::write(path, format!("{json}\n")).expect("writing the JSON summary");
        eprintln!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_order_and_nests_raw_values() {
        let json = JsonObject::new()
            .uint("a", 1)
            .string("b", "two")
            .float("c", 0.5, 2)
            .raw("d", &array(vec!["1".into(), "{\"x\":2}".into()]))
            .finish();
        assert_eq!(
            json,
            "{\"a\":1,\"b\":\"two\",\"c\":0.50,\"d\":[1,{\"x\":2}]}"
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }
}
