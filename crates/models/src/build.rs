use milr_nn::{data, Activation, Layer, Sequential, Trainer, TrainerConfig};
use milr_tensor::{ConvSpec, Padding, PoolSpec, TensorRng};

/// A constructed paper network plus its metadata.
#[derive(Debug, Clone)]
pub struct PaperNet {
    /// Network name as used in the paper ("MNIST", "CIFAR-10 small",
    /// "CIFAR-10 large").
    pub name: &'static str,
    /// The model, randomly initialized (train with
    /// [`milr_nn::Trainer`] or [`trained_reduced`] for a quick fixture).
    pub model: Sequential,
}

fn push_conv_block(
    model: &mut Sequential,
    rng: &mut TensorRng,
    filter: usize,
    out: usize,
    padding: Padding,
) {
    let in_channels = model.output_shape()[2];
    let spec = ConvSpec::new(filter, 1, padding).expect("static geometry");
    model
        .push(Layer::conv2d_random(filter, in_channels, out, spec, rng).expect("static config"))
        .expect("table geometry is consistent");
    model
        .push(Layer::bias_zero(out))
        .expect("bias after conv always fits");
    model
        .push(Layer::Activation(Activation::Relu))
        .expect("activation always fits");
}

fn push_dense_block(model: &mut Sequential, rng: &mut TensorRng, out: usize, relu: bool) {
    let inputs = model.output_shape()[0];
    model
        .push(Layer::dense_random(inputs, out, rng).expect("static config"))
        .expect("table geometry is consistent");
    model
        .push(Layer::bias_zero(out))
        .expect("bias after dense always fits");
    if relu {
        model
            .push(Layer::Activation(Activation::Relu))
            .expect("activation always fits");
    }
}

fn push_pool(model: &mut Sequential) {
    model
        .push(Layer::MaxPool2D(PoolSpec::new(2, 2).expect("static")))
        .expect("table geometry is consistent");
}

/// The MNIST network of Table I: three valid-padding 3×3 convolutions
/// (32, 32, 64 filters) with one 2×2 max-pool, then dense 256 and dense
/// 10. 1,669,290 trainable parameters.
pub fn mnist(seed: u64) -> PaperNet {
    let mut rng = TensorRng::new(seed);
    let mut model = Sequential::new(vec![28, 28, 1]);
    push_conv_block(&mut model, &mut rng, 3, 32, Padding::Valid); // (26,26,32)  320
    push_conv_block(&mut model, &mut rng, 3, 32, Padding::Valid); // (24,24,32)  9,248
    push_pool(&mut model); // (12,12,32)
    push_conv_block(&mut model, &mut rng, 3, 64, Padding::Valid); // (10,10,64)  18,496
    model.push(Layer::Flatten).expect("flatten always fits"); // 6400
    push_dense_block(&mut model, &mut rng, 256, true); // 1,638,656
    push_dense_block(&mut model, &mut rng, 10, false); // 2,570
    model
        .push(Layer::Activation(Activation::Softmax))
        .expect("softmax head");
    PaperNet {
        name: "MNIST",
        model,
    }
}

/// The CIFAR-10 small network of Table II: VGG-style same-padding 3×3
/// stacks (32·2, 64·2, 128·3) with three max-pools, dense 128, dense 10.
/// 698,154 trainable parameters.
pub fn cifar_small(seed: u64) -> PaperNet {
    let mut rng = TensorRng::new(seed);
    let mut model = Sequential::new(vec![32, 32, 3]);
    push_conv_block(&mut model, &mut rng, 3, 32, Padding::Same); // (32,32,32)  896
    push_conv_block(&mut model, &mut rng, 3, 32, Padding::Same); // (32,32,32)  9,248
    push_pool(&mut model); // (16,16,32)
    push_conv_block(&mut model, &mut rng, 3, 64, Padding::Same); // 18,496
    push_conv_block(&mut model, &mut rng, 3, 64, Padding::Same); // 36,928
    push_pool(&mut model); // (8,8,64)
    push_conv_block(&mut model, &mut rng, 3, 128, Padding::Same); // 73,856
    push_conv_block(&mut model, &mut rng, 3, 128, Padding::Same); // 147,584
    push_conv_block(&mut model, &mut rng, 3, 128, Padding::Same); // 147,584
    push_pool(&mut model); // (4,4,128)
    model.push(Layer::Flatten).expect("flatten always fits"); // 2048
    push_dense_block(&mut model, &mut rng, 128, true); // 262,272
    push_dense_block(&mut model, &mut rng, 10, false); // 1,290
    model
        .push(Layer::Activation(Activation::Softmax))
        .expect("softmax head");
    PaperNet {
        name: "CIFAR-10 small",
        model,
    }
}

/// The CIFAR-10 large network of Table III (after FAWCA): same-padding
/// 5×5 convolutions (96, 96, 80, 64, 64, 96) with two max-pools, dense
/// 256, dense 10. 2,389,786 trainable parameters.
pub fn cifar_large(seed: u64) -> PaperNet {
    let mut rng = TensorRng::new(seed);
    let mut model = Sequential::new(vec![32, 32, 3]);
    push_conv_block(&mut model, &mut rng, 5, 96, Padding::Same); // (32,32,96)  7,296
    push_pool(&mut model); // (16,16,96)
    push_conv_block(&mut model, &mut rng, 5, 96, Padding::Same); // 230,496
    push_pool(&mut model); // (8,8,96)
    push_conv_block(&mut model, &mut rng, 5, 80, Padding::Same); // 192,080
    push_conv_block(&mut model, &mut rng, 5, 64, Padding::Same); // 128,064
    push_conv_block(&mut model, &mut rng, 5, 64, Padding::Same); // 102,464
    push_conv_block(&mut model, &mut rng, 5, 96, Padding::Same); // 153,696
    model.push(Layer::Flatten).expect("flatten always fits"); // 6144
    push_dense_block(&mut model, &mut rng, 256, true); // 1,573,120
    push_dense_block(&mut model, &mut rng, 10, false); // 2,570
    model
        .push(Layer::Activation(Activation::Softmax))
        .expect("softmax head");
    PaperNet {
        name: "CIFAR-10 large",
        model,
    }
}

/// Trains a reduced-scale network briefly on the matching synthetic
/// dataset and returns it together with a held-out test set — the
/// standard fixture for integration tests and examples.
///
/// `which` selects the twin: `"mnist"` (glyph digits) or anything else
/// (color patches / CIFAR twin).
pub fn trained_reduced(which: &str, seed: u64) -> (Sequential, data::Dataset) {
    let (mut model, train, test) = if which == "mnist" {
        let net = crate::reduced_mnist(seed);
        let train = data::digits(300, 14, seed ^ 0xA5A5);
        let test = data::digits(80, 14, seed ^ 0x5A5A);
        (net.model, train, test)
    } else {
        let net = crate::reduced_cifar_small(seed);
        let train = data::patches(300, 16, seed ^ 0xA5A5);
        let test = data::patches(80, 16, seed ^ 0x5A5A);
        (net.model, train, test)
    };
    let mut trainer = Trainer::new(TrainerConfig {
        learning_rate: 0.03,
        momentum: 0.9,
        seed,
    });
    trainer
        .fit(&mut model, &train, 10, 25)
        .expect("training the reduced net is infallible by construction");
    (model, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Layer-by-layer (layer, trainable) expectations from the paper's
    /// tables, with conv/dense + bias split the way MILR treats them.
    fn table_param_sum(pairs: &[(usize, usize)]) -> usize {
        pairs.iter().map(|(w, b)| w + b).sum()
    }

    #[test]
    fn mnist_matches_table_i() {
        let net = mnist(1);
        let m = &net.model;
        assert_eq!(net.name, "MNIST");
        // Output shapes along the stack (conv outputs, Table I rows).
        assert_eq!(m.shape_at(1), &[26, 26, 32]);
        assert_eq!(m.shape_at(4), &[24, 24, 32]);
        assert_eq!(m.shape_at(7), &[12, 12, 32]); // after pool
        assert_eq!(m.shape_at(8), &[10, 10, 64]);
        assert_eq!(m.output_shape(), &[10]);
        // Parameter totals per table row.
        let rows = [
            (288, 32),
            (9_216, 32),
            (18_432, 64),
            (1_638_400, 256),
            (2_560, 10),
        ];
        assert_eq!(m.param_count(), table_param_sum(&rows));
        assert_eq!(m.param_count(), 1_669_290);
    }

    #[test]
    fn cifar_small_matches_table_ii() {
        let net = cifar_small(2);
        let m = &net.model;
        assert_eq!(m.shape_at(1), &[32, 32, 32]);
        assert_eq!(m.output_shape(), &[10]);
        let rows = [
            (864, 32),
            (9_216, 32),
            (18_432, 64),
            (36_864, 64),
            (73_728, 128),
            (147_456, 128),
            (147_456, 128),
            (262_144, 128),
            (1_280, 10),
        ];
        assert_eq!(m.param_count(), table_param_sum(&rows));
        // Table II total: 896+9248+18496+36928+73856+147584+147584+262272+1290.
        assert_eq!(m.param_count(), 698_154);
    }

    #[test]
    fn cifar_large_matches_table_iii() {
        let net = cifar_large(3);
        let m = &net.model;
        assert_eq!(m.shape_at(1), &[32, 32, 96]);
        let rows = [
            (7_200, 96),
            (230_400, 96),
            (192_000, 80),
            (128_000, 64),
            (102_400, 64),
            (153_600, 96),
            (1_572_864, 256),
            (2_560, 10),
        ];
        assert_eq!(m.param_count(), table_param_sum(&rows));
        // Table III total: 7296+230496+192080+128064+102464+153696+1573120+2570.
        assert_eq!(m.param_count(), 2_389_786);
    }

    #[test]
    fn bias_and_relu_follow_every_conv_and_dense() {
        for net in [mnist(4), cifar_small(4), cifar_large(4)] {
            let layers = net.model.layers();
            for (i, l) in layers.iter().enumerate() {
                match l.kind_name() {
                    "Conv2D" => {
                        assert_eq!(layers[i + 1].kind_name(), "Bias", "{}: layer {i}", net.name);
                        assert_eq!(
                            layers[i + 2].kind_name(),
                            "Activation",
                            "{}: layer {i}",
                            net.name
                        );
                    }
                    "Dense" => {
                        assert_eq!(layers[i + 1].kind_name(), "Bias", "{}: layer {i}", net.name);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn paper_nets_run_forward() {
        // One tiny batch through each full-scale network.
        let nets = [mnist(5)];
        for net in nets {
            let input_dims: Vec<usize> = std::iter::once(1)
                .chain(net.model.input_shape().iter().copied())
                .collect();
            let batch = TensorRng::new(1).uniform_tensor(&input_dims);
            let out = net.model.forward(&batch).unwrap();
            assert_eq!(out.shape().dims(), &[1, 10]);
            let sum: f32 = out.data().iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "softmax head sums to {sum}");
        }
    }

    #[test]
    fn trained_reduced_learns() {
        let (model, test) = trained_reduced("mnist", 7);
        let acc = model.accuracy(&test.images, &test.labels).unwrap();
        assert!(acc > 0.5, "reduced mnist accuracy {acc}");
    }
}
