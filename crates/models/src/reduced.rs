use milr_nn::{Activation, Layer, Sequential};
use milr_tensor::{ConvSpec, Padding, PoolSpec, TensorRng};

/// A reduced-scale twin of a paper network.
///
/// Same layer-type sequence as the full-scale architecture (conv+bias+
/// ReLU blocks, max-pools, flatten, dense+bias blocks, softmax head) but
/// with smaller images and channel counts, so the O(N³) recovery solves
/// finish in milliseconds. The benches run these twins by default and
/// the full Tables I–III networks under `--paper-scale`; EXPERIMENTS.md
/// records which scale produced each number.
#[derive(Debug, Clone)]
pub struct ReducedNet {
    /// Twin name, e.g. `"MNIST (reduced)"`.
    pub name: &'static str,
    /// The model.
    pub model: Sequential,
}

/// Reduced MNIST twin: 14×14×1 input, convolutions 8/8/16 (valid 3×3),
/// one pool, dense 32, dense 10 — the Table I sequence at 1/4 scale.
pub fn reduced_mnist(seed: u64) -> ReducedNet {
    let mut rng = TensorRng::new(seed);
    let mut model = Sequential::new(vec![14, 14, 1]);
    let spec = ConvSpec::new(3, 1, Padding::Valid).expect("static");
    for (inc, out) in [(1usize, 8usize), (8, 8)] {
        model
            .push(Layer::conv2d_random(3, inc, out, spec, &mut rng).expect("static"))
            .expect("geometry");
        model.push(Layer::bias_zero(out)).expect("geometry");
        model
            .push(Layer::Activation(Activation::Relu))
            .expect("geometry");
    }
    model
        .push(Layer::MaxPool2D(PoolSpec::new(2, 2).expect("static")))
        .expect("geometry"); // (5,5,8)
    model
        .push(Layer::conv2d_random(3, 8, 16, spec, &mut rng).expect("static"))
        .expect("geometry"); // (3,3,16)
    model.push(Layer::bias_zero(16)).expect("geometry");
    model
        .push(Layer::Activation(Activation::Relu))
        .expect("geometry");
    model.push(Layer::Flatten).expect("geometry"); // 144
    for (inc, out, relu) in [(144usize, 32usize, true), (32, 10, false)] {
        let _ = inc;
        let inputs = model.output_shape()[0];
        model
            .push(Layer::dense_random(inputs, out, &mut rng).expect("static"))
            .expect("geometry");
        model.push(Layer::bias_zero(out)).expect("geometry");
        if relu {
            model
                .push(Layer::Activation(Activation::Relu))
                .expect("geometry");
        }
    }
    model
        .push(Layer::Activation(Activation::Softmax))
        .expect("geometry");
    ReducedNet {
        name: "MNIST (reduced)",
        model,
    }
}

/// Tiny conv-heavy **serving fixture** shared by the serving and fleet
/// test suites: 10×10×1 input, conv(3×3, 1→6) + bias + ReLU, 2×2
/// max-pool, conv(3×3, 6→4) + bias, flatten, dense(16→5), softmax.
///
/// The geometry is load-bearing and pinned by test: the two
/// convolutions land in different checkpoint segments; conv layer **0**
/// is fully recoverable (G² = 64 ≥ F²Z = 9, CRC-guided heals restore
/// exact golden bits — the regime where certified serving outputs stay
/// bit-faithful through fault/recovery episodes), while conv layer
/// **4** has partial-recoverability geometry (F²Z = 54 > G² = 4) —
/// whole-layer corruption of it exceeds MILR's recoverable set
/// (min-norm heal), which is what the fleet suites use to force peer
/// repair.
pub fn serving_probe(seed: u64) -> Sequential {
    let mut rng = TensorRng::new(seed);
    let mut m = Sequential::new(vec![10, 10, 1]);
    let spec = ConvSpec::new(3, 1, Padding::Valid).expect("static");
    m.push(Layer::conv2d_random(3, 1, 6, spec, &mut rng).expect("static"))
        .expect("geometry");
    m.push(Layer::bias_zero(6)).expect("geometry");
    m.push(Layer::Activation(Activation::Relu))
        .expect("geometry");
    m.push(Layer::MaxPool2D(PoolSpec::new(2, 2).expect("static")))
        .expect("geometry");
    m.push(Layer::conv2d_random(3, 6, 4, spec, &mut rng).expect("static"))
        .expect("geometry");
    m.push(Layer::bias_zero(4)).expect("geometry");
    m.push(Layer::Flatten).expect("geometry");
    m.push(Layer::dense_random(2 * 2 * 4, 5, &mut rng).expect("static"))
        .expect("geometry");
    m.push(Layer::Activation(Activation::Softmax))
        .expect("geometry");
    m
}

/// Reduced CIFAR-10 small twin: 16×16×3 input, same-padding 3×3 stacks
/// (8·2, 16·2 with pools, 24), dense 32, dense 10 — the Table II
/// sequence at reduced width/depth.
pub fn reduced_cifar_small(seed: u64) -> ReducedNet {
    let mut rng = TensorRng::new(seed);
    let mut model = Sequential::new(vec![16, 16, 3]);
    let spec = ConvSpec::new(3, 1, Padding::Same).expect("static");
    let blocks: [(usize, usize, bool); 5] = [
        (3, 8, false),
        (8, 8, true), // pool after
        (8, 16, false),
        (16, 16, true), // pool after
        (16, 24, false),
    ];
    for (inc, out, pool_after) in blocks {
        model
            .push(Layer::conv2d_random(3, inc, out, spec, &mut rng).expect("static"))
            .expect("geometry");
        model.push(Layer::bias_zero(out)).expect("geometry");
        model
            .push(Layer::Activation(Activation::Relu))
            .expect("geometry");
        if pool_after {
            model
                .push(Layer::MaxPool2D(PoolSpec::new(2, 2).expect("static")))
                .expect("geometry");
        }
    }
    model.push(Layer::Flatten).expect("geometry"); // 4*4*24 = 384
    for (out, relu) in [(32usize, true), (10, false)] {
        let inputs = model.output_shape()[0];
        model
            .push(Layer::dense_random(inputs, out, &mut rng).expect("static"))
            .expect("geometry");
        model.push(Layer::bias_zero(out)).expect("geometry");
        if relu {
            model
                .push(Layer::Activation(Activation::Relu))
                .expect("geometry");
        }
    }
    model
        .push(Layer::Activation(Activation::Softmax))
        .expect("geometry");
    ReducedNet {
        name: "CIFAR-10 small (reduced)",
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_mnist_shape_chain() {
        let net = reduced_mnist(1);
        let m = &net.model;
        assert_eq!(m.input_shape(), &[14, 14, 1]);
        assert_eq!(m.output_shape(), &[10]);
        // Still a genuine multi-thousand-parameter CNN.
        assert!(m.param_count() > 4_000, "{}", m.param_count());
    }

    #[test]
    fn reduced_cifar_shape_chain() {
        let net = reduced_cifar_small(1);
        assert_eq!(net.model.input_shape(), &[16, 16, 3]);
        assert_eq!(net.model.output_shape(), &[10]);
    }

    #[test]
    fn layer_type_sequence_matches_full_scale_mnist() {
        // The reduced twin must preserve the layer-kind sequence of the
        // paper network (that sequence is what MILR's planner sees).
        let full: Vec<&str> = crate::mnist(0)
            .model
            .layers()
            .iter()
            .map(|l| l.kind_name())
            .collect();
        let reduced: Vec<&str> = reduced_mnist(0)
            .model
            .layers()
            .iter()
            .map(|l| l.kind_name())
            .collect();
        assert_eq!(full, reduced);
    }

    #[test]
    fn serving_probe_shape_chain() {
        let m = serving_probe(7);
        assert_eq!(m.input_shape(), &[10, 10, 1]);
        assert_eq!(m.output_shape(), &[5]);
        // The load-bearing geometry: conv 0 at 8×8 output (fully
        // recoverable, 64 ≥ 9) and conv 4 at 2×2 (partial, 4 < 54).
        assert_eq!(m.layers()[0].kind_name(), "Conv2D");
        // 3×3 kernel, 1 input channel, 6 filters.
        assert_eq!(m.layers()[0].param_count(), 3 * 3 * 6);
        assert_eq!(m.layers()[4].kind_name(), "Conv2D");
        assert_eq!(m.layers()[4].param_count(), 3 * 3 * 6 * 4);
        let out = m
            .forward(&TensorRng::new(1).uniform_tensor(&[1, 10, 10, 1]))
            .unwrap();
        assert_eq!(out.shape().dims(), &[1, 5]);
    }

    #[test]
    fn reduced_nets_run_forward() {
        for (net, dims) in [
            (reduced_mnist(2).model, vec![2usize, 14, 14, 1]),
            (reduced_cifar_small(2).model, vec![2, 16, 16, 3]),
        ] {
            let batch = TensorRng::new(3).uniform_tensor(&dims);
            let out = net.forward(&batch).unwrap();
            assert_eq!(out.shape().dims(), &[2, 10]);
        }
    }
}
