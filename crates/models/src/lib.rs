//! # milr-models
//!
//! The three CNN architectures evaluated in the MILR paper, built
//! layer-for-layer from Tables I, II and III, plus reduced-scale twins
//! that preserve the exact layer-type sequence for fast tests and
//! default bench runs.
//!
//! Following the paper (§V-B/C/D), every convolution and dense layer is
//! followed by its own **bias layer** and a **ReLU activation layer** —
//! MILR treats bias as an independent layer with its own input/output/
//! parameter algebra (§IV-E) — and the network head is a softmax.
//!
//! Parameter counts match the paper's tables exactly (conv/dense + bias
//! pairs sum to the "Trainable" column); the unit tests in this crate
//! pin them.
//!
//! ```
//! let net = milr_models::mnist(42);
//! assert_eq!(net.model.param_count(), 1_669_290); // Σ Table I
//! ```

#![deny(missing_docs)]

mod build;
mod reduced;

pub use build::{cifar_large, cifar_small, mnist, trained_reduced, PaperNet};
pub use reduced::{reduced_cifar_small, reduced_mnist, serving_probe, ReducedNet};
