//! Deterministic multi-replica fault-campaign simulation.
//!
//! One single-threaded discrete-event loop drives N full replicas —
//! each a substrate-backed host paging against its own on-disk `.milr`
//! store — behind the fleet [`Router`], on a virtual clock. Every
//! source of nondeterminism is seeded (arrivals, inputs, the
//! per-replica fault campaign) or fixed ([`VirtualCosts`], the
//! peer-fetch cost), so a run is a pure function of
//! `(model, MilrConfig, FleetConfig)`: two runs with the same seed
//! produce byte-identical [`FleetReport`]s, outcome for outcome.
//!
//! ## The failure ladder
//!
//! * A **recoverable** fault (whole-weight corruption of a fully
//!   recoverable conv layer) rides the `milr-serve` path: flagged
//!   scrub → quarantine → failover → exact MILR heal → durable
//!   re-anchor → rejoin.
//! * A **beyond-capacity** fault (`heavy_faults`: a whole
//!   partial-recoverability conv layer corrupted at once) makes MILR's
//!   recovery come back min-norm — on a single instance that is the
//!   paper's accept-an-approximation cliff. Here the replica instead
//!   enters `Repairing`, fetches the affected layers' certified pages
//!   from a healthy peer, imports them bit-for-bit, re-verifies,
//!   re-protects, re-anchors, and rejoins serving the **exact** golden
//!   weights.
//!
//! Throughout both, the drain policy re-queues voided work onto the
//! fleet queue where healthy peers absorb it: no request is lost during
//! failover.

use crate::repair::PageImage;
use crate::repair::{apply_repair, fetch_certified};
use crate::replica::{Replica, ReplicaState};
use crate::report::{FleetReport, ReplicaReport};
use crate::router::Router;
use crate::FleetError;
use milr_core::{Milr, MilrConfig, SolvingPlan};
use milr_fault::{
    milli, plan_burst, plan_stuck_at, ChaosSpec, FaultRng, SkewSpec, StuckAtPlan, StuckAtSpec,
};
use milr_integrity::{PipelineReport, RoundOutcome, StageHook};
use milr_nn::{Layer, Sequential};
use milr_obs::{EventKind, Observer, SloEngine, SloKind, SloSpec, FLEET_SRC};
use milr_serve::sim::{EventQueue, VirtualCosts};
use milr_serve::{
    outcome_digest, CertificationLedger, ChaosStats, DowntimeLog, LatencyStats, QuarantinePolicy,
    RejectReason, RequestOutcome, RequestStatus, ScrubCursor, ServeReport,
};
use milr_store::{Store, StoreOptions};
use milr_substrate::SubstrateKind;
use milr_tensor::{Tensor, TensorRng};
use std::collections::{BTreeSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of one simulated fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Master seed for arrivals, inputs, and the fault campaign.
    pub seed: u64,
    /// Replicas in the fleet.
    pub replicas: usize,
    /// Substrate kind encoding every replica's weight pages.
    pub kind: SubstrateKind,
    /// Requests in the workload.
    pub requests: usize,
    /// Mean inter-arrival gap, nanoseconds (exponential arrivals).
    pub mean_arrival_ns: u64,
    /// Worker pool size per replica.
    pub workers_per_replica: usize,
    /// Fleet-level bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch.
    pub batch_max: usize,
    /// Per-replica scrubber cadence, nanoseconds between ticks.
    pub scrub_interval_ns: u64,
    /// Checkable layers examined per scrub tick.
    pub layers_per_tick: usize,
    /// What happens to a quarantined replica's queued/in-flight work.
    /// `Drain` re-queues it onto the fleet queue (peers absorb it);
    /// `Reject` completes it with errors. Arrivals are only rejected
    /// under `Reject` while **zero** replicas are serving.
    pub policy: QuarantinePolicy,
    /// Recoverable whole-weight faults, spread over the replicas.
    pub faults: usize,
    /// Beyond-MILR-capacity faults: each corrupts **every** weight of
    /// one partial-recoverability conv layer of one replica, forcing
    /// the peer-repair path.
    pub heavy_faults: usize,
    /// Virtual operation costs (shared with the single-instance sim).
    pub costs: VirtualCosts,
    /// Virtual cost of fetching + certifying one page from a peer.
    pub peer_page_ns: u64,
    /// Weights per on-disk page of every replica's store.
    pub page_weights: usize,
    /// Page-cache budget of each replica's file substrates.
    pub cache_pages: usize,
    /// Directory for the replica containers. `None` uses a private
    /// temp directory that is removed when the run finishes (the
    /// returned store paths then point at removed files); give a
    /// directory to inspect the containers afterwards.
    pub dir: Option<PathBuf>,
    /// Optional chaos campaign layered over the fault campaign:
    /// correlated bursts, stuck-at cells, torn writes at stage seams,
    /// byzantine donors during peer repair, and schedule skew. `None`
    /// — or a quiet [`ChaosSpec::default`] — is byte-identical to the
    /// legacy run.
    pub chaos: Option<ChaosSpec>,
    /// SLO suite override for the fleet-view engine (chaos campaigns
    /// declare their own objectives). `None` keeps
    /// [`SloEngine::fleet_defaults`]; per-replica engines always use
    /// [`SloEngine::serving_defaults`].
    pub slo_specs: Option<Vec<SloSpec>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0xF1EE7,
            replicas: 3,
            kind: SubstrateKind::Secded,
            requests: 150,
            mean_arrival_ns: 400_000,
            workers_per_replica: 2,
            queue_capacity: 512,
            batch_max: 8,
            scrub_interval_ns: 4_000_000,
            layers_per_tick: 2,
            policy: QuarantinePolicy::Drain,
            faults: 2,
            heavy_faults: 0,
            costs: VirtualCosts::default(),
            peer_page_ns: 2_000_000,
            page_weights: 64,
            cache_pages: 16,
            dir: None,
            chaos: None,
            slo_specs: None,
        }
    }
}

/// Everything a simulated fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetSimResult {
    /// Aggregated counters, three ways (fleet / capacity / per-replica).
    pub report: FleetReport,
    /// Every request's terminal state, by submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// The replica container paths, by replica index (still on disk
    /// only when [`FleetConfig::dir`] was given).
    pub store_paths: Vec<PathBuf>,
    /// Chaos-injection tallies summed over the fleet; `None` when the
    /// run had no active [`FleetConfig::chaos`] spec. Byzantine
    /// donations live in the report's `rejected_donations` counters.
    pub chaos: Option<ChaosStats>,
}

#[derive(Debug)]
enum Event {
    Arrival(usize),
    WorkerDone {
        replica: usize,
        worker: usize,
    },
    ScrubTick {
        replica: usize,
        epoch: u64,
    },
    Fault {
        replica: usize,
        layer: usize,
        weight: usize,
    },
    HeavyFault {
        replica: usize,
        layer: usize,
    },
    RecoveryDone {
        replica: usize,
        epoch: u64,
    },
    RepairDone {
        replica: usize,
        epoch: u64,
    },
    ChaosBurst {
        replica: usize,
    },
}

struct Req {
    input: Tensor,
    arrival: u64,
    resolved: Option<(u64, RequestStatus)>,
}

struct Batch {
    reqs: Vec<usize>,
    outputs: Vec<Tensor>,
    epoch: u64,
}

/// Removes the run's private temp directory on every exit path (the
/// replica containers are multi-megabyte; error returns must not
/// strand them). Declared before the replicas so their store handles
/// close first.
struct DirCleanup {
    dir: PathBuf,
    enabled: bool,
}

impl Drop for DirCleanup {
    fn drop(&mut self) {
        if self.enabled {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

/// Per-replica simulation state around the [`Replica`] itself.
struct Rep {
    replica: Replica,
    cursor: ScrubCursor,
    ledger: CertificationLedger<Batch>,
    workers: Vec<Option<Batch>>,
    epoch: u64,
    repair_attempts: u32,
    /// Irrecoverable layers awaiting peer repair.
    pending_repair: Vec<usize>,
    /// Donors whose donation to *this* replica was corrupted by the
    /// byzantine campaign and rejected — skipped on every later donor
    /// pick, so a retry reaches an honest peer instead of refetching
    /// the same poisoned pages forever.
    distrusted: BTreeSet<usize>,
    downtime: DowntimeLog,
    last_fault_time: u64,
    last_clean_cycle: Option<u64>,
    // Counters (healing/scrub counters live in the replica's engine).
    dispatched: usize,
    completed: usize,
    rejected: usize,
    reexecuted: usize,
    faults_injected: usize,
    scrub_ticks: usize,
    quarantines: usize,
    batches: usize,
    full_batches: usize,
    batched_requests: usize,
    peer_repairs: usize,
    repair_pages: usize,
    repair_bytes: usize,
    repairs_donated: usize,
    rejected_donations: usize,
    /// Chaos injections (bursts, stuck re-asserts, torn writes) that
    /// landed on this replica — they gate certification exactly like
    /// campaign faults.
    chaos_injected: usize,
    /// Torn-write firings already folded into the chaos tallies.
    torn_seen: u64,
    latencies: Vec<u64>,
}

/// Flips one contiguous run of `flips` bits in a donated page image —
/// the byzantine donor's in-flight corruption. A run (rather than
/// scattered bits) guarantees some codeword takes a multi-bit error,
/// so ECC substrates cannot silently correct the corruption away
/// before the apply-side verification sees it.
fn corrupt_image(img: &mut PageImage, flips: usize, rng: &mut FaultRng) {
    let nbits = img.bytes.len() * 8;
    if nbits == 0 {
        return;
    }
    let flips = flips.clamp(1, nbits);
    let start = rng.below(nbits - flips + 1);
    for bit in start..start + flips {
        img.bytes[bit / 8] ^= 1 << (bit % 8);
    }
}

/// Distinguishes concurrently running simulations' temp directories.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Runs one deterministic fleet simulation.
///
/// # Errors
///
/// Propagates MILR protection/detection/recovery failures and replica
/// store I/O errors, and returns [`FleetError::NoHealthyPeer`] when a
/// repairing replica exhausts its donor retries — a campaign that takes
/// every replica's copy of a layer beyond repair at once, which
/// replication cannot fix.
///
/// # Panics
///
/// Panics on zero-sized pools/queues/batches/fleets, when the model
/// lacks layers eligible for the requested fault kinds, when MILR
/// recovery fails to converge within its retry budget, or if the event
/// budget is exhausted.
pub fn simulate(
    golden: &Sequential,
    milr_config: MilrConfig,
    cfg: &FleetConfig,
) -> Result<FleetSimResult, FleetError> {
    simulate_observed(golden, milr_config, cfg, &Observer::default())
}

/// [`simulate`] with an [`Observer`] attached: trace events are
/// stamped with the virtual clock (so a fixed seed reproduces the
/// stream byte-for-byte) and sourced by replica index
/// ([`milr_obs::FLEET_SRC`] is reserved for future router-level
/// events). The observer changes nothing about the run: reports and
/// digests are identical with or without it.
///
/// # Errors
///
/// As [`simulate`].
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_observed(
    golden: &Sequential,
    milr_config: MilrConfig,
    cfg: &FleetConfig,
    obs: &Observer,
) -> Result<FleetSimResult, FleetError> {
    assert!(cfg.replicas > 0, "need at least one replica");
    assert!(cfg.workers_per_replica > 0, "need at least one worker");
    assert!(cfg.queue_capacity > 0, "need a non-empty queue");
    assert!(cfg.batch_max > 0, "need a non-empty batch");
    assert!(cfg.requests > 0, "need a workload");

    // ---------------------------------------------------------- fleet
    let milr = Milr::protect(golden, milr_config)?;
    let checkable = milr.checkable_layers();
    let (dir, private_dir) = match &cfg.dir {
        Some(dir) => (dir.clone(), false),
        None => {
            let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("milr-fleet-sim-{}-{seq}", std::process::id()));
            (dir, true)
        }
    };
    std::fs::create_dir_all(&dir).map_err(milr_store::StoreError::Io)?;
    let _cleanup = DirCleanup {
        dir: dir.clone(),
        enabled: private_dir,
    };
    let mut store_paths = Vec::with_capacity(cfg.replicas);
    let mut reps: Vec<Rep> = Vec::with_capacity(cfg.replicas);
    for r in 0..cfg.replicas {
        let path = dir.join(format!("replica-{r}.milr"));
        Store::create_protected(
            &path,
            golden,
            &milr,
            StoreOptions {
                kind: cfg.kind,
                page_weights: cfg.page_weights,
            },
        )?;
        // Cold → Serving through the full scrub-on-load admission path.
        let (mut replica, _) = Replica::cold_start(r, &path, cfg.cache_pages)?;
        if let Some(trace) = &obs.trace {
            replica.attach_trace(trace.clone());
        }
        if let Some(spans) = &obs.spans {
            replica.attach_spans(spans.clone());
        }
        store_paths.push(path);
        reps.push(Rep {
            replica,
            cursor: ScrubCursor::new(checkable.clone(), cfg.layers_per_tick),
            ledger: CertificationLedger::default(),
            workers: (0..cfg.workers_per_replica).map(|_| None).collect(),
            epoch: 0,
            repair_attempts: 0,
            pending_repair: Vec::new(),
            distrusted: BTreeSet::new(),
            downtime: DowntimeLog::default(),
            last_fault_time: 0,
            last_clean_cycle: None,
            dispatched: 0,
            completed: 0,
            rejected: 0,
            reexecuted: 0,
            faults_injected: 0,
            scrub_ticks: 0,
            quarantines: 0,
            batches: 0,
            full_batches: 0,
            batched_requests: 0,
            peer_repairs: 0,
            repair_pages: 0,
            repair_bytes: 0,
            repairs_donated: 0,
            rejected_donations: 0,
            chaos_injected: 0,
            torn_seen: 0,
            latencies: Vec::new(),
        });
    }

    // -------------------------------------------------------- chaos
    // A quiet spec is indistinguishable from no spec: every chaos
    // branch below is gated on this binding, so legacy runs stay
    // byte-identical.
    let chaos = cfg.chaos.as_ref().filter(|c| !c.is_quiet());
    let skew = chaos.and_then(|c| c.skew.clone());
    let scrub_interval_ns = match &skew {
        Some(sk) => SkewSpec::scale(cfg.scrub_interval_ns, sk.scrub_milli),
        None => cfg.scrub_interval_ns,
    };
    let byz = chaos.and_then(|c| c.byzantine.clone());
    let mut byz_rng = FaultRng::seed(cfg.seed ^ 0xB12A);

    // Torn writes: every replica gets its own seeded hook with its own
    // fire budget; the shared counters let the event loop fold firings
    // into the chaos tallies with the virtual clock in hand.
    let torn_fired: Vec<Arc<AtomicU64>> = (0..cfg.replicas)
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    if let Some(tw) = chaos.and_then(|c| c.torn_write.clone()) {
        for (r, rep) in reps.iter_mut().enumerate() {
            let store = rep.replica.host().store().clone();
            let fired = Arc::clone(&torn_fired[r]);
            let mut torn_rng = FaultRng::seed(cfg.seed ^ 0x70A2 ^ r as u64);
            let tw = tw.clone();
            let mut remaining = tw.fires;
            rep.replica.attach_stage_hook(StageHook::new(move |stage| {
                if remaining > 0 && stage.eq_ignore_ascii_case(&tw.stage) {
                    remaining -= 1;
                    let raw = store.raw_bits();
                    for _ in 0..tw.flips {
                        store.flip_raw_bit(torn_rng.below(raw));
                    }
                    fired.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
    }

    // ------------------------------------------------------- workload
    let mut input_rng = TensorRng::new(cfg.seed ^ 0x1A7E57);
    let mut arrival_rng = FaultRng::seed(cfg.seed ^ 0xA441);
    let mut reqs: Vec<Req> = Vec::with_capacity(cfg.requests);
    let mut t = 0u64;
    for _ in 0..cfg.requests {
        let gap = -arrival_rng.unit().max(f64::MIN_POSITIVE).ln() * cfg.mean_arrival_ns as f64;
        let mut gap_ns = (gap as u64).max(1);
        if let Some(sk) = &skew {
            gap_ns = SkewSpec::scale(gap_ns, sk.arrival_milli);
        }
        t += gap_ns;
        reqs.push(Req {
            input: input_rng.uniform_tensor(golden.input_shape()),
            arrival: t,
            resolved: None,
        });
    }
    let horizon = t;

    // -------------------------------------------------- fault campaign
    let full_layers: Vec<usize> = golden
        .layers()
        .iter()
        .enumerate()
        .filter(|(i, l)| {
            matches!(l, Layer::Conv2D { .. })
                && milr.plan().layers[*i].solving == Some(SolvingPlan::ConvFull)
        })
        .map(|(i, _)| i)
        .collect();
    let partial_layers: Vec<usize> = golden
        .layers()
        .iter()
        .enumerate()
        .filter(|(i, l)| {
            matches!(l, Layer::Conv2D { .. })
                && milr.plan().layers[*i].solving == Some(SolvingPlan::ConvPartial)
        })
        .map(|(i, _)| i)
        .collect();
    assert!(
        cfg.faults == 0 || !full_layers.is_empty(),
        "no fully recoverable conv layer to fault"
    );
    assert!(
        cfg.heavy_faults == 0 || !partial_layers.is_empty(),
        "no partial-recoverability conv layer for heavy faults"
    );
    let mut fault_rng = FaultRng::seed(cfg.seed ^ 0xFA117);
    let mut timeline: EventQueue<Event> = EventQueue::new();
    for (i, r) in reqs.iter().enumerate() {
        timeline.schedule(r.arrival, Event::Arrival(i));
    }
    for _ in 0..cfg.faults {
        let time = horizon / 10 + (fault_rng.unit() * 0.8 * horizon as f64) as u64;
        let replica = fault_rng.below(cfg.replicas);
        let layer = full_layers[fault_rng.below(full_layers.len())];
        let weight = fault_rng.below(reps[replica].replica.host().layer_weight_count(layer));
        timeline.schedule(
            time,
            Event::Fault {
                replica,
                layer,
                weight,
            },
        );
    }
    for _ in 0..cfg.heavy_faults {
        let time = horizon / 10 + (fault_rng.unit() * 0.8 * horizon as f64) as u64;
        let replica = fault_rng.below(cfg.replicas);
        let layer = partial_layers[fault_rng.below(partial_layers.len())];
        timeline.schedule(time, Event::HeavyFault { replica, layer });
    }
    for r in 0..cfg.replicas {
        timeline.schedule(
            scrub_interval_ns,
            Event::ScrubTick {
                replica: r,
                epoch: 0,
            },
        );
    }

    // Chaos planning rides its own RNG stream so enabling a regime
    // never perturbs the fault/arrival draws above.
    let mut chaos_rng = FaultRng::seed(cfg.seed ^ 0xC4A05);
    let burst_spec = chaos.and_then(|c| c.bursts.clone());
    if let Some(b) = &burst_spec {
        let mut times: Vec<(u64, usize)> = (0..b.bursts)
            .map(|_| {
                let time = horizon / 10 + (chaos_rng.unit() * 0.8 * horizon as f64) as u64;
                (time, chaos_rng.below(cfg.replicas))
            })
            .collect();
        times.sort_unstable();
        for (time, replica) in times {
            timeline.schedule(time, Event::ChaosBurst { replica });
        }
    }
    let stuck: Option<(usize, StuckAtSpec, StuckAtPlan)> =
        chaos.and_then(|c| c.stuck_at.clone()).map(|spec| {
            let replica = chaos_rng.below(cfg.replicas);
            let raw_bits = reps[replica].replica.host().store().raw_bits();
            let plan = plan_stuck_at(raw_bits, spec.bits, &mut chaos_rng);
            (replica, spec, plan)
        });
    let chaos_active = chaos.is_some();
    let mut chaos_stats = ChaosStats::default();

    // ---------------------------------------------------- event loop
    let mut clock = 0u64;
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut router = Router::new(cfg.replicas);
    let mut fleet_down = DowntimeLog::default();
    let mut resolved = 0usize;
    let mut resolved_by: Vec<Option<usize>> = vec![None; cfg.requests];
    let mut fleet_rejected = 0usize;
    let mut fleet_completed = 0usize;
    let mut fleet_latencies: Vec<u64> = Vec::new();

    // SLO engines run unconditionally over the deterministic run
    // streams, so the embedded verdicts are identical with or without
    // an observer; only `AlertFired` trace emission is observer-gated.
    // One fleet-view engine (alerts sourced `FLEET_SRC`) plus one
    // serving-view engine per replica (alerts sourced by index).
    let mut fleet_slo = match &cfg.slo_specs {
        Some(specs) => SloEngine::new(specs.clone()),
        None => SloEngine::fleet_defaults(),
    };
    let mut rep_slo: Vec<SloEngine> = (0..cfg.replicas)
        .map(|_| SloEngine::serving_defaults())
        .collect();
    let mut fleet_avail_mark = 0u64;
    let mut fleet_serving = true;
    let mut rep_avail_mark = vec![0u64; cfg.replicas];

    // Pre-registered observability handles: recording below is atomic
    // ops on these, never a registry lookup inside the event loop.
    let m = obs.metrics.as_deref();
    let lat_hist = m.map(|m| m.histogram("serve_latency_ns"));
    let wait_hist = m.map(|m| m.histogram("serve_batch_wait_ns"));
    let occ_hist = m.map(|m| m.histogram("serve_batch_occupancy"));
    let queue_gauge = m.map(|m| m.gauge("serve_queue_depth"));
    let faults_ctr = m.map(|m| m.counter("serve_faults_injected_total"));
    let quarantine_ctr = m.map(|m| m.counter("serve_quarantines_total"));
    let failover_ctr = m.map(|m| m.counter("fleet_failovers_total"));
    let repair_ctr = m.map(|m| m.counter("fleet_peer_repairs_total"));

    macro_rules! emit {
        ($src:expr, $kind:expr) => {
            if let Some(trace) = &obs.trace {
                trace.emit(clock, $src, $kind);
            }
        };
    }

    macro_rules! slo_alerts {
        ($src:expr, $alerts:expr) => {
            for a in $alerts {
                emit!(
                    $src,
                    EventKind::AlertFired {
                        slo: a.spec,
                        burn_milli: a.burn_milli,
                    }
                );
            }
        };
    }

    macro_rules! resolve {
        ($idx:expr, $status:expr, $by:expr) => {{
            let idx: usize = $idx;
            debug_assert!(reqs[idx].resolved.is_none());
            let status = $status;
            let by: Option<usize> = $by;
            match &status {
                RequestStatus::Completed(_) => {
                    fleet_completed += 1;
                    let lat = clock.saturating_sub(reqs[idx].arrival);
                    fleet_latencies.push(lat);
                    if let Some(h) = &lat_hist {
                        h.record(lat);
                    }
                    if let Some(r) = by {
                        reps[r].completed += 1;
                        reps[r].latencies.push(lat);
                        slo_alerts!(r as u32, rep_slo[r].observe_latency(clock, lat));
                    }
                    slo_alerts!(FLEET_SRC, fleet_slo.observe_latency(clock, lat));
                }
                RequestStatus::Rejected(_) => {
                    fleet_rejected += 1;
                    if let Some(r) = by {
                        reps[r].rejected += 1;
                    }
                }
            }
            resolved_by[idx] = by;
            reqs[idx].resolved = Some((clock, status));
            resolved += 1;
        }};
    }

    macro_rules! try_dispatch {
        () => {
            while !queue.is_empty() {
                let eligible: Vec<bool> = reps
                    .iter()
                    .map(|rep| {
                        rep.replica.state().is_serving() && rep.workers.iter().any(Option::is_none)
                    })
                    .collect();
                let Some(r) = router.route(&eligible) else {
                    break;
                };
                let worker = reps[r]
                    .workers
                    .iter()
                    .position(Option::is_none)
                    .expect("eligibility implies a free worker");
                let n = queue.len().min(cfg.batch_max);
                let batch_reqs: Vec<usize> = queue.drain(..n).collect();
                let inputs: Vec<Tensor> =
                    batch_reqs.iter().map(|&i| reqs[i].input.clone()).collect();
                // Fused decode-forward: each shard decodes through the
                // host's epoch-tagged cache, so the expensive per-batch
                // whole-model decode (an AES-XTS decrypt of every shard
                // on the encrypted substrates) happens only after a
                // simulator-visible data change — fault injection, scrub
                // correction, heal write-back, or peer import — bumps
                // the affected shard's epoch.
                let outputs = reps[r]
                    .replica
                    .host()
                    .forward_batch(&inputs)
                    .expect("batch inputs validated at submission");
                reps[r].dispatched += batch_reqs.len();
                reps[r].batches += 1;
                reps[r].batched_requests += n;
                if n == cfg.batch_max {
                    reps[r].full_batches += 1;
                }
                if let Some(h) = &occ_hist {
                    h.record(n as u64);
                }
                if let Some(h) = &wait_hist {
                    for &i in &batch_reqs {
                        h.record(clock.saturating_sub(reqs[i].arrival));
                    }
                }
                emit!(
                    r as u32,
                    EventKind::BatchDispatched {
                        occupancy: n as u32
                    }
                );
                if let Some(g) = &queue_gauge {
                    g.set(queue.len() as i64);
                }
                reps[r].workers[worker] = Some(Batch {
                    reqs: batch_reqs,
                    outputs,
                    epoch: reps[r].epoch,
                });
                let done = clock + cfg.costs.batch_ns(n);
                timeline.schedule(done, Event::WorkerDone { replica: r, worker });
            }
        };
    }

    /// Requests going back to the head of the fleet queue after
    /// invalidation, ahead of everything that arrived later — this is
    /// the failover hand-off: peers pick them up on the next dispatch.
    macro_rules! requeue {
        ($r:expr, $ids:expr) => {{
            let mut ids: Vec<usize> = $ids;
            ids.sort_unstable();
            reps[$r].reexecuted += ids.len();
            for idx in ids.into_iter().rev() {
                queue.push_front(idx);
            }
            if let Some(g) = &queue_gauge {
                g.set(queue.len() as i64);
            }
        }};
    }

    macro_rules! update_fleet_gate {
        () => {{
            let any = reps.iter().any(|rep| rep.replica.state().is_serving());
            if any {
                fleet_down.close_at(clock);
            } else {
                fleet_down.open_at(clock);
            }
            // Each serving/down flip closes one fleet-availability
            // segment and feeds it into the burn-rate windows.
            if any != fleet_serving {
                let seg = clock.saturating_sub(fleet_avail_mark);
                fleet_avail_mark = clock;
                let (good, bad) = if fleet_serving { (seg, 0) } else { (0, seg) };
                slo_alerts!(
                    FLEET_SRC,
                    fleet_slo.observe(clock, SloKind::Availability, good, bad)
                );
                fleet_serving = any;
            }
        }};
    }

    /// Folds any torn-write firings on replica `$r` (they happen inside
    /// `tick`/`try_heal`/`apply_repair` calls, where the virtual clock
    /// is not in scope) into the chaos tallies and certification gate.
    macro_rules! torn_sync {
        ($r:expr) => {{
            let r: usize = $r;
            let fired = torn_fired[r].load(Ordering::Relaxed);
            if fired > reps[r].torn_seen {
                chaos_stats.torn_fires += fired - reps[r].torn_seen;
                reps[r].torn_seen = fired;
                reps[r].chaos_injected += 1;
                reps[r].last_fault_time = clock;
            }
        }};
    }

    macro_rules! rejoin {
        ($r:expr) => {{
            let r: usize = $r;
            // Chaos campaigns quarantine the same replica repeatedly
            // (stuck cells, repeated bursts); each episode deserves a
            // fresh heal-round budget. Legacy runs keep the cumulative
            // budget untouched.
            if chaos_active {
                reps[r].replica.reset_heal_budget();
            }
            reps[r].replica.set_state(ReplicaState::Serving);
            emit!(r as u32, EventKind::Quarantine { entered: false });
            reps[r].downtime.close_at(clock);
            let down = clock.saturating_sub(rep_avail_mark[r]);
            rep_avail_mark[r] = clock;
            slo_alerts!(
                r as u32,
                rep_slo[r].observe(clock, SloKind::Availability, 0, down)
            );
            update_fleet_gate!();
            reps[r].cursor.reset();
            reps[r].pending_repair.clear();
            let epoch = reps[r].epoch;
            timeline.schedule(
                clock + scrub_interval_ns,
                Event::ScrubTick { replica: r, epoch },
            );
            try_dispatch!();
        }};
    }

    let mut events = 0u64;
    while let Some((time, event)) = timeline.pop() {
        events += 1;
        assert!(events < 50_000_000, "fleet event budget exhausted");
        debug_assert!(time >= clock, "virtual time must be monotone");
        clock = time;
        match event {
            Event::Arrival(idx) => {
                let any_serving = reps.iter().any(|rep| rep.replica.state().is_serving());
                if cfg.policy == QuarantinePolicy::Reject && !any_serving {
                    resolve!(
                        idx,
                        RequestStatus::Rejected(RejectReason::Quarantined),
                        None
                    );
                } else if queue.len() >= cfg.queue_capacity {
                    resolve!(idx, RequestStatus::Rejected(RejectReason::QueueFull), None);
                } else {
                    queue.push_back(idx);
                    if let Some(g) = &queue_gauge {
                        g.set(queue.len() as i64);
                    }
                    try_dispatch!();
                }
            }
            Event::WorkerDone { replica: r, worker } => {
                let batch = reps[r].workers[worker].take().expect("worker was busy");
                if batch.epoch != reps[r].epoch {
                    // Dispatched before a quarantine: outputs suspect.
                    match cfg.policy {
                        QuarantinePolicy::Drain => requeue!(r, batch.reqs),
                        QuarantinePolicy::Reject => {
                            for idx in batch.reqs {
                                resolve!(
                                    idx,
                                    RequestStatus::Rejected(RejectReason::Quarantined),
                                    Some(r)
                                );
                            }
                        }
                    }
                } else {
                    reps[r].ledger.record(clock, batch);
                }
                try_dispatch!();
            }
            Event::Fault {
                replica: r,
                layer,
                weight,
            } => {
                reps[r].replica.host().corrupt_weight(layer, weight);
                reps[r].faults_injected += 1;
                reps[r].last_fault_time = clock;
                if let Some(c) = &faults_ctr {
                    c.inc();
                }
                emit!(
                    r as u32,
                    EventKind::FaultInjected {
                        layer: layer as u32,
                        weight: weight as u64,
                    }
                );
            }
            Event::HeavyFault { replica: r, layer } => {
                reps[r].replica.host().corrupt_layer(layer);
                reps[r].faults_injected += 1;
                reps[r].last_fault_time = clock;
                if let Some(c) = &faults_ctr {
                    c.inc();
                }
                // A whole-layer corruption has no single weight index:
                // `u64::MAX` marks the beyond-capacity campaign.
                emit!(
                    r as u32,
                    EventKind::FaultInjected {
                        layer: layer as u32,
                        weight: u64::MAX,
                    }
                );
            }
            Event::ScrubTick { replica: r, epoch } => {
                if epoch != reps[r].epoch || !reps[r].replica.state().is_serving() {
                    continue; // stale tick from before a quarantine
                }
                // Stuck cells re-assert just before the scrubber looks:
                // only cells the previous corrections flipped back are
                // touched (a blind re-flip would heal them instead).
                if let Some((sr, spec, plan)) = &stuck {
                    if *sr == r && spec.active(clock, horizon) {
                        let store = reps[r].replica.host().store().clone();
                        let mut asserted = 0usize;
                        for &(bit, value) in &plan.cells {
                            if store.raw_bit(bit) != value {
                                store.flip_raw_bit(bit);
                                asserted += 1;
                            }
                        }
                        if asserted > 0 {
                            chaos_stats.stuck_asserts += asserted;
                            reps[r].chaos_injected += 1;
                            reps[r].last_fault_time = clock;
                            if let Some(c) = &faults_ctr {
                                c.inc();
                            }
                        }
                    }
                }
                reps[r].scrub_ticks += 1;
                let chunk = reps[r].cursor.begin_tick(clock);
                reps[r].replica.set_now(clock);
                let tick = reps[r].replica.tick(&chunk)?;
                torn_sync!(r);
                let flagged = !tick.detection.is_clean();
                if let Some(cycle_start) = reps[r].cursor.finish_tick(flagged, clock) {
                    reps[r].last_clean_cycle = Some(cycle_start);
                    for batch in reps[r].ledger.certify_before(cycle_start) {
                        for (idx, out) in batch.reqs.into_iter().zip(batch.outputs) {
                            resolve!(idx, RequestStatus::Completed(out), Some(r));
                        }
                    }
                }
                if flagged {
                    // Quarantine: void uncertified work, fail traffic
                    // over to the peers, schedule recovery.
                    reps[r].quarantines += 1;
                    reps[r].replica.set_state(ReplicaState::Quarantined);
                    reps[r].epoch += 1;
                    reps[r].downtime.open_at(clock);
                    let up = clock.saturating_sub(rep_avail_mark[r]);
                    rep_avail_mark[r] = clock;
                    slo_alerts!(
                        r as u32,
                        rep_slo[r].observe(clock, SloKind::Availability, up, 0)
                    );
                    update_fleet_gate!();
                    if let Some(c) = &quarantine_ctr {
                        c.inc();
                    }
                    emit!(r as u32, EventKind::Quarantine { entered: true });
                    // Router failover: peers keep taking the traffic
                    // this replica just dropped.
                    if reps.iter().any(|rep| rep.replica.state().is_serving()) {
                        if let Some(c) = &failover_ctr {
                            c.inc();
                        }
                    }
                    let voided = reps[r].ledger.invalidate();
                    match cfg.policy {
                        QuarantinePolicy::Drain => {
                            requeue!(r, voided.into_iter().flat_map(|b| b.reqs).collect());
                        }
                        QuarantinePolicy::Reject => {
                            for batch in voided {
                                for idx in batch.reqs {
                                    resolve!(
                                        idx,
                                        RequestStatus::Rejected(RejectReason::Quarantined),
                                        Some(r)
                                    );
                                }
                            }
                        }
                    }
                    let recovery_cost =
                        cfg.costs.full_detect_ns(checkable.len()) + cfg.costs.recover_ns;
                    let next_epoch = reps[r].epoch;
                    timeline.schedule(
                        clock + recovery_cost,
                        Event::RecoveryDone {
                            replica: r,
                            epoch: next_epoch,
                        },
                    );
                    try_dispatch!();
                } else {
                    timeline.schedule(
                        clock + scrub_interval_ns,
                        Event::ScrubTick { replica: r, epoch },
                    );
                }
            }
            Event::RecoveryDone { replica: r, epoch } => {
                if epoch != reps[r].epoch || reps[r].replica.state() != ReplicaState::Quarantined {
                    continue;
                }
                // One heal round of the replica's engine: exact heals
                // are written back and journal-flushed, min-norm /
                // failed layers escalate to peer repair, and a clean
                // verify re-protects + re-anchors durably.
                reps[r].replica.set_now(clock);
                let heals_before = {
                    let p = reps[r].replica.pipeline_report();
                    (p.heals_exact, p.heals_approx)
                };
                let round = reps[r].replica.try_heal()?;
                torn_sync!(r);
                let (exact, approx) = {
                    let p = reps[r].replica.pipeline_report();
                    (
                        (p.heals_exact - heals_before.0) as u64,
                        (p.heals_approx - heals_before.1) as u64,
                    )
                };
                if exact + approx > 0 {
                    slo_alerts!(
                        r as u32,
                        rep_slo[r].observe(clock, SloKind::HealExactness, exact, approx)
                    );
                    slo_alerts!(
                        FLEET_SRC,
                        fleet_slo.observe(clock, SloKind::HealExactness, exact, approx)
                    );
                }
                match round {
                    RoundOutcome::Clean { .. } => rejoin!(r),
                    RoundOutcome::Escalate { escalated, .. } => {
                        // Beyond MILR's recoverable set: fetch the
                        // layers from a healthy peer instead of serving
                        // the min-norm approximation.
                        reps[r].replica.set_state(ReplicaState::Repairing);
                        reps[r].repair_attempts = 0;
                        let pages: usize = escalated
                            .iter()
                            .map(|&l| reps[r].replica.store().layer_page_count(l))
                            .sum();
                        reps[r].pending_repair = escalated;
                        timeline.schedule(
                            clock + pages as u64 * cfg.peer_page_ns + cfg.costs.recover_ns,
                            Event::RepairDone { replica: r, epoch },
                        );
                    }
                    RoundOutcome::Retry { flagged } => {
                        assert!(
                            !reps[r].replica.heal_budget_exhausted(),
                            "replica {r} recovery failed to converge: {flagged:?}"
                        );
                        timeline.schedule(
                            clock + cfg.costs.recover_ns,
                            Event::RecoveryDone { replica: r, epoch },
                        );
                    }
                    outcome @ RoundOutcome::GaveUp { .. } => {
                        unreachable!("peer-repair policy never gives up: {outcome:?}")
                    }
                }
            }
            Event::RepairDone { replica: r, epoch } => {
                if epoch != reps[r].epoch || reps[r].replica.state() != ReplicaState::Repairing {
                    continue;
                }
                // Deterministic donor choice: the lowest-index serving
                // peer whose pages certify — skipping donors this
                // replica already caught shipping corrupted pages.
                let layers = reps[r].pending_repair.clone();
                let mut fetched = None;
                for (p, rep) in reps.iter().enumerate() {
                    if p == r
                        || !rep.replica.state().is_serving()
                        || reps[r].distrusted.contains(&p)
                    {
                        continue;
                    }
                    if let Ok(images) = fetch_certified(rep.replica.store(), &layers) {
                        fetched = Some((p, images));
                        break;
                    }
                }
                let Some((donor, mut images)) = fetched else {
                    // No healthy donor right now (peers quarantined or
                    // their disks dirty): wait a scrub interval and
                    // retry. A campaign that takes every replica's copy
                    // of a layer beyond repair exhausts the budget —
                    // replication cannot help then, and the run reports
                    // it rather than serving an approximation.
                    reps[r].repair_attempts += 1;
                    if reps[r].repair_attempts as usize
                        >= reps[r].replica.budget().max_donor_retries
                    {
                        return Err(FleetError::NoHealthyPeer { replica: r, layers });
                    }
                    timeline.schedule(
                        clock + scrub_interval_ns,
                        Event::RepairDone { replica: r, epoch },
                    );
                    continue;
                };
                // Byzantine donors corrupt the pages in flight — after
                // their own store certified them, so the fetch-side
                // check cannot see it. The flips are one contiguous run
                // per page image: coded substrates (SECDED) silently
                // correct isolated single-bit flips, and a donation the
                // ECC can launder back to golden is not an attack the
                // apply-side check should be expected to flag.
                let byzantine_donation = byz.as_ref().is_some_and(|b| b.donors.contains(&donor));
                if let Some(b) = byz.as_ref().filter(|_| byzantine_donation) {
                    for img in images.iter_mut() {
                        corrupt_image(img, b.flips, &mut byz_rng);
                    }
                }
                // The fetch itself is repair traffic, whether or not
                // this episode's verification succeeds (a rejected
                // import still moved — and applied — the donor's
                // pages), so account it here.
                reps[donor].repairs_donated += 1;
                reps[r].repair_pages += images.len();
                reps[r].repair_bytes += images.iter().map(|i| i.bytes.len()).sum::<usize>();
                emit!(
                    r as u32,
                    EventKind::PeerRepair {
                        donor: donor as u32
                    }
                );
                reps[r].replica.set_now(clock);
                let applied = apply_repair(&mut reps[r].replica, &images);
                torn_sync!(r);
                match applied {
                    Ok(_stats) => {
                        reps[r].peer_repairs += 1;
                        if let Some(c) = &repair_ctr {
                            c.inc();
                        }
                        // apply_repair already re-anchored durably.
                        rejoin!(r);
                    }
                    Err(FleetError::RepairRejected { .. }) => {
                        // The post-import verification caught bad pages:
                        // either a byzantine donation or new damage that
                        // landed mid-repair. Count the rejection, stop
                        // trusting a donor that was actually byzantine
                        // (re-fetching its poisoned pages can never
                        // converge), and go back through the
                        // heal-classify-repair ladder with a fresh
                        // round budget.
                        reps[r].rejected_donations += 1;
                        if byzantine_donation {
                            reps[r].distrusted.insert(donor);
                        }
                        reps[r].replica.set_state(ReplicaState::Quarantined);
                        reps[r].replica.reset_heal_budget();
                        timeline.schedule(
                            clock + cfg.costs.recover_ns,
                            Event::RecoveryDone { replica: r, epoch },
                        );
                    }
                    Err(other) => return Err(other),
                }
            }
            Event::ChaosBurst { replica: r } => {
                // A correlated burst over the victim replica's raw
                // image, planned on the fly so burst shapes depend on
                // the chaos RNG stream alone. Bursts land regardless of
                // health state — hammering a quarantined replica
                // mid-heal is exactly the nasty case.
                if let Some(spec) = &burst_spec {
                    let store = reps[r].replica.host().store().clone();
                    let bits = plan_burst(
                        store.raw_geometry(),
                        store.raw_bits(),
                        spec.pattern,
                        milli(spec.flip_prob_milli),
                        &mut chaos_rng,
                    );
                    for &bit in &bits {
                        store.flip_raw_bit(bit);
                    }
                    chaos_stats.bursts_fired += 1;
                    chaos_stats.burst_bits += bits.len();
                    if !bits.is_empty() {
                        reps[r].chaos_injected += 1;
                        reps[r].last_fault_time = clock;
                        if let Some(c) = &faults_ctr {
                            c.inc();
                        }
                        emit!(
                            r as u32,
                            EventKind::FaultInjected {
                                layer: u32::MAX,
                                weight: bits.len() as u64,
                            }
                        );
                    }
                }
            }
        }
        let all_serving = reps.iter().all(|rep| rep.replica.state().is_serving());
        let all_certified = reps.iter().all(|rep| {
            rep.faults_injected + rep.chaos_injected == 0
                || rep
                    .last_clean_cycle
                    .map(|c| c > rep.last_fault_time)
                    .unwrap_or(false)
        });
        if resolved == cfg.requests && all_serving && all_certified {
            break;
        }
    }
    assert_eq!(resolved, cfg.requests, "workload did not drain");

    // ---------------------------------------------------- reporting
    let total_ns = clock;
    let outcomes: Vec<RequestOutcome> = reqs
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let (resolved_ns, status) = r.resolved.expect("all requests resolved");
            RequestOutcome {
                id: i as u64,
                input: r.input,
                status,
                arrival_ns: r.arrival,
                resolved_ns,
            }
        })
        .collect();
    // Close each replica's SLO windows: the trailing serving segment
    // (the loop only exits with every replica serving) and the
    // lifetime durability tally (anchors committed vs journal/commit
    // failures).
    for (r, rep) in reps.iter().enumerate() {
        let tail = total_ns.saturating_sub(rep_avail_mark[r]);
        rep_avail_mark[r] = total_ns;
        let (good, bad) = if rep.replica.state().is_serving() {
            (tail, 0)
        } else {
            (0, tail)
        };
        slo_alerts!(
            r as u32,
            rep_slo[r].observe(total_ns, SloKind::Availability, good, bad)
        );
        let p = rep.replica.pipeline_report();
        slo_alerts!(
            r as u32,
            rep_slo[r].observe(
                total_ns,
                SloKind::Durability,
                p.anchors as u64,
                p.durability_errors as u64
            )
        );
    }
    let per_replica: Vec<ReplicaReport> = reps
        .iter()
        .enumerate()
        .map(|(r, rep)| {
            let mine: Vec<RequestOutcome> = outcomes
                .iter()
                .enumerate()
                .filter(|(i, _)| resolved_by[*i] == Some(r))
                .map(|(_, o)| o.clone())
                .collect();
            let pipeline = rep.replica.pipeline_report().clone();
            ReplicaReport {
                replica: r,
                peer_repairs: rep.peer_repairs,
                repair_pages: rep.repair_pages,
                repair_bytes: rep.repair_bytes,
                repairs_donated: rep.repairs_donated,
                rejected_donations: rep.rejected_donations,
                report: ServeReport {
                    seed: cfg.seed,
                    policy: cfg.policy.name().to_string(),
                    submitted: rep.dispatched,
                    completed: rep.completed,
                    rejected: rep.rejected,
                    reexecuted: rep.reexecuted,
                    faults_injected: rep.faults_injected + rep.chaos_injected,
                    scrub_corrected: pipeline.scrub_corrected,
                    scrub_ticks: rep.scrub_ticks,
                    quarantines: rep.quarantines,
                    layers_recovered: pipeline.layers_healed,
                    durability_errors: pipeline.durability_errors,
                    total_ns,
                    downtime_ns: rep.downtime.total_ns(total_ns),
                    availability: rep.downtime.availability(total_ns),
                    latency: LatencyStats::from_ns(&rep.latencies),
                    batches: rep.batches,
                    full_batches: rep.full_batches,
                    batch_occupancy: if rep.batches == 0 {
                        0.0
                    } else {
                        rep.batched_requests as f64 / rep.batches as f64
                    },
                    digest: outcome_digest(&mine),
                    pipeline,
                    slo: Some(rep_slo[r].report(total_ns)),
                },
            }
        })
        .collect();
    let mut fleet_pipeline = PipelineReport::default();
    for rep in &per_replica {
        fleet_pipeline.merge(&rep.report.pipeline);
    }
    // Close the fleet-view windows the same way.
    {
        let tail = total_ns.saturating_sub(fleet_avail_mark);
        let (good, bad) = if fleet_serving { (tail, 0) } else { (0, tail) };
        slo_alerts!(
            FLEET_SRC,
            fleet_slo.observe(total_ns, SloKind::Availability, good, bad)
        );
        slo_alerts!(
            FLEET_SRC,
            fleet_slo.observe(
                total_ns,
                SloKind::Durability,
                fleet_pipeline.anchors as u64,
                fleet_pipeline.durability_errors as u64
            )
        );
    }
    let fleet = ServeReport {
        seed: cfg.seed,
        policy: cfg.policy.name().to_string(),
        submitted: cfg.requests,
        completed: fleet_completed,
        rejected: fleet_rejected,
        reexecuted: reps.iter().map(|r| r.reexecuted).sum(),
        faults_injected: reps
            .iter()
            .map(|r| r.faults_injected + r.chaos_injected)
            .sum(),
        scrub_corrected: fleet_pipeline.scrub_corrected,
        scrub_ticks: reps.iter().map(|r| r.scrub_ticks).sum(),
        quarantines: reps.iter().map(|r| r.quarantines).sum(),
        layers_recovered: fleet_pipeline.layers_healed,
        durability_errors: fleet_pipeline.durability_errors,
        total_ns,
        downtime_ns: fleet_down.total_ns(total_ns),
        availability: fleet_down.availability(total_ns),
        latency: LatencyStats::from_ns(&fleet_latencies),
        batches: reps.iter().map(|r| r.batches).sum(),
        full_batches: reps.iter().map(|r| r.full_batches).sum(),
        batch_occupancy: {
            let batches: usize = reps.iter().map(|r| r.batches).sum();
            let batched: usize = reps.iter().map(|r| r.batched_requests).sum();
            if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            }
        },
        digest: outcome_digest(&outcomes),
        pipeline: fleet_pipeline,
        slo: Some(fleet_slo.report(total_ns)),
    };
    let capacity = ServeReport::aggregate(
        &per_replica
            .iter()
            .map(|r| r.report.clone())
            .collect::<Vec<_>>(),
    );
    let report = FleetReport {
        replicas: cfg.replicas,
        fleet,
        capacity,
        per_replica,
    };
    // `reps` (the stores' file handles) drops before `_cleanup`
    // removes a private temp directory — reverse declaration order.
    Ok(FleetSimResult {
        report,
        outcomes,
        store_paths,
        chaos: chaos.map(|_| chaos_stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    // Conv-heavy fleet model: conv 0 is fully recoverable, conv 4 is
    // partial-recoverability (F²Z = 54 > G² = 4) — the heavy-fault
    // target.
    use milr_models::serving_probe as fleet_model;

    #[test]
    fn fault_free_fleet_completes_everything() {
        let model = fleet_model(3);
        let cfg = FleetConfig {
            requests: 60,
            faults: 0,
            kind: SubstrateKind::Plain,
            ..FleetConfig::default()
        };
        let result = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        let r = &result.report;
        assert_eq!(r.fleet.completed, 60);
        assert_eq!(r.fleet.rejected, 0);
        assert_eq!(r.fleet.quarantines, 0);
        assert_eq!(r.fleet.availability, 1.0);
        assert_eq!(r.peer_repairs(), 0);
        // All three replicas took traffic (round-robin routing).
        for rep in &r.per_replica {
            assert!(rep.report.submitted > 0, "replica {} idle", rep.replica);
        }
        assert_eq!(
            r.per_replica
                .iter()
                .map(|p| p.report.completed)
                .sum::<usize>(),
            60
        );
    }

    #[test]
    fn recoverable_faults_fail_over_and_heal_in_place() {
        let model = fleet_model(4);
        let cfg = FleetConfig {
            requests: 120,
            faults: 2,
            kind: SubstrateKind::Plain,
            ..FleetConfig::default()
        };
        let result = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        let r = &result.report;
        assert_eq!(r.fleet.faults_injected, 2);
        assert!(r.fleet.quarantines >= 1, "no quarantine triggered");
        assert!(r.fleet.layers_recovered >= 1, "nothing recovered");
        assert_eq!(r.peer_repairs(), 0, "recoverable faults need no peer");
        // Drain: every request completes despite the quarantines.
        assert_eq!(r.fleet.completed, 120);
        // The fleet stayed up: some replica was always serving.
        assert_eq!(r.fleet.downtime_ns, 0);
        // The quarantined replicas individually lost capacity.
        assert!(r.capacity.availability < 1.0);
    }

    #[test]
    fn heavy_fault_forces_peer_repair() {
        let model = fleet_model(5);
        let cfg = FleetConfig {
            requests: 100,
            faults: 0,
            heavy_faults: 1,
            kind: SubstrateKind::Plain,
            ..FleetConfig::default()
        };
        let result = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        let r = &result.report;
        assert_eq!(r.peer_repairs(), 1, "heavy fault must be peer-repaired");
        assert!(r.repair_pages() > 0 && r.repair_bytes() > 0);
        assert_eq!(
            r.per_replica
                .iter()
                .map(|p| p.repairs_donated)
                .sum::<usize>(),
            1
        );
        assert_eq!(r.fleet.completed, 100);
        // Certified outputs are bit-exact golden even though one
        // replica's layer was beyond MILR's recoverable set.
        for o in &result.outcomes {
            let RequestStatus::Completed(out) = &o.status else {
                panic!("request {} not completed under drain", o.id)
            };
            let expect = &model.forward_batch(std::slice::from_ref(&o.input)).unwrap()[0];
            let ob: Vec<u32> = out.data().iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = expect.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ob, eb, "request {}", o.id);
        }
    }

    #[test]
    fn byzantine_donor_is_caught_and_outputs_stay_golden() {
        use milr_fault::ByzantineSpec;
        // Four replicas, donors 0 and 1 byzantine: whichever replica
        // the heavy fault lands on, its first donor pick is byzantine
        // (lowest-index serving peer) and an honest peer still exists
        // after both cheats are distrusted.
        let model = fleet_model(5);
        let cfg = FleetConfig {
            replicas: 4,
            requests: 100,
            faults: 0,
            heavy_faults: 1,
            kind: SubstrateKind::Plain,
            chaos: Some(ChaosSpec {
                byzantine: Some(ByzantineSpec {
                    donors: vec![0, 1],
                    flips: 24,
                }),
                ..ChaosSpec::default()
            }),
            ..FleetConfig::default()
        };
        let result = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        let r = &result.report;
        assert!(
            r.rejected_donations() >= 1,
            "certified-donor check never caught the byzantine donation"
        );
        // Pages moved even though the byzantine import was rejected;
        // the residue the poisoned pages left behind is then healed in
        // place or repaired from an honest peer — either way the fleet
        // converges without trusting the cheat again.
        assert!(r.repair_pages() > 0 && r.repair_bytes() > 0);
        assert!(
            r.per_replica
                .iter()
                .map(|p| p.repairs_donated)
                .sum::<usize>()
                >= 1
        );
        assert_eq!(r.fleet.completed, 100);
        // Every certified output is bit-equal to the fault-free model
        // even though corrupted pages were shipped mid-repair.
        for o in &result.outcomes {
            let RequestStatus::Completed(out) = &o.status else {
                panic!("request {} not completed under drain", o.id)
            };
            let expect = &model.forward_batch(std::slice::from_ref(&o.input)).unwrap()[0];
            let ob: Vec<u32> = out.data().iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = expect.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ob, eb, "request {}", o.id);
        }
    }

    #[test]
    fn fleet_chaos_campaign_is_deterministic_and_drains() {
        use milr_fault::{BurstPattern, BurstSpec, SkewSpec, StuckAtSpec, TornWriteSpec};
        let model = fleet_model(7);
        let chaos = ChaosSpec {
            bursts: Some(BurstSpec {
                pattern: BurstPattern::Row,
                bursts: 2,
                flip_prob_milli: 300,
            }),
            stuck_at: Some(StuckAtSpec {
                bits: 6,
                from_milli: 100,
                until_milli: 600,
            }),
            torn_write: Some(TornWriteSpec {
                stage: "Heal".to_string(),
                fires: 1,
                flips: 6,
            }),
            byzantine: None,
            skew: Some(SkewSpec {
                arrival_milli: 900,
                scrub_milli: 1100,
            }),
        };
        let cfg = FleetConfig {
            requests: 80,
            faults: 1,
            kind: SubstrateKind::Plain,
            chaos: Some(chaos),
            ..FleetConfig::default()
        };
        let a = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        let b = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        assert_eq!(a.report.fleet.digest, b.report.fleet.digest);
        assert_eq!(a.report.to_json(), b.report.to_json(), "report not stable");
        assert_eq!(a.chaos, b.chaos);
        let stats = a.chaos.expect("chaos stats present");
        assert_eq!(stats.bursts_fired, 2);
        assert!(stats.burst_bits > 0, "bursts flipped nothing");
        assert_eq!(
            a.report.fleet.completed + a.report.fleet.rejected,
            80,
            "workload did not drain"
        );
    }

    #[test]
    fn quiet_fleet_chaos_matches_none() {
        let model = fleet_model(8);
        let base = FleetConfig {
            requests: 40,
            faults: 1,
            kind: SubstrateKind::Plain,
            ..FleetConfig::default()
        };
        let quiet = FleetConfig {
            chaos: Some(ChaosSpec::default()),
            ..base.clone()
        };
        let a = simulate(&model, MilrConfig::default(), &base).unwrap();
        let b = simulate(&model, MilrConfig::default(), &quiet).unwrap();
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert!(b.chaos.is_none(), "quiet spec must report no chaos");
    }

    #[test]
    fn reject_policy_sheds_only_the_quarantined_replicas_work() {
        let model = fleet_model(6);
        let cfg = FleetConfig {
            requests: 120,
            faults: 2,
            policy: QuarantinePolicy::Reject,
            kind: SubstrateKind::Plain,
            ..FleetConfig::default()
        };
        let result = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        let r = &result.report;
        assert!(r.fleet.quarantines >= 1);
        assert_eq!(r.fleet.reexecuted, 0, "reject never re-queues");
        assert_eq!(
            r.fleet.completed + r.fleet.rejected,
            r.fleet.submitted,
            "every request resolves exactly once"
        );
        // Completed outputs still bit-exact golden.
        for o in &result.outcomes {
            if let RequestStatus::Completed(out) = &o.status {
                let expect = &model.forward_batch(std::slice::from_ref(&o.input)).unwrap()[0];
                assert_eq!(out.data(), expect.data());
            }
        }
    }
}
