//! Fleet-level reporting: the client-facing aggregate, the capacity
//! view, and one [`ServeReport`] per replica.

use milr_serve::ServeReport;

/// One replica's slice of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaReport {
    /// Replica index.
    pub replica: usize,
    /// Peer-repair episodes this replica **completed** (import verified
    /// and durably re-anchored).
    pub peer_repairs: usize,
    /// Pages fetched from peers — all repair traffic, including a fetch
    /// whose post-import verification was rejected by fresh mid-repair
    /// damage (the pages were still moved and applied).
    pub repair_pages: usize,
    /// Raw bytes fetched from peers (same accounting as
    /// [`ReplicaReport::repair_pages`]).
    pub repair_bytes: usize,
    /// Times this replica served as a certified-page donor.
    pub repairs_donated: usize,
    /// Donations this replica *received* whose post-import verification
    /// rejected the pages — a byzantine donor shipping corrupted images,
    /// or fresh damage landing mid-repair. Rejected pages never reach a
    /// certified state: the replica re-enters the heal ladder instead.
    pub rejected_donations: usize,
    /// The replica's serving counters. `submitted` counts requests
    /// dispatched to it (re-dispatches after failover count again);
    /// `completed`/`rejected`/`reexecuted`, latency, and the digest
    /// cover the requests *this replica* resolved; fleet-level
    /// rejections (queue overflow, whole-fleet outage) belong to no
    /// replica and appear only in the fleet aggregate.
    pub report: ServeReport,
}

impl ReplicaReport {
    /// Renders the replica's slice as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"replica\":{},\"peer_repairs\":{},\"repair_pages\":{},",
                "\"repair_bytes\":{},\"repairs_donated\":{},",
                "\"rejected_donations\":{},\"report\":{}}}"
            ),
            self.replica,
            self.peer_repairs,
            self.repair_pages,
            self.repair_bytes,
            self.repairs_donated,
            self.rejected_donations,
            self.report.to_json()
        )
    }
}

/// Everything a fleet run produced, aggregated three ways.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Replicas in the fleet.
    pub replicas: usize,
    /// The client-facing aggregate: counters over the whole workload,
    /// latency over every completed request, and `downtime_ns` /
    /// `availability` measured on the **fleet** clock — the fleet is
    /// down only while *zero* replicas are serving. This is the
    /// "ServeReport aggregate" the determinism contract covers.
    pub fleet: ServeReport,
    /// The capacity view: [`ServeReport::aggregate`] over the
    /// per-replica reports (mean replica availability, summed
    /// counters).
    pub capacity: ServeReport,
    /// Per-replica slices, by replica index.
    pub per_replica: Vec<ReplicaReport>,
}

impl FleetReport {
    /// Peer-repair episodes across the fleet (derived from
    /// [`FleetReport::per_replica`], so the total can never disagree
    /// with the slices).
    pub fn peer_repairs(&self) -> usize {
        self.per_replica.iter().map(|r| r.peer_repairs).sum()
    }

    /// Pages moved by peer repair across the fleet.
    pub fn repair_pages(&self) -> usize {
        self.per_replica.iter().map(|r| r.repair_pages).sum()
    }

    /// Raw bytes moved by peer repair across the fleet.
    pub fn repair_bytes(&self) -> usize {
        self.per_replica.iter().map(|r| r.repair_bytes).sum()
    }

    /// Donations rejected by post-import verification across the fleet
    /// (byzantine donors caught by the certified-donor check, plus
    /// fresh-damage rejections).
    pub fn rejected_donations(&self) -> usize {
        self.per_replica.iter().map(|r| r.rejected_donations).sum()
    }

    /// Renders the report as one JSON object (hand-rolled like
    /// [`ServeReport::to_json`]; the workspace's serde stub has no
    /// serializer).
    pub fn to_json(&self) -> String {
        let per_replica: Vec<String> = self.per_replica.iter().map(|r| r.to_json()).collect();
        format!(
            concat!(
                "{{\"replicas\":{},\"peer_repairs\":{},\"repair_pages\":{},",
                "\"repair_bytes\":{},\"rejected_donations\":{},",
                "\"fleet\":{},\"capacity\":{},\"per_replica\":[{}]}}"
            ),
            self.replicas,
            self.peer_repairs(),
            self.repair_pages(),
            self.repair_bytes(),
            self.rejected_donations(),
            self.fleet.to_json(),
            self.capacity.to_json(),
            per_replica.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_serve::LatencyStats;

    fn report(digest: u64) -> ServeReport {
        ServeReport {
            seed: 1,
            policy: "drain".into(),
            submitted: 4,
            completed: 4,
            rejected: 0,
            reexecuted: 0,
            faults_injected: 0,
            scrub_corrected: 0,
            scrub_ticks: 2,
            quarantines: 0,
            layers_recovered: 0,
            durability_errors: 0,
            total_ns: 100,
            downtime_ns: 0,
            availability: 1.0,
            latency: LatencyStats::default(),
            batches: 1,
            full_batches: 1,
            batch_occupancy: 4.0,
            digest,
            pipeline: crate::PipelineReport::default(),
            slo: None,
        }
    }

    #[test]
    fn json_nests_all_three_views() {
        let fleet = FleetReport {
            replicas: 2,
            fleet: report(7),
            capacity: ServeReport::aggregate(&[report(1), report(2)]),
            per_replica: vec![
                ReplicaReport {
                    replica: 0,
                    peer_repairs: 1,
                    repair_pages: 3,
                    repair_bytes: 96,
                    repairs_donated: 0,
                    rejected_donations: 1,
                    report: report(1),
                },
                ReplicaReport {
                    replica: 1,
                    peer_repairs: 0,
                    repair_pages: 0,
                    repair_bytes: 0,
                    repairs_donated: 1,
                    rejected_donations: 0,
                    report: report(2),
                },
            ],
        };
        assert_eq!(fleet.peer_repairs(), 1);
        assert_eq!(fleet.repair_pages(), 3);
        assert_eq!(fleet.repair_bytes(), 96);
        assert_eq!(fleet.rejected_donations(), 1);
        let json = fleet.to_json();
        assert!(json.contains("\"per_replica\":[{\"replica\":0"));
        assert!(json.contains("\"repairs_donated\":1"));
        assert!(json.contains("\"rejected_donations\":1"));
        assert!(json.contains("\"fleet\":{"));
        assert!(json.contains("\"capacity\":{"));
        assert_eq!(json.matches("\"report\":{").count(), 2);
    }
}
