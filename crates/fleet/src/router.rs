//! Deterministic request routing across replicas.
//!
//! The router is intentionally tiny and stateful-but-deterministic: a
//! round-robin pointer over the replicas, advanced only when a batch is
//! actually placed. Unhealthy replicas (anything not
//! [`Serving`](crate::ReplicaState::Serving), or with no free worker)
//! are skipped, which *is* failover: the moment a replica quarantines,
//! the next dispatch lands on its neighbour, and the pointer's position
//! is a pure function of the dispatch history — a seeded simulation
//! replays it bit-for-bit.

/// Round-robin routing over replicas, skipping the unhealthy.
#[derive(Debug, Clone)]
pub struct Router {
    replicas: usize,
    next: usize,
}

impl Router {
    /// A router over `replicas` replicas, starting at replica 0.
    ///
    /// # Panics
    ///
    /// Panics when `replicas == 0`.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "a fleet needs at least one replica");
        Router { replicas, next: 0 }
    }

    /// Picks the next eligible replica (`eligible[i]` = healthy *and*
    /// has dispatch capacity), advancing the round-robin pointer past
    /// it. Returns `None` — and leaves the pointer untouched — when no
    /// replica is eligible.
    ///
    /// # Panics
    ///
    /// Panics when `eligible.len()` differs from the fleet size.
    pub fn route(&mut self, eligible: &[bool]) -> Option<usize> {
        assert_eq!(eligible.len(), self.replicas, "one flag per replica");
        for step in 0..self.replicas {
            let candidate = (self.next + step) % self.replicas;
            if eligible[candidate] {
                self.next = (candidate + 1) % self.replicas;
                return Some(candidate);
            }
        }
        None
    }

    /// Number of replicas routed over.
    pub fn replicas(&self) -> usize {
        self.replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_over_healthy_replicas() {
        let mut r = Router::new(3);
        assert_eq!(r.route(&[true, true, true]), Some(0));
        assert_eq!(r.route(&[true, true, true]), Some(1));
        assert_eq!(r.route(&[true, true, true]), Some(2));
        assert_eq!(r.route(&[true, true, true]), Some(0));
    }

    #[test]
    fn failover_skips_unhealthy_and_recovers() {
        let mut r = Router::new(3);
        assert_eq!(r.route(&[true, true, true]), Some(0));
        // Replica 1 quarantines: traffic fails over to 2, then 0.
        assert_eq!(r.route(&[true, false, true]), Some(2));
        assert_eq!(r.route(&[true, false, true]), Some(0));
        assert_eq!(r.route(&[true, false, true]), Some(2));
        // Replica 1 rejoins and takes its turn again.
        assert_eq!(r.route(&[true, true, true]), Some(0));
        assert_eq!(r.route(&[true, true, true]), Some(1));
    }

    #[test]
    fn no_eligible_replica_leaves_pointer_untouched() {
        let mut r = Router::new(2);
        assert_eq!(r.route(&[false, false]), None);
        assert_eq!(r.route(&[true, true]), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn rejects_empty_fleet() {
        Router::new(0);
    }
}
