//! # milr-fleet
//!
//! **Replicated sharded serving with peer repair and failover** — the
//! scaling rung above `milr-serve`'s single instance.
//!
//! The paper bounds what MILR can heal from one instance's checkpoints:
//! faults beyond a layer's recoverable set (whole-layer corruption of a
//! partial-recoverability convolution, several layers garbled inside
//! one checkpoint segment) force a refusal or an *approximate* heal.
//! Replication turns that cliff into a repair path: a damaged replica
//! restores bit-exact pages from a healthy peer's **certified** `.milr`
//! store and rejoins the fleet.
//!
//! ```text
//!  clients ──▶ fleet queue ──▶ Router ──▶ replica 0  [Serving]
//!                                  │      replica 1  [Serving]
//!                                  └────▶ replica 2  [Quarantined]
//!                                              │ scrub flagged
//!                                              ▼
//!                                         MILR heal ── exact ──▶ re-anchor, rejoin
//!                                              │ MinNorm / Failed
//!                                              ▼       (irrecoverable)
//!                                         [Repairing]
//!                                              │ fetch certified pages
//!                                              ▼ from a Serving peer
//!                                         import raw pages, verify,
//!                                         re-protect, re-anchor, rejoin
//! ```
//!
//! * Every replica is a full `milr-serve` stack: a substrate-backed
//!   [`milr_serve::ModelHost`] over its own [`milr_store::Store`], a
//!   chunked scrub cursor, and a certification ledger. Health is a
//!   [`ReplicaState`]: `Serving` / `Quarantined` / `Repairing` / `Cold`.
//! * The [`Router`] spreads batches round-robin over `Serving`
//!   replicas; a quarantine fails traffic over — under the `Drain`
//!   policy the quarantined replica's voided work re-queues onto the
//!   fleet queue and peers absorb it, so **no request is lost during
//!   failover**.
//! * Recovery first tries a MILR heal. When the recovery report marks a
//!   layer irrecoverable ([`milr_core::RecoveryOutcome::is_exact`] is
//!   false — the min-norm/failed outcomes), [`PeerRepair`] fetches the
//!   affected weight pages from a healthy peer's certified store
//!   ([`milr_store::Store::certified_layer_pages`]), imports them onto
//!   the live substrate bit-for-bit, re-verifies by detection,
//!   re-protects, re-anchors durably, and rejoins.
//! * [`sim::simulate`] drives all of it on a **virtual clock** with
//!   seeded arrivals and per-replica fault campaigns, so every
//!   multi-replica scenario — failover, peer repair, drain-vs-reject —
//!   is bit-reproducible under its seed.

#![deny(missing_docs)]

mod repair;
mod replica;
mod report;
mod router;
pub mod sim;

pub use repair::{peer_repair, PageImage, PeerRepair, RepairStats};
pub use replica::{Replica, ReplicaState};
pub use report::{FleetReport, ReplicaReport};
pub use router::Router;
pub use sim::{simulate, simulate_observed, FleetConfig, FleetSimResult};
// The heal ladder itself lives in the shared integrity engine;
// re-export the pieces fleet drivers and callers see.
pub use milr_integrity::{Budget, PipelineReport, RoundOutcome};

use milr_core::MilrError;
use milr_integrity::IntegrityError;
use milr_store::StoreError;
use milr_substrate::SubstrateError;

/// Errors from fleet orchestration.
#[derive(Debug)]
pub enum FleetError {
    /// A replica's persistent store failed.
    Store(StoreError),
    /// Protection, detection, or recovery failed.
    Milr(MilrError),
    /// A substrate rejected an operation.
    Substrate(SubstrateError),
    /// A replica's heal episode exhausted its round budget with layers
    /// still flagged (the engine refused to keep spinning).
    BudgetExhausted {
        /// Heal rounds spent.
        rounds: usize,
        /// The layers still flagged.
        layers: Vec<usize>,
    },
    /// Peer repair found no healthy peer able to certify the needed
    /// pages.
    NoHealthyPeer {
        /// The replica needing repair.
        replica: usize,
        /// The layers it could not restore.
        layers: Vec<usize>,
    },
    /// Post-repair verification still flags layers: the imported pages
    /// do not decode to the protected weights.
    RepairRejected {
        /// The replica that failed verification.
        replica: usize,
        /// The layers still flagged.
        layers: Vec<usize>,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Store(e) => write!(f, "replica store error: {e}"),
            FleetError::Milr(e) => write!(f, "protection error: {e}"),
            FleetError::Substrate(e) => write!(f, "substrate error: {e}"),
            FleetError::BudgetExhausted { rounds, layers } => write!(
                f,
                "heal budget exhausted after {rounds} rounds with layers {layers:?} still flagged"
            ),
            FleetError::NoHealthyPeer { replica, layers } => write!(
                f,
                "no healthy peer could certify pages for replica {replica} layers {layers:?}"
            ),
            FleetError::RepairRejected { replica, layers } => write!(
                f,
                "peer repair of replica {replica} failed verification on layers {layers:?}"
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Store(e) => Some(e),
            FleetError::Milr(e) => Some(e),
            FleetError::Substrate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for FleetError {
    fn from(e: StoreError) -> Self {
        FleetError::Store(e)
    }
}

impl From<MilrError> for FleetError {
    fn from(e: MilrError) -> Self {
        FleetError::Milr(e)
    }
}

impl From<SubstrateError> for FleetError {
    fn from(e: SubstrateError) -> Self {
        FleetError::Substrate(e)
    }
}

impl From<IntegrityError> for FleetError {
    fn from(e: IntegrityError) -> Self {
        match e {
            IntegrityError::Milr(e) => FleetError::Milr(e),
            IntegrityError::Store(e) => FleetError::Store(e),
            IntegrityError::Substrate(e) => FleetError::Substrate(e),
            IntegrityError::BudgetExhausted { rounds, flagged } => FleetError::BudgetExhausted {
                rounds,
                layers: flagged,
            },
        }
    }
}
