//! Peer repair: restoring a damaged replica's weight pages, bit for
//! bit, from a healthy peer's **certified** store.
//!
//! The protocol has a fetch side and an apply side so the two replicas
//! never need to be borrowed at once:
//!
//! 1. **Fetch** ([`fetch_certified`]): the donor reads the affected
//!    layers' raw page runs from its container and *certifies* them —
//!    it replays each layer's MILR detection check against its own
//!    error-resistant artifacts and refuses to ship pages that fail
//!    ([`milr_store::Store::certified_layer_pages`]). A donor whose own
//!    disk is dirty is therefore rejected at the source, and the caller
//!    tries the next peer.
//! 2. **Apply** ([`apply_repair`]): the damaged replica imports the
//!    page images onto its live shards (superseding corrupt and cached
//!    state alike), re-verifies by running its own detection over the
//!    materialized model, then re-protects and durably re-anchors its
//!    store — so the repaired state survives a crash — and is ready to
//!    rejoin.
//!
//! Because every replica serves the same protected model and every
//! substrate encoding is deterministic, the imported pages are
//! **bit-identical** to the donor's — the end-to-end test asserts raw
//! image equality across the fleet after repair.

use crate::replica::Replica;
use crate::FleetError;
use milr_store::Store;

/// One raw page image fetched from a peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageImage {
    /// Layer the page belongs to.
    pub layer: usize,
    /// Page index inside the layer's run.
    pub page: usize,
    /// The page's substrate-encoded bytes.
    pub bytes: Vec<u8>,
}

/// What a peer repair moved and touched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Layers restored from the peer.
    pub layers: Vec<usize>,
    /// Pages fetched.
    pub pages: usize,
    /// Raw bytes fetched.
    pub bytes: usize,
}

/// A source of certified weight pages — anything that can prove the
/// pages it ships decode to the protected weights. Implemented for
/// [`milr_store::Store`]; a networked fleet would implement it over an
/// RPC client with the same contract.
pub trait PeerRepair {
    /// Reads and certifies one layer's page run.
    ///
    /// # Errors
    ///
    /// An error when the pages cannot be certified (local damage) or
    /// read.
    fn certified_pages(&self, layer: usize) -> Result<Vec<PageImage>, FleetError>;
}

impl PeerRepair for Store {
    fn certified_pages(&self, layer: usize) -> Result<Vec<PageImage>, FleetError> {
        Ok(self
            .certified_layer_pages(layer)?
            .into_iter()
            .enumerate()
            .map(|(page, bytes)| PageImage { layer, page, bytes })
            .collect())
    }
}

/// Fetches certified page images for every layer in `layers` from one
/// peer. All-or-nothing: a single uncertifiable layer fails the whole
/// fetch so the caller can move on to another donor before anything is
/// applied.
///
/// # Errors
///
/// Propagates the peer's certification/read errors.
pub fn fetch_certified(
    peer: &dyn PeerRepair,
    layers: &[usize],
) -> Result<Vec<PageImage>, FleetError> {
    let mut images = Vec::new();
    for &layer in layers {
        images.extend(peer.certified_pages(layer)?);
    }
    Ok(images)
}

/// Applies fetched page images to a damaged replica: imports each
/// layer's concatenated pages onto its live shard, re-verifies the
/// whole model by detection against the replica's own artifacts, then
/// re-protects and durably re-anchors. On success the replica's
/// substrate holds the donor's bits exactly and its store is certified
/// again; the caller transitions it back to
/// [`Serving`](crate::ReplicaState::Serving).
///
/// # Errors
///
/// [`FleetError::RepairRejected`] when post-import detection still
/// flags layers; substrate/store/protection errors otherwise. The
/// replica's state field is not modified on either path.
pub fn apply_repair(
    replica: &mut Replica,
    images: &[PageImage],
) -> Result<RepairStats, FleetError> {
    // A layer's shard is rebuilt from its pages concatenated in page
    // order — sort rather than trusting the peer's delivery order, so
    // an out-of-order `PeerRepair` impl (e.g. a concurrent RPC client)
    // cannot scramble the import.
    let mut images: Vec<&PageImage> = images.iter().collect();
    images.sort_by_key(|p| (p.layer, p.page));
    let mut stats = RepairStats::default();
    let mut i = 0;
    while i < images.len() {
        let layer = images[i].layer;
        let mut image = Vec::new();
        while i < images.len() && images[i].layer == layer {
            image.extend_from_slice(&images[i].bytes);
            stats.pages += 1;
            i += 1;
        }
        stats.bytes += image.len();
        replica.host().import_layer_raw(layer, &image)?;
        stats.layers.push(layer);
    }
    let verify = replica.detect()?;
    if !verify.is_clean() {
        return Err(FleetError::RepairRejected {
            replica: replica.id(),
            layers: verify.flagged,
        });
    }
    replica.reanchor()?;
    Ok(stats)
}

/// Convenience wrapper: fetch from one peer, then apply — for callers
/// whose replica and peer live in distinct bindings (the example; the
/// simulation uses the two halves directly to satisfy the borrow
/// checker across its replica vector).
///
/// # Errors
///
/// See [`fetch_certified`] and [`apply_repair`].
pub fn peer_repair(
    replica: &mut Replica,
    peer: &dyn PeerRepair,
    layers: &[usize],
) -> Result<RepairStats, FleetError> {
    let images = fetch_certified(peer, layers)?;
    apply_repair(replica, &images)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_core::MilrConfig;
    use milr_nn::{Layer, Sequential};
    use milr_store::{Store, StoreOptions};
    use milr_substrate::SubstrateKind;
    use milr_tensor::{ConvSpec, Padding, TensorRng};
    use std::path::PathBuf;

    fn model() -> Sequential {
        let mut rng = TensorRng::new(5);
        let mut m = Sequential::new(vec![8, 8, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(6 * 6 * 4, 5, &mut rng).unwrap())
            .unwrap();
        m
    }

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "milr-fleet-repair-{}-{name}.milr",
            std::process::id()
        ))
    }

    #[test]
    fn store_ships_certified_pages_and_refuses_damaged_ones() {
        let m = model();
        let path = temp("donor");
        let store = Store::create(
            &path,
            &m,
            MilrConfig::default(),
            StoreOptions {
                kind: SubstrateKind::Secded,
                page_weights: 16,
            },
        )
        .unwrap();
        let pages = store.certified_pages(0).unwrap();
        assert_eq!(pages.len(), 3);
        assert!(pages
            .iter()
            .enumerate()
            .all(|(i, p)| p.page == i && p.layer == 0));
        let fetched = fetch_certified(&store, &[0, 3]).unwrap();
        assert_eq!(
            fetched.len(),
            store.layer_page_count(0) + store.layer_page_count(3)
        );
        // Wreck layer 0 on disk beyond ECC: certification refuses.
        let stride = store.layer_raw_bits(0) / 36;
        for bit in 0..4 * stride {
            store.flip_raw_bit(0, bit).unwrap();
        }
        assert!(store.certified_pages(0).is_err());
        assert!(fetch_certified(&store, &[3, 0]).is_err(), "all-or-nothing");
        let _ = std::fs::remove_file(&path);
    }
}
