//! One fleet member: a substrate-backed serving host over its own
//! persistent store, with an explicit health state.
//!
//! A [`Replica`] owns the full single-instance stack — the
//! [`ModelHost`] whose weights live only in substrate shards, the
//! [`Milr`] protection instance anchored to the certified weights, the
//! [`Store`] those shards page against — plus its own
//! [`IntegrityPipeline`] under the
//! [`PeerRepair`](milr_integrity::EscalationPolicy::PeerRepair)
//! policy: MILR heals are *classified* (only bit-exact outcomes are
//! written back; min-norm/failed layers escalate to a peer fetch) and
//! every rejoin re-anchors durably. The replica methods are thin
//! drivers over that shared engine; the fleet layers health on top
//! through [`ReplicaState`].

use crate::FleetError;
use milr_core::{DetectionReport, Milr};
use milr_integrity::{
    Budget, EscalationPolicy, IntegrityPipeline, Journaled, ModelHost, PipelineReport,
    RoundOutcome, TickOutcome,
};
use milr_nn::Sequential;
use milr_serve::{cold_start, ColdStartReport};
use milr_store::Store;
use std::path::Path;

/// Health of one replica, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Opened but not yet admitted to traffic (scrub-on-load pending).
    Cold,
    /// Healthy: eligible for dispatch and as a peer-repair donor.
    Serving,
    /// A flagged scrub pulled it from rotation; MILR heal in progress.
    Quarantined,
    /// MILR heal reported irrecoverable layers; fetching certified
    /// pages from a peer.
    Repairing,
}

impl ReplicaState {
    /// Stable lowercase name (reports, logs).
    pub fn name(&self) -> &'static str {
        match self {
            ReplicaState::Cold => "cold",
            ReplicaState::Serving => "serving",
            ReplicaState::Quarantined => "quarantined",
            ReplicaState::Repairing => "repairing",
        }
    }

    /// True when the router may dispatch to (and peers may fetch
    /// certified pages from) this replica.
    pub fn is_serving(&self) -> bool {
        matches!(self, ReplicaState::Serving)
    }
}

/// One fleet member: host + protection + store + engine + health
/// state.
pub struct Replica {
    id: usize,
    host: ModelHost,
    milr: Milr,
    store: Store,
    pipeline: IntegrityPipeline,
    state: ReplicaState,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("state", &self.state.name())
            .field("store", &self.store.path())
            .finish()
    }
}

/// The policy every replica's engine runs under: never serve an
/// approximation (escalate to peer repair instead), default budget.
fn replica_pipeline() -> IntegrityPipeline {
    IntegrityPipeline::new(EscalationPolicy::PeerRepair, Budget::default())
}

impl Replica {
    /// Opens the replica's container without healing: the host pages
    /// against the store's substrates, protection is the stored
    /// instance, and the state is [`ReplicaState::Cold`] — not yet
    /// eligible for traffic.
    ///
    /// # Errors
    ///
    /// Propagates store open failures.
    pub fn open(id: usize, path: &Path, cache_pages: usize) -> Result<Self, FleetError> {
        let store = Store::open(path)?;
        let host =
            ModelHost::from_parts(store.template().clone(), store.open_substrates(cache_pages));
        let milr = store.milr().clone();
        Ok(Replica {
            id,
            host,
            milr,
            store,
            pipeline: replica_pipeline(),
            state: ReplicaState::Cold,
        })
    }

    /// Opens the replica through the full scrub-on-load cold start
    /// (substrate scrub, detection, heal rounds, durable re-anchor) and
    /// admits it to traffic ([`ReplicaState::Serving`]).
    ///
    /// # Errors
    ///
    /// Propagates store and healing failures.
    pub fn cold_start(
        id: usize,
        path: &Path,
        cache_pages: usize,
    ) -> Result<(Self, ColdStartReport), FleetError> {
        let mut store = Store::open(path)?;
        let (host, milr, report) = cold_start(&mut store, cache_pages)?;
        Ok((
            Replica {
                id,
                host,
                milr,
                store,
                pipeline: replica_pipeline(),
                state: ReplicaState::Serving,
            },
            report,
        ))
    }

    /// The replica's fleet index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current health state.
    pub fn state(&self) -> ReplicaState {
        self.state
    }

    /// Transitions the health state (the fleet control plane's job; the
    /// replica itself never changes state behind the router's back).
    pub fn set_state(&mut self, state: ReplicaState) {
        self.state = state;
    }

    /// The serving host (substrate-backed weights).
    pub fn host(&self) -> &ModelHost {
        &self.host
    }

    /// The protection instance currently anchored to the certified
    /// weights.
    pub fn milr(&self) -> &Milr {
        &self.milr
    }

    /// The persistent store backing the host's substrates.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The replica's integrity-engine report so far.
    pub fn pipeline_report(&self) -> &PipelineReport {
        self.pipeline.report()
    }

    /// Attaches a structured trace sink to the replica's integrity
    /// engine; events it emits carry this replica's fleet index as
    /// their source.
    pub fn attach_trace(&mut self, trace: milr_obs::TraceHandle) {
        let src = self.id as u32;
        self.pipeline.attach_trace(trace, src);
    }

    /// Attaches a span sink to the replica's integrity engine: every
    /// tick and heal episode pushes one stage-timed tree (stamped with
    /// the driver clock set via [`Replica::set_now`]).
    pub fn attach_spans(&mut self, spans: milr_obs::SpanHandle) {
        self.pipeline.attach_spans(spans);
    }

    /// Attaches a stage hook to the replica's integrity engine: fired
    /// at every stage seam the pipeline enters. The chaos harness uses
    /// this to land torn writes mid-heal and to kill-test restart
    /// behaviour at each seam.
    pub fn attach_stage_hook(&mut self, hook: milr_integrity::StageHook) {
        self.pipeline.attach_stage_hook(hook);
    }

    /// Sets the driver clock the replica's engine stamps trace events
    /// with (the fleet sim forwards its virtual clock here before each
    /// tick/heal call).
    pub fn set_now(&mut self, ns: u64) {
        self.pipeline.set_now(ns);
    }

    /// The flag set of the current heal episode's opening detection.
    pub fn last_flagged(&self) -> &[usize] {
        self.pipeline.last_flagged()
    }

    /// Decodes the substrates into a runnable model.
    pub fn materialize(&self) -> Sequential {
        self.host.materialize()
    }

    /// One scrub tick: the engine's Scrub + Detect stages over a
    /// cursor chunk, with ECC corrections journal-flushed like every
    /// other write-back on this store-backed replica. A flagged
    /// detection is the fleet's cue to quarantine this replica and
    /// start [`Replica::try_heal`] rounds.
    ///
    /// # Errors
    ///
    /// Propagates detection and journal-flush failures.
    pub fn tick(&mut self, chunk: &[usize]) -> Result<TickOutcome, FleetError> {
        let mut durability = Journaled::strict(&mut self.store);
        Ok(self
            .pipeline
            .tick(&self.host, &self.milr, chunk, &mut durability)?)
    }

    /// Runs a full detection pass over the live weights (the
    /// re-admission gate after a peer import, and the donor's
    /// certification check).
    ///
    /// # Errors
    ///
    /// Propagates detection failures.
    pub fn detect(&self) -> Result<DetectionReport, FleetError> {
        Ok(self.milr.detect(&self.host.materialize())?)
    }

    /// One heal round of the shared engine under the peer-repair
    /// policy: flagged layers whose recovery is exact (full or
    /// CRC-guided partial) are written back and journal-flushed;
    /// min-norm/failed layers come back as
    /// [`RoundOutcome::Escalate`] for
    /// [`peer_repair`](crate::peer_repair), their shards untouched. A
    /// clean verify re-protects and re-anchors durably.
    ///
    /// # Errors
    ///
    /// Propagates detection/recovery/store failures.
    pub fn try_heal(&mut self) -> Result<RoundOutcome, FleetError> {
        let mut durability = Journaled::strict(&mut self.store);
        Ok(self
            .pipeline
            .heal_round(&self.host, &mut self.milr, &mut durability)?)
    }

    /// True when the current heal episode has spent its round budget.
    pub fn heal_budget_exhausted(&self) -> bool {
        self.pipeline.budget_exhausted()
    }

    /// The budget policy this replica's engine runs under (the fleet
    /// driver also reads its donor-retry cap from here).
    pub fn budget(&self) -> Budget {
        self.pipeline.budget()
    }

    /// Grants a fresh heal-round budget mid-episode (re-entering the
    /// heal ladder after a rejected peer import caught fresh damage).
    pub fn reset_heal_budget(&mut self) {
        self.pipeline.reset_budget()
    }

    /// Re-protects against the current live weights and commits the
    /// new (artifacts, weights) pair atomically to the store — the
    /// engine's Reprotect + Anchor tail, ending every successful
    /// repair.
    ///
    /// # Errors
    ///
    /// Propagates protection and store-commit failures.
    pub fn reanchor(&mut self) -> Result<(), FleetError> {
        let mut durability = Journaled::strict(&mut self.store);
        self.pipeline
            .reprotect_and_anchor(&self.host, &mut self.milr, &mut durability)?;
        Ok(())
    }
}
