//! One fleet member: a substrate-backed serving host over its own
//! persistent store, with an explicit health state.
//!
//! A [`Replica`] owns the full single-instance stack — the
//! [`ModelHost`] whose weights live only in substrate shards, the
//! [`Milr`] protection instance anchored to the certified weights, and
//! the [`Store`] those shards page against. The fleet layers health on
//! top: a [`ReplicaState`] the router keys dispatch on, a MILR heal
//! attempt that *classifies* its outcome (exact vs irrecoverable)
//! instead of accepting approximations, and a durable re-anchor for
//! rejoining after repair.

use crate::FleetError;
use milr_core::{DetectionReport, Milr};
use milr_nn::Sequential;
use milr_serve::{cold_start, ColdStartReport, ModelHost};
use milr_store::Store;
use std::path::Path;

/// Health of one replica, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Opened but not yet admitted to traffic (scrub-on-load pending).
    Cold,
    /// Healthy: eligible for dispatch and as a peer-repair donor.
    Serving,
    /// A flagged scrub pulled it from rotation; MILR heal in progress.
    Quarantined,
    /// MILR heal reported irrecoverable layers; fetching certified
    /// pages from a peer.
    Repairing,
}

impl ReplicaState {
    /// Stable lowercase name (reports, logs).
    pub fn name(&self) -> &'static str {
        match self {
            ReplicaState::Cold => "cold",
            ReplicaState::Serving => "serving",
            ReplicaState::Quarantined => "quarantined",
            ReplicaState::Repairing => "repairing",
        }
    }

    /// True when the router may dispatch to (and peers may fetch
    /// certified pages from) this replica.
    pub fn is_serving(&self) -> bool {
        matches!(self, ReplicaState::Serving)
    }
}

/// Outcome classification of one MILR heal attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealAttempt {
    /// Layers detection flagged going in.
    pub flagged: Vec<usize>,
    /// Flagged layers healed exactly (written back to the substrate).
    pub healed_exact: Vec<usize>,
    /// Flagged layers beyond MILR's recoverable set (min-norm or
    /// failed outcomes) — the set handed to peer repair. Their
    /// substrate shards are left untouched.
    pub irrecoverable: Vec<usize>,
}

impl HealAttempt {
    /// True when nothing was flagged.
    pub fn was_clean(&self) -> bool {
        self.flagged.is_empty()
    }
}

/// One fleet member: host + protection + store + health state.
pub struct Replica {
    id: usize,
    host: ModelHost,
    milr: Milr,
    store: Store,
    state: ReplicaState,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("state", &self.state.name())
            .field("store", &self.store.path())
            .finish()
    }
}

impl Replica {
    /// Opens the replica's container without healing: the host pages
    /// against the store's substrates, protection is the stored
    /// instance, and the state is [`ReplicaState::Cold`] — not yet
    /// eligible for traffic.
    ///
    /// # Errors
    ///
    /// Propagates store open failures.
    pub fn open(id: usize, path: &Path, cache_pages: usize) -> Result<Self, FleetError> {
        let store = Store::open(path)?;
        let host =
            ModelHost::from_parts(store.template().clone(), store.open_substrates(cache_pages));
        let milr = store.milr().clone();
        Ok(Replica {
            id,
            host,
            milr,
            store,
            state: ReplicaState::Cold,
        })
    }

    /// Opens the replica through the full scrub-on-load cold start
    /// (substrate scrub, detection, heal rounds, durable re-anchor) and
    /// admits it to traffic ([`ReplicaState::Serving`]).
    ///
    /// # Errors
    ///
    /// Propagates store and healing failures.
    pub fn cold_start(
        id: usize,
        path: &Path,
        cache_pages: usize,
    ) -> Result<(Self, ColdStartReport), FleetError> {
        let mut store = Store::open(path)?;
        let (host, milr, report) = cold_start(&mut store, cache_pages)?;
        Ok((
            Replica {
                id,
                host,
                milr,
                store,
                state: ReplicaState::Serving,
            },
            report,
        ))
    }

    /// The replica's fleet index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current health state.
    pub fn state(&self) -> ReplicaState {
        self.state
    }

    /// Transitions the health state (the fleet control plane's job; the
    /// replica itself never changes state behind the router's back).
    pub fn set_state(&mut self, state: ReplicaState) {
        self.state = state;
    }

    /// The serving host (substrate-backed weights).
    pub fn host(&self) -> &ModelHost {
        &self.host
    }

    /// The protection instance currently anchored to the certified
    /// weights.
    pub fn milr(&self) -> &Milr {
        &self.milr
    }

    /// The persistent store backing the host's substrates.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Decodes the substrates into a runnable model.
    pub fn materialize(&self) -> Sequential {
        self.host.materialize()
    }

    /// Runs a full detection pass over the live weights.
    ///
    /// # Errors
    ///
    /// Propagates detection failures.
    pub fn detect(&self) -> Result<DetectionReport, FleetError> {
        Ok(self.milr.detect(&self.host.materialize())?)
    }

    /// Attempts a MILR heal of the currently flagged layers and
    /// **classifies** the outcome: layers whose recovery was exact
    /// (full or CRC-guided partial) are written back to the substrate
    /// and flushed; layers whose recovery came back min-norm or failed
    /// are reported irrecoverable and their shards left untouched —
    /// the caller hands them to [`peer_repair`](crate::peer_repair)
    /// rather than serving an approximation.
    ///
    /// # Errors
    ///
    /// Propagates detection/recovery/store failures.
    pub fn try_heal(&mut self) -> Result<HealAttempt, FleetError> {
        let mut live = self.host.materialize();
        let check = self.milr.detect(&live)?;
        if check.is_clean() {
            return Ok(HealAttempt {
                flagged: Vec::new(),
                healed_exact: Vec::new(),
                irrecoverable: Vec::new(),
            });
        }
        let recovery = self.milr.recover_layers(&mut live, &check.flagged)?;
        let irrecoverable = recovery.irrecoverable();
        let healed_exact: Vec<usize> = recovery
            .outcomes
            .iter()
            .filter(|(_, o)| o.is_exact())
            .map(|(i, _)| *i)
            .collect();
        if !healed_exact.is_empty() {
            self.host.write_back(&live, &healed_exact);
            self.host.store().flush().map_err(FleetError::Substrate)?;
        }
        Ok(HealAttempt {
            flagged: check.flagged,
            healed_exact,
            irrecoverable,
        })
    }

    /// Re-protects against the current live weights and commits the
    /// new (artifacts, weights) pair atomically to the store — the
    /// durable re-anchor that ends every successful heal or repair.
    ///
    /// # Errors
    ///
    /// Propagates protection and store-commit failures.
    pub fn reanchor(&mut self) -> Result<(), FleetError> {
        let live = self.host.materialize();
        self.milr = Milr::protect(&live, *self.milr.config())?;
        self.store
            .commit_reanchor(&self.milr, &live, self.host.store())?;
        Ok(())
    }
}
