//! Kill-at-every-seam coverage for a store-backed replica: a
//! [`StageHook`] panic "kills" the recovery drive at each integrity
//! stage seam, the replica (and its file handles) is dropped like a
//! crashed process, and the container is reopened through the full
//! scrub-on-load cold start. At every seam the reopened store must
//! admit a replica serving the certified old-or-new state — which for
//! an exactly-healable fault is always bit-equal to the golden model.

use milr_core::MilrConfig;
use milr_fleet::{Replica, RoundOutcome};
use milr_integrity::StageHook;
use milr_models::serving_probe;
use milr_store::{Store, StoreOptions};
use milr_substrate::SubstrateKind;
use milr_tensor::TensorRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

const SEAMS: [&str; 8] = [
    "Scrub",
    "Detect",
    "Heal",
    "Classify",
    "Escalate",
    "Verify",
    "Reprotect",
    "Anchor",
];

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("milr-seam-kill-{}-{name}.milr", std::process::id()))
}

#[test]
fn replica_store_survives_a_kill_at_every_seam() {
    let golden = serving_probe(33);
    let input = TensorRng::new(4).uniform_tensor(golden.input_shape());
    let expect: Vec<u32> = golden.forward_batch(std::slice::from_ref(&input)).unwrap()[0]
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    for seam in SEAMS {
        let path = temp(seam);
        let _ = std::fs::remove_file(&path);
        Store::create(
            &path,
            &golden,
            MilrConfig::default(),
            StoreOptions {
                kind: SubstrateKind::Secded,
                page_weights: 32,
            },
        )
        .unwrap();
        let (mut replica, _) = Replica::cold_start(0, &path, 8).unwrap();
        replica.host().corrupt_weight(0, 5);
        let mut armed = true;
        replica.attach_stage_hook(StageHook::new(move |stage| {
            if armed && stage == seam {
                armed = false;
                panic!("kill at {stage}");
            }
        }));
        // Drive scrub + heal; the hook kills the drive mid-flight the
        // first time it reaches the target seam. Seams an exact heal
        // never enters (e.g. Escalate) simply let the drive finish.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let chunk = replica.milr().checkable_layers();
            let tick = replica.tick(&chunk).expect("tick");
            if tick.detection.is_clean() {
                return;
            }
            loop {
                match replica.try_heal().expect("heal") {
                    RoundOutcome::Clean { .. } => break,
                    RoundOutcome::Retry { .. } => continue,
                    other => panic!("unexpected heal outcome: {other:?}"),
                }
            }
        }));
        // The "kill": all in-process state (and the poisoned hook) is
        // gone; only the container survives.
        drop(replica);
        let (reopened, _) =
            Replica::cold_start(0, &path, 8).unwrap_or_else(|e| panic!("reopen after {seam}: {e}"));
        let got: Vec<u32> = reopened
            .host()
            .forward_batch(std::slice::from_ref(&input))
            .unwrap()[0]
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(got, expect, "state not golden after kill at {seam}");
        let _ = std::fs::remove_file(&path);
    }
}
