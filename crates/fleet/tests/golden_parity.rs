//! Golden-seed parity: the unified integrity engine must be an exact
//! behavioural refactor of the five loops it replaced. These fixed-seed
//! runs were captured **before** the `crates/integrity` extraction;
//! every legacy report field (and the outcome digest, which hashes
//! every request's output bits) must stay byte-identical forever.
//!
//! The only additive change is the `pipeline` block appended to the
//! report JSON — asserted here by prefix-matching the pre-refactor
//! byte string.

use milr_core::MilrConfig;
use milr_fleet::FleetConfig;
use milr_serve::sim::SimConfig;
use milr_serve::{QuarantinePolicy, ServeReport};
use milr_substrate::SubstrateKind;

/// `serving_probe(11)`, `SimConfig::default()` — captured at PR 4.
const SERVE_DEFAULT: &str = "{\"seed\":6165246,\"policy\":\"drain\",\"submitted\":200,\
\"completed\":200,\"rejected\":0,\"reexecuted\":76,\"faults_injected\":2,\
\"scrub_corrected\":0,\"scrub_ticks\":23,\"quarantines\":2,\"layers_recovered\":2,\
\"durability_errors\":0,\"total_ns\":115000000,\"downtime_ns\":23000000,\
\"availability\":0.800000000,\"latency_mean_us\":30162.986,\"latency_p50_us\":31513.914,\
\"latency_p95_us\":48861.030,\"latency_max_us\":52346.619,\"digest\":12855914172184449660}";

/// `serving_probe(11)`, seed `0xD00D`, 120 requests, 1 fault, reject
/// policy — captured at PR 4.
const SERVE_REJECT: &str = "{\"seed\":53261,\"policy\":\"reject\",\"submitted\":120,\
\"completed\":67,\"rejected\":53,\"reexecuted\":0,\"faults_injected\":1,\
\"scrub_corrected\":0,\"scrub_ticks\":16,\"quarantines\":1,\"layers_recovered\":1,\
\"durability_errors\":0,\"total_ns\":75500000,\"downtime_ns\":11500000,\
\"availability\":0.847682119,\"latency_mean_us\":15038.921,\"latency_p50_us\":14738.177,\
\"latency_p95_us\":20425.638,\"latency_max_us\":21648.882,\"digest\":6611031403539652287}";

/// The fleet view of `serving_probe(11)`, `FleetConfig::default()` with
/// 100 requests, 2 faults + 1 heavy fault, plain substrate — captured
/// at PR 4.
const FLEET_HEAVY_FLEET: &str = "{\"seed\":990951,\"policy\":\"drain\",\"submitted\":100,\
\"completed\":100,\"rejected\":0,\"reexecuted\":18,\"faults_injected\":3,\
\"scrub_corrected\":0,\"scrub_ticks\":34,\"quarantines\":2,\"layers_recovered\":2,\
\"durability_errors\":0,\"total_ns\":60000000,\"downtime_ns\":0,\
\"availability\":1.000000000,\"latency_mean_us\":20202.411,\"latency_p50_us\":20355.248,\
\"latency_p95_us\":28576.373,\"latency_max_us\":31472.190,\"digest\":260079948217714707}";

/// Same run, the capacity aggregate — captured at PR 4, percentiles
/// re-captured at PR 7 when `ServeReport::aggregate` switched from
/// count-weighted percentile averaging (wrong for multimodal mixes) to
/// merging the per-replica latency histograms. Mean, max, digest, and
/// every count are bit-identical to the PR 4 capture; only p50/p95 moved
/// (and only within the histogram's ≤3.2% bucket width).
const FLEET_HEAVY_CAPACITY: &str = "{\"seed\":990951,\"policy\":\"drain\",\"submitted\":118,\
\"completed\":100,\"rejected\":0,\"reexecuted\":18,\"faults_injected\":3,\
\"scrub_corrected\":0,\"scrub_ticks\":34,\"quarantines\":2,\"layers_recovered\":2,\
\"durability_errors\":0,\"total_ns\":60000000,\"downtime_ns\":13666666,\
\"availability\":0.772222222,\"latency_mean_us\":20202.411,\"latency_p50_us\":20447.231,\
\"latency_p95_us\":28835.839,\"latency_max_us\":31472.190,\"digest\":14796408015967164088}";

/// Same run, the three per-replica digests in replica order.
const FLEET_HEAVY_REPLICA_DIGESTS: [u64; 3] = [
    17718110661062355280,
    7640538247473438064,
    1737466879885898915,
];

/// Asserts `report`'s legacy fields serialize byte-identically to the
/// pre-refactor `golden` JSON, with only the pipeline block appended.
fn assert_legacy_prefix(report: &ServeReport, golden: &str, what: &str) {
    let json = report.to_json();
    let prefix = &golden[..golden.len() - 1]; // drop the closing brace
    assert!(
        json.starts_with(prefix),
        "{what}: legacy report fields diverged from the pre-refactor capture\n  got: {json}\n  want prefix: {prefix}"
    );
    assert!(
        json[prefix.len()..].starts_with(",\"pipeline\":{"),
        "{what}: expected only the pipeline block appended, got: {}",
        &json[prefix.len()..]
    );
}

#[test]
fn serve_sim_default_seed_is_byte_identical_to_pre_refactor() {
    let model = milr_models::serving_probe(11);
    let result = milr_serve::simulate(&model, MilrConfig::default(), &SimConfig::default())
        .expect("seeded simulation is deterministic");
    assert_legacy_prefix(&result.report, SERVE_DEFAULT, "serve default");
    assert_eq!(result.report.digest, 12855914172184449660);
    // The engine's own accounting is deterministic too: two
    // quarantines, each healing one layer in one round, each verify
    // re-checking only the flagged layer.
    assert_eq!(result.report.pipeline.heal_rounds, 2);
    assert_eq!(result.report.pipeline.layers_healed, 2);
    assert_eq!(result.report.pipeline.fast_verifies, 2);
    assert!(result.report.pipeline.layers_skipped > 0);
    assert_eq!(result.report.pipeline.stage_ns.heal, 0, "virtual clock");
}

#[test]
fn serve_sim_reject_seed_is_byte_identical_to_pre_refactor() {
    let model = milr_models::serving_probe(11);
    let cfg = SimConfig {
        seed: 0xD00D,
        requests: 120,
        faults: 1,
        policy: QuarantinePolicy::Reject,
        ..SimConfig::default()
    };
    let result = milr_serve::simulate(&model, MilrConfig::default(), &cfg)
        .expect("seeded simulation is deterministic");
    assert_legacy_prefix(&result.report, SERVE_REJECT, "serve reject");
    assert_eq!(result.report.digest, 6611031403539652287);
}

#[test]
fn fleet_sim_heavy_seed_is_byte_identical_to_pre_refactor() {
    let model = milr_models::serving_probe(11);
    let cfg = FleetConfig {
        requests: 100,
        faults: 2,
        heavy_faults: 1,
        kind: SubstrateKind::Plain,
        ..FleetConfig::default()
    };
    let result = milr_fleet::simulate(&model, MilrConfig::default(), &cfg)
        .expect("seeded fleet simulation is deterministic");
    let r = &result.report;
    assert_legacy_prefix(&r.fleet, FLEET_HEAVY_FLEET, "fleet aggregate");
    assert_legacy_prefix(&r.capacity, FLEET_HEAVY_CAPACITY, "capacity aggregate");
    assert_eq!(r.peer_repairs(), 1);
    assert_eq!(r.repair_pages(), 4);
    assert_eq!(r.repair_bytes(), 864);
    for (rep, &digest) in r.per_replica.iter().zip(&FLEET_HEAVY_REPLICA_DIGESTS) {
        assert_eq!(
            rep.report.digest, digest,
            "replica {} digest diverged",
            rep.replica
        );
    }
    // The heavy fault escalated exactly one layer to peer repair.
    assert_eq!(r.fleet.pipeline.layers_escalated, 1);
    // Exact heals were re-anchored durably on the replicas; the peer
    // repair added one more anchor through its re-admission.
    assert_eq!(r.fleet.pipeline.anchors, r.fleet.pipeline.reprotects);
}

/// Observation must be provably non-perturbing: the same golden-seed
/// run with a trace recorder, a metrics registry, *and* a span ring
/// attached must reproduce every report byte and every digest of the
/// unobserved run. The SLO engines always run (they feed off the same
/// deterministic streams), so the `slo` block is part of the golden
/// bytes either way; only span collection and `AlertFired` emission
/// are observer-gated, and neither may perturb anything.
#[test]
fn fleet_sim_observed_run_is_byte_identical_to_unobserved() {
    use milr_obs::{MetricsRegistry, Observer, RingRecorder, SpanRing};
    use std::sync::Arc;

    let model = milr_models::serving_probe(11);
    let cfg = FleetConfig {
        requests: 100,
        faults: 2,
        heavy_faults: 1,
        kind: SubstrateKind::Plain,
        ..FleetConfig::default()
    };
    let recorder = Arc::new(RingRecorder::new(65_536));
    let metrics = Arc::new(MetricsRegistry::new());
    let spans = Arc::new(SpanRing::new(65_536));
    let obs = Observer::with_trace(recorder.clone())
        .and_metrics(metrics.clone())
        .and_spans(spans.clone());
    let observed = milr_fleet::simulate_observed(&model, MilrConfig::default(), &cfg, &obs)
        .expect("seeded fleet simulation is deterministic");
    let r = &observed.report;

    // Same pre-refactor legacy bytes and digests as the unobserved run.
    assert_legacy_prefix(&r.fleet, FLEET_HEAVY_FLEET, "observed fleet aggregate");
    assert_legacy_prefix(
        &r.capacity,
        FLEET_HEAVY_CAPACITY,
        "observed capacity aggregate",
    );
    assert_eq!(r.fleet.digest, 260079948217714707);
    for (rep, &digest) in r.per_replica.iter().zip(&FLEET_HEAVY_REPLICA_DIGESTS) {
        assert_eq!(
            rep.report.digest, digest,
            "observed replica {} digest diverged",
            rep.replica
        );
    }

    // And the observer actually observed: the fault campaign, the
    // quarantines, and the peer repair all landed in trace + metrics.
    let jsonl = recorder.to_jsonl();
    assert!(jsonl.contains("\"event\":\"FaultInjected\""));
    assert!(jsonl.contains("\"event\":\"Quarantine\""));
    assert!(jsonl.contains("\"event\":\"PeerRepair\""));
    assert_eq!(recorder.dropped(), 0, "ring must not overflow at this size");
    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter_value("serve_faults_injected_total"),
        Some(r.fleet.faults_injected as u64)
    );
    assert_eq!(
        snap.counter_value("serve_quarantines_total"),
        Some(r.fleet.quarantines as u64)
    );
    assert_eq!(snap.counter_value("fleet_peer_repairs_total"), Some(1));

    // Span collection observed too: every replica engine pushed timed
    // trees (scrub ticks, heal episodes) without touching a single
    // report byte above.
    assert!(!spans.is_empty(), "span ring must have collected trees");
    assert_eq!(spans.dropped(), 0, "span ring must not overflow");
    let span_jsonl = spans.to_jsonl();
    assert!(span_jsonl.contains("\"name\":\"tick\""));
    assert!(span_jsonl.contains("\"name\":\"heal_round\""));
}
