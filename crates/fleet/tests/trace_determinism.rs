//! Fleet trace determinism: the multi-replica simulation stamps events
//! with the shared virtual clock and sources them by replica index, so
//! a fixed seed must reproduce the interleaved JSONL stream
//! byte-for-byte — including the fleet-level router events.

use milr_core::MilrConfig;
use milr_fleet::{simulate_observed, FleetConfig};
use milr_obs::{Observer, RingRecorder, SpanRing, FLEET_SRC};
use milr_substrate::SubstrateKind;
use std::sync::Arc;

fn traced_run(cfg: &FleetConfig) -> String {
    let model = milr_models::serving_probe(11);
    let recorder = Arc::new(RingRecorder::new(262_144));
    let obs = Observer::with_trace(recorder.clone());
    simulate_observed(&model, MilrConfig::default(), cfg, &obs)
        .expect("seeded fleet simulation is deterministic");
    assert_eq!(recorder.dropped(), 0);
    recorder.to_jsonl()
}

#[test]
fn fleet_sim_trace_is_byte_identical_across_runs() {
    let cfg = FleetConfig {
        requests: 100,
        faults: 2,
        heavy_faults: 1,
        kind: SubstrateKind::Plain,
        ..FleetConfig::default()
    };
    let trace_a = traced_run(&cfg);
    let trace_b = traced_run(&cfg);
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "same seed must replay the same trace");

    let other = FleetConfig {
        seed: cfg.seed ^ 0x5EED,
        ..cfg
    };
    assert_ne!(trace_a, traced_run(&other));
}

#[test]
fn fleet_trace_sources_span_replicas() {
    let cfg = FleetConfig {
        requests: 100,
        faults: 2,
        heavy_faults: 1,
        kind: SubstrateKind::Plain,
        ..FleetConfig::default()
    };
    let jsonl = traced_run(&cfg);
    // Every replica shows up as an event source at least once (batches
    // dispatch on all of them under round-robin).
    for r in 0..cfg.replicas {
        let tag = format!("\"src\":{r},");
        assert!(jsonl.contains(&tag), "no events from replica {r}");
    }
    // The heavy fault forces a peer repair, which is stamped with the
    // receiving replica, and the per-replica quarantine/rejoin cycle
    // brackets it.
    assert!(jsonl.contains("\"event\":\"PeerRepair\""));
    assert!(jsonl.contains("\"event\":\"Quarantine\",\"entered\":true"));
    assert!(jsonl.contains("\"event\":\"Quarantine\",\"entered\":false"));
    // The fleet-level source is reserved for router-scope events; the
    // only such events today are fleet SLO burn-rate alerts, so any
    // line sourced there must be an `AlertFired`.
    let fleet_tag = format!("\"src\":{FLEET_SRC},");
    for line in jsonl.lines().filter(|l| l.contains(&fleet_tag)) {
        assert!(
            line.contains("\"event\":\"AlertFired\""),
            "unexpected fleet-scope event: {line}"
        );
    }
}

fn span_run(cfg: &FleetConfig) -> String {
    let model = milr_models::serving_probe(11);
    let ring = Arc::new(SpanRing::new(65_536));
    let obs = Observer::default().and_spans(ring.clone());
    simulate_observed(&model, MilrConfig::default(), cfg, &obs)
        .expect("seeded fleet simulation is deterministic");
    assert_eq!(ring.dropped(), 0);
    ring.to_jsonl()
}

#[test]
fn fleet_sim_span_jsonl_is_byte_identical_across_runs() {
    let cfg = FleetConfig {
        requests: 100,
        faults: 2,
        heavy_faults: 1,
        kind: SubstrateKind::Plain,
        ..FleetConfig::default()
    };
    let spans_a = span_run(&cfg);
    let spans_b = span_run(&cfg);
    assert!(!spans_a.is_empty(), "the campaign must emit span trees");
    assert_eq!(
        spans_a, spans_b,
        "same seed must replay the same span stream"
    );
    // Every replica engine contributes stage-timed trees: scrub ticks
    // everywhere, heal rounds on the quarantined replicas.
    assert!(spans_a.contains("\"name\":\"tick\""));
    assert!(spans_a.contains("\"name\":\"heal_round\""));

    let other = FleetConfig {
        seed: cfg.seed ^ 0x5EED,
        ..cfg
    };
    assert_ne!(spans_a, span_run(&other));
}
