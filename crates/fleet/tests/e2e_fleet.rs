//! End-to-end fleet serving under a seeded fault campaign (the PR's
//! acceptance scenario), on **all four substrate kinds**: three
//! replicas serve a batched workload while the campaign injects both
//! recoverable whole-weight faults and one beyond-MILR-capacity fault
//! (a whole partial-recoverability conv layer corrupted at once) into
//! the fleet. Asserts:
//!
//! 1. the damaged replica is **peer-repaired**: its on-disk weight
//!    pages end the run bit-identical to the healthy peers' certified
//!    stores (raw page equality, layer by layer);
//! 2. every completed request's output is bit-identical to the
//!    fault-free model's forward pass;
//! 3. **no request is lost during failover**: under the drain policy
//!    every request completes, and completed + rejected == submitted
//!    always;
//! 4. the run is **deterministic**: the same seed yields a
//!    byte-identical `ServeReport` aggregate (and full `FleetReport`)
//!    twice in a row; a different seed diverges.

use milr_core::MilrConfig;
use milr_fleet::{simulate, FleetConfig};
// Conv 0 is fully recoverable (exact MILR heals); conv 4 has
// partial-recoverability geometry (F²Z = 54 > G² = 4) — whole-layer
// corruption of it is beyond MILR's recoverable set and must take the
// peer-repair path.
use milr_models::serving_probe as fleet_model;
use milr_serve::{QuarantinePolicy, RequestStatus};
use milr_store::Store;
use milr_substrate::SubstrateKind;
use std::path::PathBuf;

fn campaign(seed: u64, kind: SubstrateKind, dir: Option<PathBuf>) -> FleetConfig {
    FleetConfig {
        seed,
        replicas: 3,
        kind,
        requests: 120,
        faults: 2,
        heavy_faults: 1,
        policy: QuarantinePolicy::Drain,
        dir,
        ..FleetConfig::default()
    }
}

fn temp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("milr-e2e-fleet-{}-{name}", std::process::id()))
}

#[test]
fn beyond_capacity_damage_is_peer_repaired_bit_exactly_on_every_substrate() {
    let golden = fleet_model(0xF1E & 0xFFFF);
    for kind in SubstrateKind::ALL {
        let dir = temp_dir(&format!("repair-{kind:?}"));
        let result = simulate(
            &golden,
            MilrConfig::default(),
            &campaign(71, kind, Some(dir.clone())),
        )
        .unwrap();
        let r = &result.report;
        // The campaign actually exercised the ladder.
        assert_eq!(r.fleet.faults_injected, 3, "{kind}");
        assert!(r.fleet.quarantines >= 1, "{kind}: no quarantine");
        assert_eq!(r.peer_repairs(), 1, "{kind}: heavy fault must use a peer");
        assert!(r.repair_pages() > 0 && r.repair_bytes() > 0, "{kind}");

        // (3) No request lost during failover: drain completes all.
        assert_eq!(r.fleet.completed, 120, "{kind}");
        assert_eq!(r.fleet.rejected, 0, "{kind}");
        assert!(r.fleet.reexecuted > 0, "{kind}: no failover hand-off");

        // (2) Completed outputs bit-equal the fault-free model.
        for o in &result.outcomes {
            let RequestStatus::Completed(out) = &o.status else {
                panic!("{kind}: request {} not completed under drain", o.id)
            };
            let expect = &golden
                .forward_batch(std::slice::from_ref(&o.input))
                .unwrap()[0];
            let ob: Vec<u32> = out.data().iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = expect.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ob, eb, "{kind}: request {} diverged", o.id);
        }

        // (1) The repaired replica's on-disk pages are bit-identical to
        // the healthy peers' certified stores, layer run by layer run.
        let stores: Vec<Store> = result
            .store_paths
            .iter()
            .map(|p| Store::open(p).unwrap())
            .collect();
        let layers: Vec<usize> = stores[0].layers().iter().map(|e| e.layer).collect();
        for &layer in &layers {
            let reference: Vec<Vec<u8>> = (0..stores[0].layer_page_count(layer))
                .map(|p| stores[0].read_layer_page_raw(layer, p).unwrap())
                .collect();
            for (i, store) in stores.iter().enumerate().skip(1) {
                for (p, want) in reference.iter().enumerate() {
                    let got = store.read_layer_page_raw(layer, p).unwrap();
                    assert_eq!(
                        &got, want,
                        "{kind}: layer {layer} page {p} of replica {i} diverged"
                    );
                }
            }
            // And every replica certifies the layer it now holds.
            for store in &stores {
                store.certified_layer_pages(layer).unwrap();
            }
        }
        drop(stores);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn same_seed_yields_byte_identical_fleet_aggregate() {
    let golden = fleet_model(0xD5D);
    for policy in [QuarantinePolicy::Drain, QuarantinePolicy::Reject] {
        let cfg = FleetConfig {
            policy,
            ..campaign(77, SubstrateKind::Secded, None)
        };
        let a = simulate(&golden, MilrConfig::default(), &cfg).unwrap();
        let b = simulate(&golden, MilrConfig::default(), &cfg).unwrap();
        // Byte-identical ServeReport aggregate (availability included)
        // and full fleet report, twice in a row.
        assert_eq!(
            a.report.fleet.availability.to_bits(),
            b.report.fleet.availability.to_bits(),
            "{policy:?}"
        );
        assert_eq!(a.report.fleet, b.report.fleet, "{policy:?}");
        assert_eq!(a.report, b.report, "{policy:?}");
        assert_eq!(a.report.to_json(), b.report.to_json(), "{policy:?}");
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x, y, "{policy:?}");
        }
    }
    // A different seed steers the campaign elsewhere.
    let a = simulate(
        &golden,
        MilrConfig::default(),
        &campaign(77, SubstrateKind::Secded, None),
    )
    .unwrap();
    let c = simulate(
        &golden,
        MilrConfig::default(),
        &campaign(78, SubstrateKind::Secded, None),
    )
    .unwrap();
    assert_ne!(a.report.fleet.digest, c.report.fleet.digest);
}

#[test]
fn whole_fleet_outage_under_reject_sheds_arrivals() {
    // Concentrate the campaign so hard that all three replicas are
    // down at once at some point: heavy faults on every replica.
    let golden = fleet_model(0xBAD);
    // Seed 2 is pinned because its campaign demonstrably overlaps all
    // three replicas' outages (the downtime assertion below enforces
    // that the overlap stays real).
    let cfg = FleetConfig {
        seed: 2,
        replicas: 3,
        kind: SubstrateKind::Plain,
        requests: 150,
        faults: 3,
        heavy_faults: 2,
        policy: QuarantinePolicy::Reject,
        ..FleetConfig::default()
    };
    let result = simulate(&golden, MilrConfig::default(), &cfg).unwrap();
    let r = &result.report;
    assert_eq!(
        r.fleet.completed + r.fleet.rejected,
        r.fleet.submitted,
        "every request resolves exactly once"
    );
    assert!(r.fleet.quarantines >= 2);
    // The campaign really did take the whole fleet down at some point
    // (otherwise the zero-serving arrival-shedding branch is untested)
    // and arrivals were shed during the outage.
    assert!(r.fleet.downtime_ns > 0, "no whole-fleet outage occurred");
    assert!(r.fleet.rejected > 0, "reject policy must shed arrivals");
    // Whatever completed is still bit-exact golden.
    for o in &result.outcomes {
        if let RequestStatus::Completed(out) = &o.status {
            let expect = &golden
                .forward_batch(std::slice::from_ref(&o.input))
                .unwrap()[0];
            assert_eq!(out.data(), expect.data(), "request {}", o.id);
        }
    }
}
