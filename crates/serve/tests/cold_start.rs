//! End-to-end persistence: a store written by one process, bit-flipped
//! **on disk** in raw (substrate) space, is reopened by a second
//! process which scrubs on load, heals via MILR, durably re-anchors
//! protection, and serves outputs bit-identical to the fault-free
//! model.
//!
//! "Two processes" is modeled by dropping every handle of phase 1
//! before phase 2 opens the path fresh — nothing but the file carries
//! state across the boundary (the same boundary
//! `examples/persistence.rs` walks through narratively).

use milr_core::MilrConfig;
use milr_nn::{Activation, Layer, Sequential};
use milr_serve::{ResponseHandle, Server, ServerConfig};
use milr_store::{Store, StoreOptions};
use milr_substrate::SubstrateKind;
use milr_tensor::{ConvSpec, Padding, PoolSpec, Tensor, TensorRng};
use std::path::PathBuf;
use std::time::Duration;

fn serving_model(seed: u64) -> Sequential {
    let mut rng = TensorRng::new(seed);
    let mut m = Sequential::new(vec![10, 10, 1]);
    let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
    m.push(Layer::conv2d_random(3, 1, 6, spec, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::bias_zero(6)).unwrap();
    m.push(Layer::Activation(Activation::Relu)).unwrap();
    m.push(Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()))
        .unwrap();
    m.push(Layer::conv2d_random(3, 6, 4, spec, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::bias_zero(4)).unwrap();
    m.push(Layer::Flatten).unwrap();
    m.push(Layer::dense_random(2 * 2 * 4, 5, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::Activation(Activation::Softmax)).unwrap();
    m
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("milr-e2e-{}-{name}.milr", std::process::id()))
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn store_survives_disk_faults_and_serves_golden_outputs() {
    for kind in SubstrateKind::ALL {
        let path = temp(&format!("survive-{kind:?}"));
        let golden = serving_model(91);

        // ---- Process 1: build → protect → save, then exit. ----------
        {
            Store::create(
                &path,
                &golden,
                MilrConfig::default(),
                StoreOptions {
                    kind,
                    page_weights: 64,
                },
            )
            .unwrap();
        }

        // ---- Disk corruption while no process runs. -----------------
        // Whole-weight damage in conv layer 0 (all raw bits of one
        // weight) plus a stray single bit in conv layer 4 — both in
        // substrate raw space, directly in the file. Conv layers heal
        // to exact golden bits (CRC-snapped recovery), which is what
        // lets the served outputs stay bit-identical.
        {
            let store = Store::open(&path).unwrap();
            let stride = store.layer_raw_bits(0) / golden.layers()[0].params().unwrap().numel();
            for bit in 17 * stride..18 * stride {
                store.flip_raw_bit(0, bit).unwrap();
            }
            // Bit 30 (an exponent bit on the plain substrate) so the
            // damage is large enough for tolerance-based detection;
            // low-order mantissa flips are the paper's documented
            // detection blind spot.
            store.flip_raw_bit(4, 30).unwrap();
        }

        // ---- Process 2: cold-start serving. -------------------------
        let (server, cold) = Server::start_from_store(
            &path,
            16,
            ServerConfig {
                workers: 2,
                scrub_interval: Duration::from_millis(1),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert!(
            !cold.was_clean(),
            "{kind}: injected faults must be visible at load"
        );
        let mut rng = TensorRng::new(5);
        let inputs: Vec<Tensor> = (0..10).map(|_| rng.uniform_tensor(&[10, 10, 1])).collect();
        let handles: Vec<ResponseHandle> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for (input, handle) in inputs.iter().zip(handles) {
            let out = handle.wait().unwrap();
            let expect = &golden.forward_batch(std::slice::from_ref(input)).unwrap()[0];
            assert_eq!(
                bits(&out),
                bits(expect),
                "{kind}: served output diverged from the fault-free model"
            );
        }
        let report = server.shutdown();
        assert_eq!(report.completed, 10, "{kind}");

        // ---- Process 3: the heal was durable. -----------------------
        let (server, cold) = Server::start_from_store(&path, 16, ServerConfig::default()).unwrap();
        assert!(
            cold.was_clean(),
            "{kind}: process 2's re-anchor was not durable: {cold:?}"
        );
        drop(server.shutdown());
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn live_heal_is_durable_across_restart() {
    // A fault lands while the server runs; the scrubber quarantines,
    // heals, and commits. A later cold start must find a certified
    // container — no faults, artifacts anchored to the served state.
    let path = temp("live-heal");
    let golden = serving_model(92);
    Store::create(
        &path,
        &golden,
        MilrConfig::default(),
        StoreOptions {
            kind: SubstrateKind::Secded,
            page_weights: 64,
        },
    )
    .unwrap();

    let (server, cold) = Server::start_from_store(
        &path,
        16,
        ServerConfig {
            workers: 2,
            scrub_interval: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    assert!(cold.was_clean());
    let mut rng = TensorRng::new(9);
    let inputs: Vec<Tensor> = (0..6).map(|_| rng.uniform_tensor(&[10, 10, 1])).collect();
    let handles: Vec<ResponseHandle> = inputs
        .iter()
        .map(|x| server.submit(x.clone()).unwrap())
        .collect();
    server.inject_weight_fault(0, 11);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server.quarantines() == 0 || server.is_quarantined() {
        assert!(
            std::time::Instant::now() < deadline,
            "scrubber never healed the live fault"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    for (input, handle) in inputs.iter().zip(handles) {
        let out = handle.wait().unwrap();
        let expect = &golden.forward_batch(std::slice::from_ref(input)).unwrap()[0];
        assert_eq!(bits(&out), bits(expect));
    }
    drop(server.shutdown());

    let (server, cold) = Server::start_from_store(&path, 16, ServerConfig::default()).unwrap();
    assert!(
        cold.was_clean(),
        "live heal was not committed durably: {cold:?}"
    );
    drop(server.shutdown());
    let _ = std::fs::remove_file(&path);
}
