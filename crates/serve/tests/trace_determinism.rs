//! Trace determinism: simulation traces are stamped with the virtual
//! clock, so a fixed seed must reproduce the JSONL event stream
//! byte-for-byte — and attaching the recorder must not perturb the run
//! itself (same report bytes, same digest).

use milr_core::MilrConfig;
use milr_obs::{EventKind, MetricsRegistry, Observer, RingRecorder, SpanRing, TraceSink};
use milr_serve::sim::SimConfig;
use milr_serve::{simulate, simulate_observed, QuarantinePolicy};
use std::sync::Arc;

fn traced_run(cfg: &SimConfig) -> (String, String) {
    let model = milr_models::serving_probe(11);
    let recorder = Arc::new(RingRecorder::new(65_536));
    let obs = Observer::with_trace(recorder.clone());
    let result = simulate_observed(&model, MilrConfig::default(), cfg, &obs)
        .expect("seeded simulation is deterministic");
    assert_eq!(recorder.dropped(), 0);
    (recorder.to_jsonl(), result.report.to_json())
}

#[test]
fn serve_sim_trace_is_byte_identical_across_runs() {
    let cfg = SimConfig::default();
    let (trace_a, report_a) = traced_run(&cfg);
    let (trace_b, report_b) = traced_run(&cfg);
    assert!(!trace_a.is_empty(), "the default campaign must emit events");
    assert_eq!(trace_a, trace_b, "same seed must replay the same trace");
    assert_eq!(report_a, report_b);

    // A different seed must actually change the stream (the equality
    // above is not vacuous).
    let other = SimConfig {
        seed: cfg.seed ^ 0x5EED,
        ..cfg
    };
    let (trace_c, _) = traced_run(&other);
    assert_ne!(trace_a, trace_c);
}

#[test]
fn serve_sim_observed_report_matches_unobserved() {
    let model = milr_models::serving_probe(11);
    let cfg = SimConfig {
        seed: 0xD00D,
        requests: 120,
        faults: 1,
        policy: QuarantinePolicy::Reject,
        ..SimConfig::default()
    };
    let plain = simulate(&model, MilrConfig::default(), &cfg).unwrap();
    let recorder = Arc::new(RingRecorder::new(65_536));
    let metrics = Arc::new(MetricsRegistry::new());
    let obs = Observer::with_trace(recorder.clone()).and_metrics(metrics.clone());
    let observed = simulate_observed(&model, MilrConfig::default(), &cfg, &obs).unwrap();

    assert_eq!(plain.report.to_json(), observed.report.to_json());
    assert_eq!(plain.report.digest, observed.report.digest);

    // Metrics agree with the report's own accounting.
    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter_value("serve_faults_injected_total"),
        Some(observed.report.faults_injected as u64)
    );
    assert_eq!(
        snap.counter_value("serve_quarantines_total"),
        Some(observed.report.quarantines as u64)
    );
    let lat = snap.histogram_named("serve_latency_ns").expect("latency");
    assert_eq!(lat.count(), observed.report.completed as u64);
}

fn span_run(cfg: &SimConfig) -> String {
    let model = milr_models::serving_probe(11);
    let ring = Arc::new(SpanRing::new(65_536));
    let obs = Observer::default().and_spans(ring.clone());
    simulate_observed(&model, MilrConfig::default(), cfg, &obs)
        .expect("seeded simulation is deterministic");
    assert_eq!(ring.dropped(), 0);
    ring.to_jsonl()
}

#[test]
fn serve_sim_span_jsonl_is_byte_identical_across_runs() {
    let cfg = SimConfig::default();
    let spans_a = span_run(&cfg);
    let spans_b = span_run(&cfg);
    assert!(
        !spans_a.is_empty(),
        "the default campaign must emit span trees"
    );
    assert_eq!(
        spans_a, spans_b,
        "same seed must replay the same span stream"
    );
    // The stream carries both the modeled serving trees and the
    // integrity engine's stage-timed trees.
    assert!(spans_a.contains("\"name\":\"batch\""));
    assert!(spans_a.contains("\"name\":\"tick\""));
    assert!(spans_a.contains("\"name\":\"heal_round\""));

    // Not vacuous: a different seed reshuffles the virtual timeline.
    let other = SimConfig {
        seed: cfg.seed ^ 0x5EED,
        ..cfg
    };
    assert_ne!(spans_a, span_run(&other));
}

#[test]
fn trace_events_are_well_formed_jsonl() {
    let model = milr_models::serving_probe(11);
    let recorder = Arc::new(RingRecorder::new(65_536));
    let obs = Observer::with_trace(recorder.clone());
    simulate_observed(&model, MilrConfig::default(), &SimConfig::default(), &obs).unwrap();

    let jsonl = recorder.to_jsonl();
    assert!(jsonl.ends_with('\n'));
    let mut last_ns = 0u64;
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"ns\":"), "bad line: {line}");
        assert!(line.ends_with('}'), "bad line: {line}");
        assert!(line.contains("\"event\":\""), "bad line: {line}");
        // The virtual clock never runs backwards.
        let ns: u64 = line["{\"ns\":".len()..line.find(',').unwrap()]
            .parse()
            .expect("ns field is a bare integer");
        assert!(ns >= last_ns, "clock went backwards: {line}");
        last_ns = ns;
    }
    // The default fault campaign exercises the full episode shape.
    for needle in [
        "\"event\":\"FaultInjected\"",
        "\"event\":\"ScrubFlagged\"",
        "\"event\":\"Quarantine\"",
        "\"event\":\"StageEntered\"",
        "\"event\":\"HealOutcome\"",
        "\"event\":\"BatchDispatched\"",
    ] {
        assert!(jsonl.contains(needle), "missing {needle}");
    }
}

#[test]
fn ring_recorder_overwrites_oldest_and_counts_drops() {
    let recorder = RingRecorder::new(4);
    for i in 0..10u64 {
        recorder.record(milr_obs::TraceEvent {
            ns: i,
            src: 0,
            kind: EventKind::BatchDispatched {
                occupancy: i as u32,
            },
        });
    }
    assert_eq!(recorder.dropped(), 6);
    let jsonl = recorder.to_jsonl();
    assert_eq!(jsonl.lines().count(), 4);
    assert!(jsonl.starts_with("{\"ns\":6,"), "oldest kept must be #6");
}
