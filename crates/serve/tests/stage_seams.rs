//! Kill-at-every-seam coverage for the integrity engine as the serving
//! stack drives it: a [`StageHook`] snapshots the seams an episode
//! crosses (and must cross them identically run over run), and a
//! panic-injected "kill" at **each** seam must leave the in-memory
//! state restartable — a fresh engine, like a rebooted recovery
//! driver, takes the surviving state to a certified-clean model whose
//! outputs are bit-equal to the fault-free golden weights.

use milr_core::{Milr, MilrConfig};
use milr_integrity::{
    Budget, EscalationPolicy, IntegrityPipeline, ModelHost, RoundOutcome, StageHook, Volatile,
};
use milr_models::serving_probe;
use milr_substrate::SubstrateKind;
use milr_tensor::TensorRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Every stage seam of the engine, in ladder order.
const SEAMS: [&str; 8] = [
    "Scrub",
    "Detect",
    "Heal",
    "Classify",
    "Escalate",
    "Verify",
    "Reprotect",
    "Anchor",
];

/// One scrub tick plus heal rounds until the engine reports clean —
/// the recovery drive both the simulator and the threaded server run.
fn drive_to_clean(pipeline: &mut IntegrityPipeline, host: &ModelHost, milr: &mut Milr) {
    let chunk = milr.checkable_layers();
    let tick = pipeline
        .tick(host, &*milr, &chunk, &mut Volatile)
        .expect("tick");
    if tick.detection.is_clean() {
        return;
    }
    loop {
        match pipeline
            .heal_round(host, milr, &mut Volatile)
            .expect("heal")
        {
            RoundOutcome::Clean { .. } => break,
            RoundOutcome::Retry { .. } => continue,
            other => panic!("unexpected heal outcome: {other:?}"),
        }
    }
}

fn assert_golden(host: &ModelHost, golden: &milr_nn::Sequential) {
    let input = TensorRng::new(9).uniform_tensor(golden.input_shape());
    let expect = &golden.forward_batch(std::slice::from_ref(&input)).unwrap()[0];
    let got = &host.forward_batch(std::slice::from_ref(&input)).unwrap()[0];
    let gb: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
    let eb: Vec<u32> = expect.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(gb, eb, "outputs diverged from the fault-free model");
}

#[test]
fn seam_snapshot_is_deterministic_and_in_ladder_order() {
    let golden = serving_probe(21);
    let snapshot = || -> Vec<&'static str> {
        let mut milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
        let host = ModelHost::new(&golden, &|c| SubstrateKind::Secded.store(c));
        let mut pipeline = IntegrityPipeline::new(EscalationPolicy::Quarantine, Budget::default());
        let log = Arc::new(Mutex::new(Vec::new()));
        {
            let log = Arc::clone(&log);
            pipeline.attach_stage_hook(StageHook::new(move |stage| {
                log.lock().unwrap().push(stage);
            }));
        }
        host.corrupt_weight(0, 2);
        drive_to_clean(&mut pipeline, &host, &mut milr);
        let log = log.lock().unwrap().clone();
        log
    };
    let a = snapshot();
    let b = snapshot();
    assert_eq!(a, b, "seam crossings are not reproducible");
    // The episode walks the ladder: scrub/detect first, then the heal
    // tail through re-protect and re-anchor, in order.
    for window in [
        &["Scrub", "Detect"][..],
        &["Heal", "Classify"][..],
        &["Verify", "Reprotect", "Anchor"][..],
    ] {
        let pos: Vec<Option<usize>> = window
            .iter()
            .map(|s| a.iter().position(|x| x == s))
            .collect();
        assert!(
            pos.iter().all(Option::is_some),
            "missing seams {window:?} in {a:?}"
        );
        assert!(
            pos.windows(2).all(|w| w[0] < w[1]),
            "seams {window:?} out of order in {a:?}"
        );
    }
}

#[test]
fn heal_is_restartable_after_a_kill_at_every_seam() {
    let golden = serving_probe(22);
    for seam in SEAMS {
        let mut milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
        let host = ModelHost::new(&golden, &|c| SubstrateKind::Secded.store(c));
        let mut pipeline = IntegrityPipeline::new(EscalationPolicy::Quarantine, Budget::default());
        host.corrupt_weight(0, 3);
        let mut armed = true;
        pipeline.attach_stage_hook(StageHook::new(move |stage| {
            if armed && stage == seam {
                armed = false;
                panic!("kill at {stage}");
            }
        }));
        let first = catch_unwind(AssertUnwindSafe(|| {
            drive_to_clean(&mut pipeline, &host, &mut milr)
        }));
        if first.is_err() {
            // "Reboot": a fresh engine (no hook, fresh budget) over
            // whatever state the kill left behind. Stage-seam kills may
            // leave the substrate mid-heal and the protection instance
            // old *or* new — both must be drivable to clean.
            let mut pipeline =
                IntegrityPipeline::new(EscalationPolicy::Quarantine, Budget::default());
            drive_to_clean(&mut pipeline, &host, &mut milr);
        }
        assert!(
            milr.detect(&host.materialize()).unwrap().is_clean(),
            "state not certifiable after kill at {seam}"
        );
        assert_golden(&host, &golden);
    }
}
