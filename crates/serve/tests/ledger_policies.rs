//! `CertificationLedger` quarantine-policy semantics, observed through
//! the seeded simulation, plus the re-protect rebaseline property the
//! recovery path depends on.
//!
//! * **Drain**: a flagged scrub voids everything uncertified and
//!   re-queues it — clients eventually get certified outputs for every
//!   request (`rejected == 0`, `reexecuted > 0`), and whatever is
//!   released went through a bracketing clean scrub cycle, so it is
//!   bit-identical to the fault-free model.
//! * **Reject**: voided suspect work is completed with errors instead
//!   of re-executed (`reexecuted == 0`, `rejected > 0` with the
//!   quarantine reason), trading correctness-latency for fast failure.
//! * **Re-protect rebaselines the CRC grid**: after an approximate
//!   (min-norm) heal, the *old* artifacts' CRC grids disagree with the
//!   healed weights forever — running recovery against them would
//!   re-flag and mutate the layer every time. Re-protecting anchors a
//!   new grid to the healed bits, making recovery a bit-exact no-op.

use milr_core::{Milr, MilrConfig, RecoveryOutcome};
use milr_models::serving_probe as model;
use milr_serve::sim::{simulate, SimConfig};
use milr_serve::{QuarantinePolicy, RejectReason, RequestStatus};
use milr_tensor::TensorRng;

#[test]
fn drain_reexecutes_voided_work_and_releases_only_certified_outputs() {
    let golden = model(0x1ED6E);
    let cfg = SimConfig {
        seed: 41,
        requests: 200,
        faults: 2,
        policy: QuarantinePolicy::Drain,
        ..SimConfig::default()
    };
    let result = simulate(&golden, MilrConfig::default(), &cfg).unwrap();
    let r = &result.report;
    assert!(r.quarantines >= 1, "campaign must quarantine");
    assert_eq!(r.rejected, 0, "drain never rejects");
    assert_eq!(r.completed, cfg.requests, "drain completes everything");
    assert!(r.reexecuted > 0, "voided suspect work must re-execute");
    // Certified-then-released: every output equals the fault-free
    // model's bits even though faults were live during serving.
    for o in &result.outcomes {
        let RequestStatus::Completed(out) = &o.status else {
            panic!("request {} not completed under drain", o.id)
        };
        let expect = &golden
            .forward_batch(std::slice::from_ref(&o.input))
            .unwrap()[0];
        let ob: Vec<u32> = out.data().iter().map(|v| v.to_bits()).collect();
        let eb: Vec<u32> = expect.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ob, eb, "request {} released uncertified bits", o.id);
    }
}

#[test]
fn reject_voids_suspect_work_with_errors_instead_of_reexecuting() {
    let golden = model(0x1ED6E);
    let cfg = SimConfig {
        seed: 41,
        requests: 200,
        faults: 2,
        policy: QuarantinePolicy::Reject,
        ..SimConfig::default()
    };
    let result = simulate(&golden, MilrConfig::default(), &cfg).unwrap();
    let r = &result.report;
    assert!(r.quarantines >= 1, "campaign must quarantine");
    assert_eq!(r.reexecuted, 0, "reject never re-executes voided work");
    assert!(r.rejected > 0, "reject must shed");
    assert_eq!(r.completed + r.rejected, r.submitted);
    let quarantine_rejects = result
        .outcomes
        .iter()
        .filter(|o| matches!(o.status, RequestStatus::Rejected(RejectReason::Quarantined)))
        .count();
    assert!(
        quarantine_rejects > 0,
        "at least one rejection must carry the quarantine reason"
    );
    // Whatever completed is still certified-golden.
    for o in &result.outcomes {
        if let RequestStatus::Completed(out) = &o.status {
            let expect = &golden
                .forward_batch(std::slice::from_ref(&o.input))
                .unwrap()[0];
            assert_eq!(out.data(), expect.data(), "request {}", o.id);
        }
    }
}

#[test]
fn reprotect_rebaselines_the_crc_grid_after_an_approximate_heal() {
    // Whole-layer corruption of the partial-recoverability conv (layer
    // 4: F²Z = 54 unknowns vs G² = 4 equations) heals approximately.
    let golden = model(0xCAC);
    let old_milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
    let mut healed = golden.clone();
    {
        let params = healed.layers_mut()[4].params_mut().unwrap().data_mut();
        let mut rng = TensorRng::new(99);
        for v in params.iter_mut() {
            *v = rng.uniform();
        }
    }
    let check = old_milr.detect(&healed).unwrap();
    assert_eq!(check.flagged, vec![4]);
    let rec = old_milr.recover_layers(&mut healed, &[4]).unwrap();
    assert!(
        matches!(rec.outcomes[0].1, RecoveryOutcome::MinNorm { .. }),
        "whole-layer corruption of a partial layer must be min-norm: {:?}",
        rec.outcomes
    );
    assert!(!rec.all_exact());
    assert_eq!(rec.irrecoverable(), vec![4]);
    // The approximate heal reproduces the golden flow, but the weights
    // are NOT the golden bits.
    let golden_bits: Vec<u32> = golden.layers()[4]
        .params()
        .unwrap()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let healed_bits: Vec<u32> = healed.layers()[4]
        .params()
        .unwrap()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_ne!(golden_bits, healed_bits);

    // WITHOUT re-protection: the old CRC grids disagree with the healed
    // weights, so recovery keeps flagging suspects and re-solving —
    // the grid is poisoned for every future localization.
    let mut again = healed.clone();
    let rec_old = old_milr.recover_layers(&mut again, &[4]).unwrap();
    assert!(
        matches!(rec_old.outcomes[0].1, RecoveryOutcome::MinNorm { .. }),
        "stale grids must keep flagging the approximate heal: {:?}",
        rec_old.outcomes
    );

    // WITH re-protection: the healed state is the new baseline — its
    // grids match bit-for-bit, detection is clean, and recovery is a
    // bit-exact no-op ("every CRC matches: leave them be").
    let new_milr = Milr::protect(&healed, MilrConfig::default()).unwrap();
    assert!(new_milr.detect(&healed).unwrap().is_clean());
    let mut noop = healed.clone();
    let rec_new = new_milr.recover_layers(&mut noop, &[4]).unwrap();
    assert!(
        matches!(rec_new.outcomes[0].1, RecoveryOutcome::Full),
        "{:?}",
        rec_new.outcomes
    );
    let noop_bits: Vec<u32> = noop.layers()[4]
        .params()
        .unwrap()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(
        noop_bits, healed_bits,
        "rebaselined recovery must not move bits"
    );
}
