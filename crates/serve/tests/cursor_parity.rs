//! `ScrubCursor` parity: a chunked incremental `detect_layers` sweep
//! over one full cursor cycle flags **exactly** the layer set a
//! one-shot full detection reports — for every substrate kind and
//! every chunk size. This is the property the certification protocol
//! stands on: if incremental sweeping could miss (or invent) a flag,
//! a clean cycle would certify batches computed on dirty weights.

use milr_core::{Milr, MilrConfig};
use milr_models::serving_probe as model;
use milr_serve::{ModelHost, ScrubCursor};
use milr_substrate::SubstrateKind;

/// Drives the cursor through exactly one full cycle, detecting each
/// tick's chunk against the host's decoded weights, and returns the
/// union of flags plus the certification watermark (if the cycle came
/// back clean).
fn sweep_once(
    host: &ModelHost,
    milr: &Milr,
    cursor: &mut ScrubCursor,
    start: u64,
) -> (Vec<usize>, Option<u64>) {
    let mut flagged = Vec::new();
    let mut watermark = None;
    for tick in 0..cursor.ticks_per_cycle() {
        let now = start + tick as u64;
        let chunk = cursor.begin_tick(now);
        let live = host.materialize_layers(&chunk);
        let report = milr.detect_layers(&live, &chunk).unwrap();
        flagged.extend(report.flagged.iter().copied());
        if let Some(cycle_start) = cursor.finish_tick(!report.is_clean(), now) {
            watermark = Some(cycle_start);
        }
    }
    flagged.sort_unstable();
    flagged.dedup();
    (flagged, watermark)
}

#[test]
fn chunked_sweep_flags_exactly_the_full_detection_set_per_kind() {
    let golden = model(0xC0C0);
    let milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
    let checkable = milr.checkable_layers();
    assert_eq!(checkable, vec![0, 1, 4, 5, 7]);
    for kind in SubstrateKind::ALL {
        let host = ModelHost::new(&golden, &|c| kind.store(c));
        // Clean host: every chunking certifies with no flags.
        for chunk in 1..=checkable.len() {
            let mut cursor = ScrubCursor::new(checkable.clone(), chunk);
            let (flags, watermark) = sweep_once(&host, &milr, &mut cursor, 100);
            assert!(flags.is_empty(), "{kind} chunk {chunk}: phantom flags");
            assert_eq!(watermark, Some(100), "{kind} chunk {chunk}");
        }
        // Corrupt two layers in different segments plus a bias word.
        host.corrupt_weight(0, 7);
        host.corrupt_weight(7, 3);
        host.corrupt_weight(5, 1);
        let full = milr.detect(&host.materialize()).unwrap();
        assert!(!full.is_clean(), "{kind}: corruption must be visible");
        for chunk in 1..=checkable.len() {
            let mut cursor = ScrubCursor::new(checkable.clone(), chunk);
            let (flags, watermark) = sweep_once(&host, &milr, &mut cursor, 200);
            assert_eq!(
                flags, full.flagged,
                "{kind} chunk {chunk}: incremental sweep diverged from one-shot detection"
            );
            assert_eq!(
                watermark, None,
                "{kind} chunk {chunk}: a flagged cycle must not certify"
            );
        }
    }
}

#[test]
fn parity_survives_mid_cycle_reset() {
    // A quarantine abandons the in-progress sweep; the next full cycle
    // must still match one-shot detection exactly.
    let golden = model(0xC1C1);
    let milr = Milr::protect(&golden, MilrConfig::default()).unwrap();
    let checkable = milr.checkable_layers();
    for kind in SubstrateKind::ALL {
        let host = ModelHost::new(&golden, &|c| kind.store(c));
        host.corrupt_weight(4, 11);
        let full = milr.detect(&host.materialize()).unwrap();
        let mut cursor = ScrubCursor::new(checkable.clone(), 2);
        // Partial sweep, then reset (as the quarantine path does).
        let chunk = cursor.begin_tick(10);
        let live = host.materialize_layers(&chunk);
        let _ = milr.detect_layers(&live, &chunk).unwrap();
        cursor.finish_tick(false, 10);
        cursor.reset();
        let (flags, _) = sweep_once(&host, &milr, &mut cursor, 20);
        assert_eq!(flags, full.flagged, "{kind}: reset broke sweep parity");
    }
}
