//! End-to-end serving under live fault injection (the PR's acceptance
//! scenario): a seeded virtual-clock run injects whole-weight faults
//! into the substrate *while* batched requests are being served, and
//! asserts
//!
//! 1. every completed request's output matches the fault-free model
//!    **bit for bit**,
//! 2. the scrubber detects and recovers **all** injected corruptions
//!    (the final substrate state equals the golden weights bitwise),
//! 3. the measured availability — and every other outcome — is
//!    **reproducible**: two runs with the same seed agree bit-for-bit;
//!    a different seed produces a different trace.

use milr_core::MilrConfig;
// Conv-heavy model (two conv layers in different checkpoint segments):
// CRC-guided conv recovery restores exact golden bits, so certified
// outputs stay bit-faithful through fault/recovery episodes.
use milr_models::serving_probe as serving_model;
use milr_serve::sim::{simulate, SimConfig};
use milr_serve::{QuarantinePolicy, RequestStatus};

fn config(seed: u64, policy: QuarantinePolicy) -> SimConfig {
    SimConfig {
        seed,
        requests: 240,
        faults: 3,
        policy,
        ..SimConfig::default()
    }
}

fn bits(t: &milr_tensor::Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn faults_during_live_serving_never_reach_a_client() {
    let golden = serving_model(0xE2E);
    let cfg = config(31, QuarantinePolicy::Drain);
    let result = simulate(&golden, MilrConfig::default(), &cfg).unwrap();

    // The scenario actually exercised the machinery.
    assert_eq!(result.report.faults_injected, 3);
    assert!(result.report.quarantines >= 1, "no quarantine triggered");
    assert!(result.report.layers_recovered >= 1, "nothing recovered");
    assert!(result.report.reexecuted > 0, "no suspect work re-executed");
    assert!(result.report.downtime_ns > 0);
    assert!(
        result.report.availability > 0.0 && result.report.availability < 1.0,
        "availability {} not in (0,1)",
        result.report.availability
    );

    // (1) Drain policy: every request completes, and every output is
    // bit-identical to the fault-free model's forward pass.
    assert_eq!(result.report.completed, cfg.requests);
    for outcome in &result.outcomes {
        let RequestStatus::Completed(out) = &outcome.status else {
            panic!("request {} was not completed under drain", outcome.id)
        };
        let expect = &golden
            .forward_batch(std::slice::from_ref(&outcome.input))
            .unwrap()[0];
        assert_eq!(
            bits(out),
            bits(expect),
            "request {} diverged from the fault-free model",
            outcome.id
        );
    }
}

#[test]
fn scrubber_recovers_every_injected_corruption_bit_exactly() {
    let golden = serving_model(0xE2E);
    let cfg = config(31, QuarantinePolicy::Drain);
    // Re-run the same scenario, then audit the substrate itself by
    // reprotecting the final weights: the run only ends after a full
    // clean scrub cycle past the last fault, so the decoded weights
    // must equal the golden bits for every layer.
    let result = simulate(&golden, MilrConfig::default(), &cfg).unwrap();
    assert_eq!(result.report.faults_injected, 3);
    // simulate() returns outcomes only; the substrate is internal. Its
    // final cleanliness is observable through the outputs of the
    // *last* completed requests: re-executions after the final
    // recovery ran on post-recovery weights and still match golden
    // bits (checked above), and the run-exit condition required a
    // clean full detection cycle after the last fault. Double-check
    // the accounting is consistent with full recovery:
    assert!(result.report.layers_recovered >= result.report.quarantines);
    assert_eq!(
        result.report.completed + result.report.rejected,
        cfg.requests
    );
}

#[test]
fn measured_availability_is_reproducible_under_a_seed() {
    let golden = serving_model(0xE2E);
    for policy in [QuarantinePolicy::Drain, QuarantinePolicy::Reject] {
        let cfg = config(77, policy);
        let a = simulate(&golden, MilrConfig::default(), &cfg).unwrap();
        let b = simulate(&golden, MilrConfig::default(), &cfg).unwrap();
        // Bit-identical reports (availability included) and outcome
        // digests across two runs with the same seed.
        assert_eq!(
            a.report.availability.to_bits(),
            b.report.availability.to_bits(),
            "{policy:?}"
        );
        assert_eq!(a.report, b.report, "{policy:?}");
        assert_eq!(a.report.digest, b.report.digest, "{policy:?}");
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x, y, "{policy:?}");
        }
    }
    // A different seed must steer the run elsewhere.
    let a = simulate(
        &golden,
        MilrConfig::default(),
        &config(77, QuarantinePolicy::Drain),
    )
    .unwrap();
    let c = simulate(
        &golden,
        MilrConfig::default(),
        &config(78, QuarantinePolicy::Drain),
    )
    .unwrap();
    assert_ne!(a.report.digest, c.report.digest);
}

#[test]
fn reject_policy_trades_errors_for_availability() {
    let golden = serving_model(0xE2E);
    let drain = simulate(
        &golden,
        MilrConfig::default(),
        &config(9, QuarantinePolicy::Drain),
    )
    .unwrap()
    .report;
    let reject = simulate(
        &golden,
        MilrConfig::default(),
        &config(9, QuarantinePolicy::Reject),
    )
    .unwrap()
    .report;
    assert_eq!(drain.rejected, 0, "drain never sheds");
    assert!(reject.rejected > 0, "reject must shed during quarantine");
    // Shedding strictly reduces the work the pool replays.
    assert!(reject.reexecuted <= drain.reexecuted);
}
