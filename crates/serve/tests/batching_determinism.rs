//! Determinism of the continuous-batching admission loop on the
//! virtual clock, and its golden-parity contract: coalescing changes
//! *when* requests dispatch, never *what* they compute — outputs (and
//! therefore the outcome digest) are invariant to the admission
//! deadline, and every fixed-seed report serializes byte-identically
//! across runs. (The `batch_wait_ns == 0` schedule itself is locked
//! against the pre-refactor captures by the fleet golden-parity suite.)

use milr_core::MilrConfig;
use milr_serve::sim::SimConfig;
use milr_serve::simulate;

/// Fixed seeds must reproduce byte-for-byte — with the legacy
/// immediate dispatch and with a live admission deadline, under the
/// default fault campaign (which exercises the quarantine path that
/// cancels a pending deadline).
#[test]
fn sim_reports_are_byte_identical_across_runs() {
    let model = milr_models::serving_probe(11);
    for wait in [0u64, 600_000] {
        let cfg = SimConfig {
            batch_wait_ns: wait,
            ..SimConfig::default()
        };
        let a = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        let b = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        assert_eq!(
            a.report.to_json(),
            b.report.to_json(),
            "wait {wait}: same seed must reproduce the same report bytes"
        );
        assert_eq!(a.report.completed + a.report.rejected, a.report.submitted);
    }
}

/// Holding partial batches behind the deadline coalesces arrivals into
/// fewer, fuller batches — without changing a single output bit.
#[test]
fn coalescing_raises_occupancy_without_changing_outputs() {
    let model = milr_models::serving_probe(11);
    let base = SimConfig {
        requests: 120,
        faults: 0,
        workers: 2,
        // Arrivals land faster than one batch's base cost, so eager
        // dispatch ships fragments while a short wait fills batches.
        mean_arrival_ns: 700_000,
        ..SimConfig::default()
    };
    let eager = simulate(&model, MilrConfig::default(), &base).unwrap();
    let waited = simulate(
        &model,
        MilrConfig::default(),
        &SimConfig {
            batch_wait_ns: 2_000_000,
            ..base
        },
    )
    .unwrap();
    assert_eq!(eager.report.completed, 120);
    assert_eq!(waited.report.completed, 120);
    assert!(
        waited.report.batch_occupancy > eager.report.batch_occupancy,
        "coalescing must raise occupancy: eager {:.3} vs waited {:.3}",
        eager.report.batch_occupancy,
        waited.report.batch_occupancy
    );
    assert!(
        waited.report.batches < eager.report.batches,
        "coalescing must cut batch count: eager {} vs waited {}",
        eager.report.batches,
        waited.report.batches
    );
    assert_eq!(
        waited.report.digest, eager.report.digest,
        "outputs must be invariant to admission batching"
    );
}
