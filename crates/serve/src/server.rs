//! The live multi-threaded inference server: the same control plane as
//! the deterministic simulation ([`crate::sim`]), run on real worker
//! threads and the wall clock.
//!
//! A [`Server`] owns a [`ModelHost`] (weights in substrate shards), a
//! bounded admission queue drained by a worker pool, and a **scrubber
//! daemon** that each tick runs the substrate's own scrub plus an
//! incremental MILR detection chunk. Outputs are released through the
//! certification ledger exactly as in the simulation: only after a
//! full clean scrub cycle brackets them. On a flagged layer the
//! scrubber quarantines the service (drain or reject per policy), runs
//! MILR recovery against the substrate, verifies, and resumes.

use crate::ledger::CertificationLedger;
use crate::metrics::{DowntimeLog, LatencyStats};
use crate::report::{outcome_digest, ServeReport};
use crate::request::{QuarantinePolicy, RejectReason, RequestOutcome, RequestStatus};
use crate::scrubber::ScrubCursor;
use milr_core::{Milr, MilrConfig};
use milr_integrity::{
    Budget, DurabilityPolicy, EscalationPolicy, IntegrityPipeline, Journaled, ModelHost,
    RoundOutcome, TickOutcome, Volatile,
};
use milr_nn::Sequential;
use milr_obs::{
    AtomicHistogram, Counter, EventKind, Gauge, MetricsRegistry, MetricsSnapshot, SloAlert,
    SloEngine, SloKind, SpanHandle, SpanTree, TraceHandle,
};
use milr_substrate::{SubstrateKind, WeightSubstrate};
use milr_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which decode path workers use to run a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// Fused decode-forward: each parameterized layer pulls its shard
    /// through the host's epoch-tagged plaintext cache, so steady-state
    /// batches never take a shard lock or decode the substrate.
    #[default]
    Fused,
    /// Decode the whole model into a fresh [`Sequential`] per batch —
    /// the pre-cache behavior, kept so benchmarks can measure the
    /// fused path against it.
    LegacyMaterialize,
}

/// Live-server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker pool size.
    pub workers: usize,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch.
    pub batch_max: usize,
    /// Continuous-batching admission deadline: a worker holds a partial
    /// batch for up to this long waiting for more arrivals before
    /// dispatching (full batches always go out at once). `ZERO`
    /// disables coalescing — workers dispatch whatever is queued the
    /// moment they wake, the legacy behavior.
    pub batch_wait: Duration,
    /// Scrubber cadence.
    pub scrub_interval: Duration,
    /// Checkable layers examined per scrub tick.
    pub layers_per_tick: usize,
    /// Quarantine policy.
    pub policy: QuarantinePolicy,
    /// Substrate kind backing each layer shard.
    pub substrate: SubstrateKind,
    /// Decode path used by workers.
    pub read_path: ReadPath,
    /// Optional structured trace sink. Live-server events are stamped
    /// with wall time since server start (the sim stamps virtual time
    /// instead — same event schema, different clock domain).
    pub trace: Option<TraceHandle>,
    /// Optional span sink: worker batch trees (batch → decode →
    /// forward → layer×N), engine stage trees from the scrubber, and —
    /// for store-backed servers — journal commit and re-anchor trees
    /// all land here, stamped with wall time since server start.
    pub spans: Option<SpanHandle>,
    /// Optional live-introspection bind address (e.g. `"127.0.0.1:0"`
    /// for an ephemeral port). When set, a zero-dependency HTTP
    /// listener ([`crate::http`]) answers `GET /metrics`, `/health`,
    /// `/slo`, and `/spans` for the server's lifetime;
    /// [`Server::http_addr`] reports the bound port.
    pub http_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 256,
            batch_max: 8,
            batch_wait: Duration::ZERO,
            scrub_interval: Duration::from_millis(2),
            layers_per_tick: 2,
            policy: QuarantinePolicy::Drain,
            substrate: SubstrateKind::Plain,
            read_path: ReadPath::Fused,
            trace: None,
            spans: None,
            http_addr: None,
        }
    }
}

/// Why a submission or wait failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request was completed without an output.
    Rejected(RejectReason),
    /// The server was already shut down at submission.
    Stopped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(reason) => write!(f, "request rejected: {}", reason.name()),
            ServeError::Stopped => write!(f, "server stopped"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Client-side handle to one submitted request.
#[derive(Debug)]
pub struct ResponseHandle {
    id: u64,
    rx: Receiver<Result<Tensor, ServeError>>,
}

impl ResponseHandle {
    /// The request's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request is certified (or rejected).
    ///
    /// # Errors
    ///
    /// Returns the rejection reason, or [`ServeError::Stopped`] when
    /// the server dropped the request without resolving it.
    pub fn wait(self) -> Result<Tensor, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Stopped))
    }
}

struct PendingRequest {
    id: u64,
    input: Tensor,
    arrival_ns: u64,
    tx: Sender<Result<Tensor, ServeError>>,
}

struct CompletedBatch {
    requests: Vec<PendingRequest>,
    outputs: Vec<Tensor>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Serving,
    Quarantined,
}

struct Inner {
    queue: VecDeque<PendingRequest>,
    status: Status,
    /// Start of the current availability segment: the last instant the
    /// serving/quarantined state flipped (or server start). Each flip
    /// feeds the elapsed segment into the availability SLO window.
    avail_mark: u64,
    epoch: u64,
    next_id: u64,
    in_flight: usize,
    ledger: CertificationLedger<CompletedBatch>,
    cursor: ScrubCursor,
    downtime: DowntimeLog,
    latencies: Vec<u64>,
    outcomes: Vec<RequestOutcome>,
    submitted: usize,
    completed: usize,
    rejected: usize,
    reexecuted: usize,
    faults_injected: usize,
    scrub_ticks: usize,
    quarantines: usize,
    batches: usize,
    full_batches: usize,
    batched_requests: usize,
}

/// Pre-registered metrics handles: all recording below is lock-free
/// atomics on preallocated storage, so the fused clean path never
/// takes a lock or allocates for observability.
struct ServerObs {
    latency: Arc<AtomicHistogram>,
    batch_wait: Arc<AtomicHistogram>,
    occupancy: Arc<AtomicHistogram>,
    ledger_hold: Arc<AtomicHistogram>,
    queue_depth: Arc<Gauge>,
    faults: Arc<Counter>,
    quarantines: Arc<Counter>,
}

impl ServerObs {
    fn register(metrics: &MetricsRegistry) -> Self {
        ServerObs {
            latency: metrics.histogram("serve_latency_ns"),
            batch_wait: metrics.histogram("serve_batch_wait_ns"),
            occupancy: metrics.histogram("serve_batch_occupancy"),
            ledger_hold: metrics.histogram("serve_ledger_hold_ns"),
            queue_depth: metrics.gauge("serve_queue_depth"),
            faults: metrics.counter("serve_faults_injected_total"),
            quarantines: metrics.counter("serve_quarantines_total"),
        }
    }
}

struct Shared {
    host: ModelHost,
    /// The protection instance. Mutable because recovery re-anchors it
    /// to the healed state; only the scrubber and shutdown touch it.
    milr: Mutex<Milr>,
    /// The shared integrity engine (scrub/detect ticks and heal
    /// episodes); only the scrubber drives it, shutdown reads its
    /// report. Lock order: `milr` before `pipeline` before `store`.
    pipeline: Mutex<IntegrityPipeline>,
    /// Present for store-backed servers: heals are flushed through its
    /// journal and re-anchors committed atomically to its container.
    store: Option<Mutex<milr_store::Store>>,
    config: ServerConfig,
    start: Instant,
    inner: Mutex<Inner>,
    work_cv: Condvar,
    stop: AtomicBool,
    metrics: Arc<MetricsRegistry>,
    obs: ServerObs,
    /// Burn-rate SLO evaluation over the live streams (availability
    /// segments, per-request latencies, heal exactness, durability).
    /// Leaf lock: taken while holding `inner`, `milr`, or `pipeline`,
    /// and never the other way around.
    slo: Mutex<SloEngine>,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    #[inline]
    fn emit(&self, now: u64, kind: EventKind) {
        if let Some(trace) = &self.config.trace {
            trace.emit(now, 0, kind);
        }
    }

    /// Emits burn-rate alert rising edges on the trace (wall-stamped,
    /// like every other live-server event).
    fn fire_alerts(&self, alerts: Vec<SloAlert>) {
        for a in alerts {
            self.emit(
                a.ns,
                EventKind::AlertFired {
                    slo: a.spec,
                    burn_milli: a.burn_milli,
                },
            );
        }
    }

    /// Feeds one good/bad sample into the SLO engine.
    fn slo_observe(&self, now: u64, kind: SloKind, good: u64, bad: u64) {
        let alerts = self
            .slo
            .lock()
            .expect("slo lock poisoned")
            .observe(now, kind, good, bad);
        self.fire_alerts(alerts);
    }

    fn resolve(&self, inner: &mut Inner, now: u64, req: PendingRequest, status: RequestStatus) {
        match &status {
            RequestStatus::Completed(out) => {
                inner.completed += 1;
                let latency = now.saturating_sub(req.arrival_ns);
                self.obs.latency.record(latency);
                inner.latencies.push(latency);
                let alerts = self
                    .slo
                    .lock()
                    .expect("slo lock poisoned")
                    .observe_latency(now, latency);
                self.fire_alerts(alerts);
                let _ = req.tx.send(Ok(out.clone()));
            }
            RequestStatus::Rejected(reason) => {
                inner.rejected += 1;
                let _ = req.tx.send(Err(ServeError::Rejected(*reason)));
            }
        }
        inner.outcomes.push(RequestOutcome {
            id: req.id,
            input: req.input,
            status,
            arrival_ns: req.arrival_ns,
            resolved_ns: now,
        });
    }
}

/// A running inference server. Dropping it without
/// [`Server::shutdown`] aborts outstanding requests with
/// [`ServeError::Stopped`].
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    scrubber: Option<JoinHandle<()>>,
    http: Option<JoinHandle<()>>,
    http_addr: Option<std::net::SocketAddr>,
}

impl Server {
    /// Protects `golden`, moves its weights into substrate shards, and
    /// starts the worker pool plus the scrubber daemon.
    ///
    /// # Errors
    ///
    /// Propagates MILR protection failures.
    pub fn start(
        golden: &Sequential,
        milr_config: MilrConfig,
        config: ServerConfig,
    ) -> milr_core::Result<Self> {
        let substrate = config.substrate;
        let build = move |c: &[f32]| -> Box<dyn WeightSubstrate> { substrate.store(c) };
        let milr = Milr::protect(golden, milr_config)?;
        let host = ModelHost::new(golden, &build);
        Ok(Self::start_with(host, milr, None, config))
    }

    /// Cold-starts from a persistent `.milr` container: opens the
    /// store (running its crash recovery), scrubs on load, heals any
    /// disk faults and durably re-anchors protection
    /// ([`crate::cold_start`]) — only then starts the worker pool and
    /// admits traffic. The scrubber daemon flushes subsequent heals
    /// through the store's journal and commits every re-anchor
    /// atomically. `config.substrate` is ignored — the substrate kind
    /// comes from the container.
    ///
    /// # Errors
    ///
    /// Propagates store open/commit and MILR failures; refuses to
    /// serve a container whose faults cannot be healed.
    pub fn start_from_store(
        path: &std::path::Path,
        cache_pages: usize,
        config: ServerConfig,
    ) -> Result<(Self, crate::ColdStartReport), milr_store::StoreError> {
        let mut store = milr_store::Store::open(path)?;
        let (host, milr, report) = crate::cold_start(&mut store, cache_pages)?;
        Ok((Self::start_with(host, milr, Some(store), config), report))
    }

    /// Shared tail of both constructors: assembles the control plane
    /// and spawns the worker pool plus the scrubber daemon.
    fn start_with(
        host: ModelHost,
        milr: Milr,
        store: Option<milr_store::Store>,
        config: ServerConfig,
    ) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "need a non-empty queue");
        assert!(config.batch_max > 0, "need a non-empty batch");
        let cursor = ScrubCursor::new(milr.checkable_layers(), config.layers_per_tick);
        // Give-up-and-resume on budget exhaustion (the next scrub
        // cycle re-quarantines); durability is best-effort per episode.
        // The Reprotect gate is mandatory here: faults can land
        // concurrently with recovery, so only a snapshot that passed a
        // full detection may become the new protection baseline.
        let mut pipeline = IntegrityPipeline::new(EscalationPolicy::Quarantine, Budget::default())
            .with_wall_timing()
            .with_reprotect_gate();
        if let Some(trace) = &config.trace {
            pipeline.attach_trace(trace.clone(), 0);
        }
        if let Some(spans) = &config.spans {
            pipeline.attach_spans(spans.clone());
        }
        let start = Instant::now();
        // Store-backed servers also time every journal commit step
        // (write → fsync → apply → retire) into the same ring.
        if let (Some(store), Some(spans)) = (&store, &config.spans) {
            store.journal().set_spans(spans.clone(), start);
        }
        let metrics = Arc::new(MetricsRegistry::new());
        let obs = ServerObs::register(&metrics);
        let shared = Arc::new(Shared {
            host,
            milr: Mutex::new(milr),
            pipeline: Mutex::new(pipeline),
            store: store.map(Mutex::new),
            config,
            start,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                status: Status::Serving,
                avail_mark: 0,
                epoch: 0,
                next_id: 0,
                in_flight: 0,
                ledger: CertificationLedger::default(),
                cursor,
                downtime: DowntimeLog::default(),
                latencies: Vec::new(),
                outcomes: Vec::new(),
                submitted: 0,
                completed: 0,
                rejected: 0,
                reexecuted: 0,
                faults_injected: 0,
                scrub_ticks: 0,
                quarantines: 0,
                batches: 0,
                full_batches: 0,
                batched_requests: 0,
            }),
            work_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            metrics,
            obs,
            slo: Mutex::new(SloEngine::serving_defaults()),
        });
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let scrubber = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || scrubber_loop(&shared))
        };
        let (http, http_addr) = match &shared.config.http_addr {
            Some(addr) => {
                let listener = std::net::TcpListener::bind(addr)
                    .expect("failed to bind the live introspection listener");
                let bound = listener
                    .local_addr()
                    .expect("introspection listener has a local address");
                let shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || {
                    let stop = {
                        let shared = Arc::clone(&shared);
                        move || shared.stop.load(Ordering::Acquire)
                    };
                    crate::http::serve_until(listener, stop, move |method, path| {
                        introspect(&shared, method, path)
                    });
                });
                (Some(handle), Some(bound))
            }
            None => (None, None),
        };
        Server {
            shared,
            workers,
            scrubber: Some(scrubber),
            http,
            http_addr,
        }
    }

    /// The bound address of the live introspection listener, when
    /// [`ServerConfig::http_addr`] was set (port 0 requests resolve to
    /// the actual ephemeral port here).
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http_addr
    }

    /// Submits one request (input in the model's per-image shape).
    /// Resolution is asynchronous: outputs are released only once
    /// certified.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the queue is full or a
    /// reject-policy quarantine is shedding; [`ServeError::Stopped`]
    /// after shutdown.
    pub fn submit(&self, input: Tensor) -> Result<ResponseHandle, ServeError> {
        if self.shared.stop.load(Ordering::Acquire) {
            return Err(ServeError::Stopped);
        }
        let now = self.shared.now_ns();
        let (tx, rx) = channel();
        let mut inner = self.shared.inner.lock().expect("lock poisoned");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.submitted += 1;
        if inner.status == Status::Quarantined
            && self.shared.config.policy == QuarantinePolicy::Reject
        {
            let req = PendingRequest {
                id,
                input,
                arrival_ns: now,
                tx,
            };
            self.shared.resolve(
                &mut inner,
                now,
                req,
                RequestStatus::Rejected(RejectReason::Quarantined),
            );
            return Err(ServeError::Rejected(RejectReason::Quarantined));
        }
        if inner.queue.len() >= self.shared.config.queue_capacity {
            let req = PendingRequest {
                id,
                input,
                arrival_ns: now,
                tx,
            };
            self.shared.resolve(
                &mut inner,
                now,
                req,
                RequestStatus::Rejected(RejectReason::QueueFull),
            );
            return Err(ServeError::Rejected(RejectReason::QueueFull));
        }
        inner.queue.push_back(PendingRequest {
            id,
            input,
            arrival_ns: now,
            tx,
        });
        self.shared.obs.queue_depth.set(inner.queue.len() as i64);
        drop(inner);
        self.shared.work_cv.notify_one();
        Ok(ResponseHandle { id, rx })
    }

    /// Injects a whole-weight fault into the live substrate (testing /
    /// demonstration hook; the scrubber must find and heal it).
    ///
    /// # Panics
    ///
    /// Panics when `layer` is not substrate-backed or `weight` is out
    /// of range.
    pub fn inject_weight_fault(&self, layer: usize, weight: usize) {
        self.shared.host.corrupt_weight(layer, weight);
        self.shared
            .inner
            .lock()
            .expect("lock poisoned")
            .faults_injected += 1;
        self.shared.obs.faults.inc();
        self.shared.emit(
            self.shared.now_ns(),
            EventKind::FaultInjected {
                layer: layer as u32,
                weight: weight as u64,
            },
        );
    }

    /// A point-in-time snapshot of the server's metrics registry —
    /// latency/batch histograms, queue-depth gauge, fault and
    /// quarantine counters. Exportable as JSON or Prometheus text via
    /// [`MetricsSnapshot`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared
            .metrics
            .gauge("substrate_epoch_total")
            .set(self.shared.host.store().epoch_total() as i64);
        self.shared.metrics.snapshot()
    }

    /// True while a quarantine is in progress.
    pub fn is_quarantined(&self) -> bool {
        self.shared.inner.lock().expect("lock poisoned").status == Status::Quarantined
    }

    /// Quarantine episodes so far.
    pub fn quarantines(&self) -> usize {
        self.shared.inner.lock().expect("lock poisoned").quarantines
    }

    /// Stops accepting work, drains certification, joins all threads,
    /// and returns the run report. Requests still unresolved after the
    /// final certification flush are rejected with
    /// [`RejectReason::Shutdown`].
    pub fn shutdown(mut self) -> ServeReport {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(s) = self.scrubber.take() {
            let _ = s.join();
        }
        if let Some(h) = self.http.take() {
            let _ = h.join();
        }
        let now = self.shared.now_ns();
        let mut inner = self.shared.inner.lock().expect("lock poisoned");
        // Final certification flush: one full detection pass at `now`
        // brackets everything that already finished.
        let live = self.shared.host.materialize();
        let clean = self
            .shared
            .milr
            .lock()
            .expect("lock poisoned")
            .detect(&live)
            .map(|r| r.is_clean())
            .unwrap_or(false);
        if clean {
            for batch in inner.ledger.certify_before(now) {
                for (req, out) in batch.requests.into_iter().zip(batch.outputs) {
                    self.shared
                        .resolve(&mut inner, now, req, RequestStatus::Completed(out));
                }
            }
        }
        for batch in inner.ledger.invalidate() {
            for req in batch.requests {
                self.shared.resolve(
                    &mut inner,
                    now,
                    req,
                    RequestStatus::Rejected(RejectReason::Shutdown),
                );
            }
        }
        while let Some(req) = inner.queue.pop_front() {
            self.shared.resolve(
                &mut inner,
                now,
                req,
                RequestStatus::Rejected(RejectReason::Shutdown),
            );
        }
        inner.downtime.close_at(now);
        let pipeline = self
            .shared
            .pipeline
            .lock()
            .expect("pipeline lock poisoned")
            .report()
            .clone();
        // Close the SLO windows: the trailing availability segment,
        // then the lifetime durability tally (anchors committed vs
        // best-effort failures).
        let tail = now.saturating_sub(inner.avail_mark);
        inner.avail_mark = now;
        if inner.status == Status::Serving {
            self.shared.slo_observe(now, SloKind::Availability, tail, 0);
        } else {
            self.shared.slo_observe(now, SloKind::Availability, 0, tail);
        }
        self.shared.slo_observe(
            now,
            SloKind::Durability,
            pipeline.anchors as u64,
            pipeline.durability_errors as u64,
        );
        let slo = self
            .shared
            .slo
            .lock()
            .expect("slo lock poisoned")
            .report(now);
        ServeReport {
            seed: 0,
            policy: self.shared.config.policy.name().to_string(),
            submitted: inner.submitted,
            completed: inner.completed,
            rejected: inner.rejected,
            reexecuted: inner.reexecuted,
            faults_injected: inner.faults_injected,
            scrub_corrected: pipeline.scrub_corrected,
            scrub_ticks: inner.scrub_ticks,
            quarantines: inner.quarantines,
            layers_recovered: pipeline.layers_healed,
            durability_errors: pipeline.durability_errors,
            total_ns: now,
            downtime_ns: inner.downtime.total_ns(now),
            availability: inner.downtime.availability(now),
            latency: LatencyStats::from_ns(&inner.latencies),
            batches: inner.batches,
            full_batches: inner.full_batches,
            batch_occupancy: if inner.batches == 0 {
                0.0
            } else {
                inner.batched_requests as f64 / inner.batches as f64
            },
            digest: outcome_digest(&inner.outcomes),
            pipeline,
            slo: Some(slo),
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let mut inner = shared.inner.lock().expect("lock poisoned");
        loop {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            if inner.status == Status::Serving && !inner.queue.is_empty() {
                break;
            }
            inner = shared.work_cv.wait(inner).expect("lock poisoned");
        }
        // Continuous-batching admission: hold a partial batch until the
        // deadline lapses or the queue fills, so later arrivals coalesce
        // into it instead of dispatching a fragment per wake-up.
        let wait = shared.config.batch_wait;
        if !wait.is_zero() && inner.queue.len() < shared.config.batch_max {
            let deadline = Instant::now() + wait;
            while inner.status == Status::Serving
                && !inner.queue.is_empty()
                && inner.queue.len() < shared.config.batch_max
                && !shared.stop.load(Ordering::Acquire)
            {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                inner = shared
                    .work_cv
                    .wait_timeout(inner, deadline - now)
                    .expect("lock poisoned")
                    .0;
            }
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            if inner.status != Status::Serving || inner.queue.is_empty() {
                continue; // quarantined or drained while waiting
            }
        }
        let n = inner.queue.len().min(shared.config.batch_max);
        let requests: Vec<PendingRequest> = inner.queue.drain(..n).collect();
        let epoch = inner.epoch;
        inner.in_flight += 1;
        inner.batches += 1;
        inner.batched_requests += n;
        if n == shared.config.batch_max {
            inner.full_batches += 1;
        }
        shared.obs.queue_depth.set(inner.queue.len() as i64);
        drop(inner);
        let dispatch_ns = shared.now_ns();
        shared.obs.occupancy.record(n as u64);
        for req in &requests {
            shared
                .obs
                .batch_wait
                .record(dispatch_ns.saturating_sub(req.arrival_ns));
        }
        shared.emit(
            dispatch_ns,
            EventKind::BatchDispatched {
                occupancy: n as u32,
            },
        );

        // Compute outside the state lock. The fused path decodes each
        // layer's shard through the host's epoch-tagged cache (a clean
        // steady-state batch takes no shard lock at all); shard reads
        // are per-shard atomic either way, and certification handles
        // cross-shard races.
        let inputs: Vec<Tensor> = requests.iter().map(|r| r.input.clone()).collect();
        let outputs = match shared.config.read_path {
            ReadPath::Fused => match &shared.config.spans {
                // Traced fused path: one wall-clock span tree per batch
                // (batch → decode → forward → layer×N) into the ring.
                Some(spans) => {
                    let mut clock = || shared.now_ns();
                    let mut tree = SpanTree::default();
                    tree.open(clock(), "batch", n as u64);
                    let out = shared
                        .host
                        .forward_batch_traced(&inputs, &mut clock, &mut tree);
                    spans.push_all(tree.finish(shared.now_ns()));
                    out
                }
                None => shared.host.forward_batch(&inputs),
            },
            ReadPath::LegacyMaterialize => shared.host.materialize().forward_batch(&inputs),
        }
        .expect("inputs validated against the model shape at submission");

        let mut inner = shared.inner.lock().expect("lock poisoned");
        // Stamp under the lock: acquisition order keeps ledger stamps
        // monotone across workers.
        let now = shared.now_ns();
        inner.in_flight -= 1;
        if inner.epoch != epoch {
            // A quarantine started while we computed: outputs suspect.
            match shared.config.policy {
                QuarantinePolicy::Drain => {
                    inner.reexecuted += requests.len();
                    for req in requests.into_iter().rev() {
                        inner.queue.push_front(req);
                    }
                }
                QuarantinePolicy::Reject => {
                    for req in requests {
                        shared.resolve(
                            &mut inner,
                            now,
                            req,
                            RequestStatus::Rejected(RejectReason::Quarantined),
                        );
                    }
                }
            }
        } else {
            inner
                .ledger
                .record(now, CompletedBatch { requests, outputs });
        }
        drop(inner);
        shared.work_cv.notify_all();
    }
}

/// Runs one engine call with the server's durability policy: journaled
/// best-effort when a store backs the host (failed flushes/commits are
/// logged and counted, serving continues), volatile otherwise.
/// Lock order: `milr` (held by the caller where needed) → `pipeline`
/// (held by the caller) → `store` (taken here).
fn with_durability<T>(shared: &Shared, f: impl FnOnce(&mut dyn DurabilityPolicy) -> T) -> T {
    match &shared.store {
        Some(store) => {
            let mut store = store.lock().expect("store lock poisoned");
            let mut policy = Journaled::best_effort(&mut store);
            if let Some(spans) = &shared.config.spans {
                let start = shared.start;
                policy = policy.with_spans(
                    spans.clone(),
                    Box::new(move || start.elapsed().as_nanos() as u64),
                );
            }
            f(&mut policy)
        }
        None => f(&mut Volatile),
    }
}

fn scrubber_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::Acquire) {
        // Sleep in short slices so shutdown never waits a full tick.
        let mut slept = Duration::ZERO;
        while slept < shared.config.scrub_interval {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            let step = (shared.config.scrub_interval - slept).min(Duration::from_millis(1));
            std::thread::sleep(step);
            slept += step;
        }
        let now = shared.now_ns();
        let chunk = {
            let mut inner = shared.inner.lock().expect("lock poisoned");
            inner.scrub_ticks += 1;
            inner.cursor.begin_tick(now)
        };
        // Scrub + Detect stages of the shared engine: ECC corrections
        // are heals — journaled before anything certifies on top.
        let TickOutcome { detection, .. } = {
            let milr = shared.milr.lock().expect("lock poisoned");
            let mut pipeline = shared.pipeline.lock().expect("pipeline lock poisoned");
            pipeline.set_now(now);
            with_durability(shared, |dur| {
                pipeline.tick(&shared.host, &milr, &chunk, dur)
            })
            .expect("materialized model matches the protected structure")
        };
        let flagged = !detection.is_clean();

        let mut inner = shared.inner.lock().expect("lock poisoned");
        if let Some(watermark) = inner.cursor.finish_tick(flagged, now) {
            for (finish, batch) in inner.ledger.certify_before_stamped(watermark) {
                shared.obs.ledger_hold.record(now.saturating_sub(finish));
                for (req, out) in batch.requests.into_iter().zip(batch.outputs) {
                    shared.resolve(&mut inner, now, req, RequestStatus::Completed(out));
                }
            }
        }
        if !flagged {
            continue;
        }

        // Quarantine: void uncertified work and stop dispatch.
        inner.status = Status::Quarantined;
        inner.epoch += 1;
        inner.quarantines += 1;
        inner.downtime.open_at(now);
        shared.obs.quarantines.inc();
        shared.emit(now, EventKind::Quarantine { entered: true });
        // The serving segment that just ended is availability-good.
        let up = now.saturating_sub(inner.avail_mark);
        inner.avail_mark = now;
        shared.slo_observe(now, SloKind::Availability, up, 0);
        let voided = inner.ledger.invalidate();
        match shared.config.policy {
            QuarantinePolicy::Drain => {
                let mut reqs: Vec<PendingRequest> =
                    voided.into_iter().flat_map(|b| b.requests).collect();
                reqs.sort_by_key(|r| r.id);
                inner.reexecuted += reqs.len();
                for req in reqs.into_iter().rev() {
                    inner.queue.push_front(req);
                }
            }
            QuarantinePolicy::Reject => {
                for batch in voided {
                    for req in batch.requests {
                        shared.resolve(
                            &mut inner,
                            now,
                            req,
                            RequestStatus::Rejected(RejectReason::Quarantined),
                        );
                    }
                }
                while let Some(req) = inner.queue.pop_front() {
                    shared.resolve(
                        &mut inner,
                        now,
                        req,
                        RequestStatus::Rejected(RejectReason::Quarantined),
                    );
                }
            }
        }
        drop(inner);

        // Recover outside the state lock (workers are paused by
        // status); the scrubber is the only milr user while serving.
        // The engine runs heal rounds to completion: write-backs reach
        // disk through the journal, a clean verify re-protects so an
        // approximate heal cannot leave the stored CRC grids out of
        // sync with storage, and the re-anchor commits atomically. On
        // budget exhaustion it gives up (Quarantine policy) and the
        // next tick re-quarantines.
        {
            let mut milr = shared.milr.lock().expect("lock poisoned");
            let mut pipeline = shared.pipeline.lock().expect("pipeline lock poisoned");
            pipeline.set_now(shared.now_ns());
            let heals_before = {
                let r = pipeline.report();
                (r.heals_exact, r.heals_approx)
            };
            let outcome = with_durability(shared, |dur| pipeline.run(&shared.host, &mut milr, dur))
                .expect("recovery propagates only solver errors");
            debug_assert!(matches!(
                outcome,
                RoundOutcome::Clean { .. } | RoundOutcome::GaveUp { .. }
            ));
            let (exact, approx) = {
                let r = pipeline.report();
                (
                    (r.heals_exact - heals_before.0) as u64,
                    (r.heals_approx - heals_before.1) as u64,
                )
            };
            if exact + approx > 0 {
                shared.slo_observe(shared.now_ns(), SloKind::HealExactness, exact, approx);
            }
        }

        let now = shared.now_ns();
        let mut inner = shared.inner.lock().expect("lock poisoned");
        inner.status = Status::Serving;
        inner.downtime.close_at(now);
        shared.emit(now, EventKind::Quarantine { entered: false });
        // The quarantine window that just closed is availability-bad.
        let down = now.saturating_sub(inner.avail_mark);
        inner.avail_mark = now;
        shared.slo_observe(now, SloKind::Availability, 0, down);
        inner.cursor.reset();
        drop(inner);
        shared.work_cv.notify_all();
    }
}

/// Answers one live-introspection request against the control plane.
/// Read-only: every endpoint snapshots state under short-lived locks,
/// so probing never stalls serving.
fn introspect(shared: &Shared, method: &str, path: &str) -> crate::http::HttpResponse {
    use crate::http::HttpResponse;
    if method != "GET" {
        return HttpResponse::new(405, "text/plain; charset=utf-8", "method not allowed\n");
    }
    let now = shared.now_ns();
    match path {
        "/metrics" => {
            shared
                .metrics
                .gauge("substrate_epoch_total")
                .set(shared.host.store().epoch_total() as i64);
            shared.metrics.export_self_stats(None);
            HttpResponse::new(
                200,
                "text/plain; version=0.0.4",
                shared.metrics.snapshot().to_prometheus(),
            )
        }
        "/health" => {
            let (status, quarantines) = {
                let inner = shared.inner.lock().expect("lock poisoned");
                (inner.status, inner.quarantines)
            };
            let pass = shared
                .slo
                .lock()
                .expect("slo lock poisoned")
                .report(now)
                .pass;
            let serving = status == Status::Serving;
            let body = format!(
                "{{\"status\":\"{}\",\"slo_pass\":{},\"quarantines\":{},\"uptime_ns\":{}}}\n",
                if serving { "serving" } else { "quarantined" },
                pass,
                quarantines,
                now,
            );
            // Readiness: quarantined replicas answer 503 so a probe
            // can route around them; a blown budget alone stays 200
            // (still serving) but reports `slo_pass:false`.
            HttpResponse::new(if serving { 200 } else { 503 }, "application/json", body)
        }
        "/slo" => {
            let mut slo = shared.slo.lock().expect("slo lock poisoned");
            let report = slo.report(now);
            let burns = slo.burn_rates(now);
            let names: Vec<&'static str> = slo.specs().iter().map(|s| s.name).collect();
            drop(slo);
            let mut body = String::from("{\"report\":");
            body.push_str(&report.to_json());
            body.push_str(",\"burn_rates\":[");
            for (i, ((fast, slow), name)) in burns.iter().zip(&names).enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!(
                    "{{\"slo\":\"{name}\",\"fast\":{fast:.6},\"slow\":{slow:.6}}}"
                ));
            }
            body.push_str("]}\n");
            HttpResponse::new(200, "application/json", body)
        }
        "/spans" => {
            let body = match &shared.config.spans {
                Some(spans) => spans.ring().to_jsonl(),
                None => String::new(),
            };
            HttpResponse::new(200, "application/x-ndjson", body)
        }
        _ => HttpResponse::not_found(),
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(s) = self.scrubber.take() {
            let _ = s.join();
        }
        if let Some(h) = self.http.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::serving_model;
    use milr_tensor::TensorRng;

    #[test]
    fn serves_certified_golden_outputs() {
        let golden = serving_model(21);
        let server = Server::start(
            &golden,
            MilrConfig::default(),
            ServerConfig {
                workers: 2,
                scrub_interval: Duration::from_millis(1),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut rng = TensorRng::new(77);
        let inputs: Vec<Tensor> = (0..20).map(|_| rng.uniform_tensor(&[10, 10, 1])).collect();
        let handles: Vec<ResponseHandle> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for (input, handle) in inputs.iter().zip(handles) {
            let out = handle.wait().unwrap();
            let expect = &golden.forward_batch(std::slice::from_ref(input)).unwrap()[0];
            assert_eq!(
                out.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expect
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
        }
        let report = server.shutdown();
        assert_eq!(report.completed, 20);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.quarantines, 0);
    }

    #[test]
    fn heals_a_live_fault_and_keeps_outputs_golden() {
        let golden = serving_model(22);
        let server = Server::start(
            &golden,
            MilrConfig::default(),
            ServerConfig {
                workers: 2,
                scrub_interval: Duration::from_millis(1),
                policy: QuarantinePolicy::Drain,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut rng = TensorRng::new(78);
        // Warm traffic, then a fault, then more traffic.
        let first: Vec<Tensor> = (0..6).map(|_| rng.uniform_tensor(&[10, 10, 1])).collect();
        let h1: Vec<_> = first
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        server.inject_weight_fault(0, 13);
        // Wait for the scrubber to notice and heal.
        let deadline = Instant::now() + Duration::from_secs(20);
        while server.quarantines() == 0 || server.is_quarantined() {
            assert!(Instant::now() < deadline, "scrubber never healed the fault");
            std::thread::sleep(Duration::from_millis(1));
        }
        let second: Vec<Tensor> = (0..6).map(|_| rng.uniform_tensor(&[10, 10, 1])).collect();
        let h2: Vec<_> = second
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for (input, handle) in first
            .iter()
            .chain(second.iter())
            .zip(h1.into_iter().chain(h2))
        {
            let out = handle.wait().unwrap();
            let expect = &golden.forward_batch(std::slice::from_ref(input)).unwrap()[0];
            assert_eq!(
                out.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expect
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "served output diverged from the fault-free model"
            );
        }
        let report = server.shutdown();
        assert_eq!(report.completed, 12);
        assert!(report.quarantines >= 1);
        assert!(report.downtime_ns > 0);
        assert!(report.availability < 1.0);
    }

    #[test]
    fn shutdown_rejects_unresolved_work() {
        let golden = serving_model(23);
        let server = Server::start(
            &golden,
            MilrConfig::default(),
            ServerConfig {
                workers: 1,
                // Slow scrubber: nothing certifies before shutdown.
                scrub_interval: Duration::from_secs(60),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let x = TensorRng::new(5).uniform_tensor(&[10, 10, 1]);
        let h = server.submit(x).unwrap();
        // Give the worker a moment to compute the batch.
        std::thread::sleep(Duration::from_millis(50));
        let report = server.shutdown();
        // The final flush certifies it (weights are clean), or rejects
        // it with Shutdown — either way the handle resolves.
        match h.wait() {
            Ok(_) => assert_eq!(report.completed, 1),
            Err(ServeError::Rejected(RejectReason::Shutdown)) => {
                assert_eq!(report.rejected, 1)
            }
            other => panic!("unexpected resolution: {other:?}"),
        }
    }

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).expect("connect introspection");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn live_introspection_answers_under_a_fault_campaign() {
        let golden = serving_model(24);
        let spans = SpanHandle::new(Arc::new(milr_obs::SpanRing::new(64)));
        let server = Server::start(
            &golden,
            MilrConfig::default(),
            ServerConfig {
                workers: 2,
                scrub_interval: Duration::from_millis(1),
                policy: QuarantinePolicy::Drain,
                spans: Some(spans.clone()),
                http_addr: Some("127.0.0.1:0".to_string()),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.http_addr().expect("listener bound");
        let mut rng = TensorRng::new(79);
        let inputs: Vec<Tensor> = (0..8).map(|_| rng.uniform_tensor(&[10, 10, 1])).collect();
        let handles: Vec<_> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        server.inject_weight_fault(0, 7);
        let deadline = Instant::now() + Duration::from_secs(20);
        while server.quarantines() == 0 || server.is_quarantined() {
            assert!(Instant::now() < deadline, "scrubber never healed the fault");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Probe every endpoint while the campaign is live.
        let metrics = http_get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("serve_quarantines_total"), "{metrics}");
        assert!(metrics.contains("obs_series"), "{metrics}");
        let health = http_get(addr, "/health");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.contains("\"status\":\"serving\""), "{health}");
        let slo = http_get(addr, "/slo");
        assert!(slo.starts_with("HTTP/1.1 200 OK\r\n"), "{slo}");
        assert!(slo.contains("\"name\":\"availability\""), "{slo}");
        assert!(slo.contains("\"burn_rates\":["), "{slo}");
        let spans_resp = http_get(addr, "/spans");
        assert!(
            spans_resp.starts_with("HTTP/1.1 200 OK\r\n"),
            "{spans_resp}"
        );
        assert!(
            http_get(addr, "/nope").starts_with("HTTP/1.1 404"),
            "404 fallback"
        );
        for h in handles {
            h.wait().unwrap();
        }
        let report = server.shutdown();
        assert_eq!(report.completed, 8);
        assert!(report.to_json().contains("\"slo\":{\"pass\":"));
        let slo = report.slo.expect("live report carries an SLO verdict");
        let avail = slo.budget("availability").expect("availability budget");
        assert!(avail.good > 0, "availability window saw serving time");
        assert!(avail.bad > 0, "availability window saw the quarantine");
        // The worker batch trees and the scrubber's engine trees both
        // landed in the ring.
        let trees = spans.ring().trees();
        assert!(
            trees.iter().any(|t| t.name == "batch"),
            "no batch span: {trees:?}"
        );
        assert!(
            trees.iter().any(|t| t.name != "batch"),
            "no engine span: {trees:?}"
        );
    }
}
