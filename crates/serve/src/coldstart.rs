//! Cold start from a persistent store: open the container, **scrub on
//! load**, heal whatever the disk did to the raw weight pages, and
//! durably re-anchor protection — all *before* the first request is
//! admitted.
//!
//! This is the thinnest driver over the shared
//! [`IntegrityPipeline`]: one full Scrub stage, then heal rounds to
//! completion under the [`EscalationPolicy::Fail`] policy (a container
//! that cannot be healed must not serve) with strict
//! [`Journaled`] durability, so every correction reaches the journal
//! and a healed episode's re-anchor commits atomically
//! ([`milr_store::Store::commit_reanchor`]) before traffic starts.

use milr_core::Milr;
use milr_integrity::{
    Budget, EscalationPolicy, IntegrityPipeline, Journaled, ModelHost, PipelineReport, RoundOutcome,
};
use milr_store::{Store, StoreError};
use milr_substrate::ScrubSummary;

/// What scrub-on-load found and did.
#[derive(Debug, Clone, Default)]
pub struct ColdStartReport {
    /// Substrate-level scrub results over all shards.
    pub scrub: ScrubSummary,
    /// Layers MILR flagged on the initial detection pass.
    pub flagged: Vec<usize>,
    /// Recovery rounds run until detection came back clean.
    pub heal_rounds: usize,
    /// Whether protection was re-anchored and committed durably.
    pub reanchored: bool,
    /// Per-stage timing and outcome counters of the boot pipeline.
    pub pipeline: PipelineReport,
}

impl ColdStartReport {
    /// True when the stored weights were already clean.
    pub fn was_clean(&self) -> bool {
        self.scrub.is_clean() && self.flagged.is_empty()
    }
}

/// Opens the store's substrates, scrubs and heals on load, and returns
/// a ready-to-serve host plus the (possibly re-anchored) protection
/// instance. Traffic must not be admitted before this returns.
///
/// # Errors
///
/// Propagates store I/O, detection, and recovery failures, and reports
/// [`StoreError::Corrupt`] when healing cannot reach a clean state
/// within the shared [`Budget`] (e.g. faults exceeding MILR's
/// per-segment recovery capacity).
pub fn cold_start(
    store: &mut Store,
    cache_pages: usize,
) -> Result<(ModelHost, Milr, ColdStartReport), StoreError> {
    cold_start_observed(store, cache_pages, &milr_obs::Observer::default())
}

/// [`cold_start`] with an [`milr_obs::Observer`] attached to the boot
/// pipeline: scrub/detect/heal/re-anchor events land in the trace.
/// The boot pipeline has no driver clock, so events are stamped 0 —
/// stream order is event order, which keeps a fixed container's boot
/// trace byte-reproducible.
///
/// # Errors
///
/// As [`cold_start`].
pub fn cold_start_observed(
    store: &mut Store,
    cache_pages: usize,
    obs: &milr_obs::Observer,
) -> Result<(ModelHost, Milr, ColdStartReport), StoreError> {
    let host = ModelHost::from_parts(store.template().clone(), store.open_substrates(cache_pages));
    let mut milr = store.milr().clone();
    let mut pipeline =
        IntegrityPipeline::new(EscalationPolicy::Fail, Budget::default()).with_wall_timing();
    if let Some(trace) = &obs.trace {
        pipeline.attach_trace(trace.clone(), 0);
    }
    let (scrub, outcome) = {
        let mut durability = Journaled::strict(store);
        let scrub = pipeline.scrub_full(&host, &mut durability)?;
        let outcome = pipeline.run(&host, &mut milr, &mut durability)?;
        (scrub, outcome)
    };
    let report = ColdStartReport {
        scrub,
        flagged: pipeline.last_flagged().to_vec(),
        heal_rounds: pipeline.report().heal_rounds,
        reanchored: matches!(outcome, RoundOutcome::Clean { reanchored: true }),
        pipeline: pipeline.into_report(),
    };
    Ok((host, milr, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::serving_model;
    use milr_core::MilrConfig;
    use milr_store::StoreOptions;
    use milr_substrate::SubstrateKind;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("milr-coldstart-{}-{name}.milr", std::process::id()))
    }

    #[test]
    fn clean_store_cold_starts_without_reanchor() {
        let golden = serving_model(31);
        let path = temp("clean");
        Store::create(
            &path,
            &golden,
            MilrConfig::default(),
            StoreOptions::default(),
        )
        .unwrap();
        let mut store = Store::open(&path).unwrap();
        let (host, milr, report) = cold_start(&mut store, 16).unwrap();
        assert!(report.was_clean());
        assert!(!report.reanchored);
        assert_eq!(report.heal_rounds, 0);
        // The strict no-op contract: a clean boot changes nothing.
        assert!(report.pipeline.is_noop(), "{:?}", report.pipeline);
        assert_eq!(report.pipeline.full_detects, 1);
        let live = host.materialize();
        assert!(milr.detect(&live).unwrap().is_clean());
        // Materialized weights are bit-identical to the golden model.
        for (a, b) in golden.layers().iter().zip(live.layers().iter()) {
            if let (Some(p), Some(q)) = (a.params(), b.params()) {
                let pa: Vec<u32> = p.data().iter().map(|v| v.to_bits()).collect();
                let pb: Vec<u32> = q.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(pa, pb);
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disk_faults_are_healed_and_committed() {
        let golden = serving_model(32);
        let path = temp("heal");
        let store = Store::create(
            &path,
            &golden,
            MilrConfig::default(),
            StoreOptions {
                kind: SubstrateKind::Plain,
                page_weights: 32,
            },
        )
        .unwrap();
        // Whole-weight disk corruption in conv layer 0: flip all 32
        // raw bits of weight 13 directly in the file.
        for bit in 13 * 32..14 * 32 {
            store.flip_raw_bit(0, bit).unwrap();
        }
        drop(store);
        let mut store = Store::open(&path).unwrap();
        let (host, milr, report) = cold_start(&mut store, 16).unwrap();
        assert_eq!(report.flagged, vec![0]);
        assert!(report.heal_rounds >= 1);
        assert!(report.reanchored);
        assert_eq!(report.pipeline.layers_healed, 1);
        assert_eq!(report.pipeline.anchors, 1);
        // Fast-path verification re-checked only the flagged layer.
        assert_eq!(report.pipeline.fast_verifies, report.heal_rounds);
        assert!(report.pipeline.layers_skipped > 0);
        let live = host.materialize();
        assert!(milr.detect(&live).unwrap().is_clean());
        // Outputs match the fault-free model bit-for-bit.
        let x = milr_tensor::TensorRng::new(3).uniform_tensor(&[2, 10, 10, 1]);
        let a = golden.forward(&x).unwrap();
        let b = live.forward(&x).unwrap();
        let ab: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
        drop(host);
        drop(store);
        // Third open: the heal was durable — no faults left.
        let mut store = Store::open(&path).unwrap();
        let (_, _, report) = cold_start(&mut store, 16).unwrap();
        assert!(report.was_clean(), "{report:?}");
        let _ = std::fs::remove_file(&path);
    }
}
