//! Cold start from a persistent store: open the container, **scrub on
//! load**, heal whatever the disk did to the raw weight pages, and
//! durably re-anchor protection — all *before* the first request is
//! admitted.
//!
//! The sequence mirrors the online scrubber's quarantine protocol, run
//! once at boot:
//!
//! 1. substrate scrub over every file-backed shard (ECC corrections
//!    are flushed through the store's journal);
//! 2. a full `Milr::detect` pass on the materialized model;
//! 3. if flagged: MILR recovery, write-back, journaled flush — looped
//!    until detection is clean;
//! 4. if anything was healed: re-protect against the healed state and
//!    commit the new artifacts + weights atomically
//!    ([`Store::commit_reanchor`]), so the next cold start begins from
//!    a certified container.

use crate::host::ModelHost;
use milr_core::Milr;
use milr_store::{Store, StoreError};
use milr_substrate::ScrubSummary;

/// What scrub-on-load found and did.
#[derive(Debug, Clone, Default)]
pub struct ColdStartReport {
    /// Substrate-level scrub results over all shards.
    pub scrub: ScrubSummary,
    /// Layers MILR flagged on the initial detection pass.
    pub flagged: Vec<usize>,
    /// Recovery rounds run until detection came back clean.
    pub heal_rounds: usize,
    /// Whether protection was re-anchored and committed durably.
    pub reanchored: bool,
}

impl ColdStartReport {
    /// True when the stored weights were already clean.
    pub fn was_clean(&self) -> bool {
        self.scrub.is_clean() && self.flagged.is_empty()
    }
}

/// Maximum heal rounds before giving up (mirrors the online
/// scrubber's bound).
const MAX_HEAL_ROUNDS: usize = 8;

/// Opens the store's substrates, scrubs and heals on load, and returns
/// a ready-to-serve host plus the (possibly re-anchored) protection
/// instance. Traffic must not be admitted before this returns.
///
/// # Errors
///
/// Propagates store I/O, detection, and recovery failures, and reports
/// [`StoreError::Corrupt`] when healing cannot reach a clean state
/// within the round budget (e.g. faults exceeding MILR's per-segment
/// recovery capacity).
pub fn cold_start(
    store: &mut Store,
    cache_pages: usize,
) -> Result<(ModelHost, Milr, ColdStartReport), StoreError> {
    let host = ModelHost::from_parts(store.template().clone(), store.open_substrates(cache_pages));
    let mut milr = store.milr().clone();
    let mut report = ColdStartReport {
        scrub: host.store().scrub(),
        ..ColdStartReport::default()
    };
    if report.scrub.corrected > 0 {
        // ECC corrections are heals: persist them through the journal.
        host.store().flush()?;
    }
    let mut healed = report.scrub.corrected > 0;
    let mut first_pass = true;
    loop {
        let mut live = host.materialize();
        let check = milr.detect(&live)?;
        if first_pass {
            report.flagged = check.flagged.clone();
            first_pass = false;
        }
        if check.is_clean() {
            break;
        }
        healed = true;
        if report.heal_rounds >= MAX_HEAL_ROUNDS {
            return Err(StoreError::Corrupt(format!(
                "scrub-on-load could not heal layers {:?} within {MAX_HEAL_ROUNDS} rounds",
                check.flagged
            )));
        }
        report.heal_rounds += 1;
        milr.recover_layers(&mut live, &check.flagged)?;
        host.write_back(&live, &check.flagged);
        host.store().flush()?;
    }
    if healed {
        // Re-anchor protection to the healed state and make the pair
        // (weights, artifacts) durable in one atomic commit.
        let live = host.materialize();
        milr = Milr::protect(&live, *milr.config())?;
        store.commit_reanchor(&milr, &live, host.store())?;
        report.reanchored = true;
    }
    Ok((host, milr, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::serving_model;
    use milr_core::MilrConfig;
    use milr_store::StoreOptions;
    use milr_substrate::SubstrateKind;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("milr-coldstart-{}-{name}.milr", std::process::id()))
    }

    #[test]
    fn clean_store_cold_starts_without_reanchor() {
        let golden = serving_model(31);
        let path = temp("clean");
        Store::create(
            &path,
            &golden,
            MilrConfig::default(),
            StoreOptions::default(),
        )
        .unwrap();
        let mut store = Store::open(&path).unwrap();
        let (host, milr, report) = cold_start(&mut store, 16).unwrap();
        assert!(report.was_clean());
        assert!(!report.reanchored);
        assert_eq!(report.heal_rounds, 0);
        let live = host.materialize();
        assert!(milr.detect(&live).unwrap().is_clean());
        // Materialized weights are bit-identical to the golden model.
        for (a, b) in golden.layers().iter().zip(live.layers().iter()) {
            if let (Some(p), Some(q)) = (a.params(), b.params()) {
                let pa: Vec<u32> = p.data().iter().map(|v| v.to_bits()).collect();
                let pb: Vec<u32> = q.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(pa, pb);
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disk_faults_are_healed_and_committed() {
        let golden = serving_model(32);
        let path = temp("heal");
        let store = Store::create(
            &path,
            &golden,
            MilrConfig::default(),
            StoreOptions {
                kind: SubstrateKind::Plain,
                page_weights: 32,
            },
        )
        .unwrap();
        // Whole-weight disk corruption in conv layer 0: flip all 32
        // raw bits of weight 13 directly in the file.
        for bit in 13 * 32..14 * 32 {
            store.flip_raw_bit(0, bit).unwrap();
        }
        drop(store);
        let mut store = Store::open(&path).unwrap();
        let (host, milr, report) = cold_start(&mut store, 16).unwrap();
        assert_eq!(report.flagged, vec![0]);
        assert!(report.heal_rounds >= 1);
        assert!(report.reanchored);
        let live = host.materialize();
        assert!(milr.detect(&live).unwrap().is_clean());
        // Outputs match the fault-free model bit-for-bit.
        let x = milr_tensor::TensorRng::new(3).uniform_tensor(&[2, 10, 10, 1]);
        let a = golden.forward(&x).unwrap();
        let b = live.forward(&x).unwrap();
        let ab: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
        drop(host);
        drop(store);
        // Third open: the heal was durable — no faults left.
        let mut store = Store::open(&path).unwrap();
        let (_, _, report) = cold_start(&mut store, 16).unwrap();
        assert!(report.was_clean(), "{report:?}");
        let _ = std::fs::remove_file(&path);
    }
}
