//! The end-of-run service report: counters, empirical availability,
//! latency distribution, and the modeled-vs-measured comparison hook.

use crate::metrics::LatencyStats;
use crate::request::{RequestOutcome, RequestStatus};

/// Summary of one serving run (simulated or live).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Seed the run was driven by (0 for live runs without one).
    pub seed: u64,
    /// Quarantine policy name (`drain` / `reject`).
    pub policy: String,
    /// Requests submitted.
    pub submitted: usize,
    /// Requests completed with certified outputs.
    pub completed: usize,
    /// Requests rejected (queue-full, quarantine shedding, shutdown).
    pub rejected: usize,
    /// Request executions discarded and re-run because a scrub flagged
    /// the weights they may have been computed on.
    pub reexecuted: usize,
    /// Whole-weight faults injected into the substrate during the run.
    pub faults_injected: usize,
    /// Raw words corrected by the substrate's own scrub (ECC).
    pub scrub_corrected: usize,
    /// Scrub ticks performed.
    pub scrub_ticks: usize,
    /// Quarantine episodes.
    pub quarantines: usize,
    /// Layer recoveries performed across all quarantines.
    pub layers_recovered: usize,
    /// Failed durability commits on a store-backed server (journal
    /// flushes or re-anchor commits that errored). Served outputs stay
    /// correct — the in-memory heal succeeded — but the container on
    /// disk may lag the served state until a later commit succeeds, so
    /// a non-zero count means the crash-restart guarantee is degraded
    /// and the operator should look at the storage. Always 0 for
    /// in-memory servers and simulations.
    pub durability_errors: usize,
    /// Total run length on the service clock, nanoseconds.
    pub total_ns: u64,
    /// Time spent quarantined (unavailable), nanoseconds.
    pub downtime_ns: u64,
    /// Empirical availability: `1 − downtime / total`.
    pub availability: f64,
    /// Latency distribution of completed requests.
    pub latency: LatencyStats,
    /// Order-insensitive digest over `(id, status, output bits)` of
    /// every outcome — two runs with the same seed must agree on it.
    pub digest: u64,
}

/// FNV-1a over the resolved outcomes, for cheap reproducibility
/// assertions across runs.
pub fn outcome_digest(outcomes: &[RequestOutcome]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut sorted: Vec<&RequestOutcome> = outcomes.iter().collect();
    sorted.sort_by_key(|o| o.id);
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for o in sorted {
        eat(o.id);
        match &o.status {
            RequestStatus::Completed(out) => {
                eat(0);
                for v in out.data() {
                    eat(v.to_bits() as u64);
                }
            }
            RequestStatus::Rejected(reason) => {
                eat(1 + *reason as u64);
            }
        }
    }
    h
}

impl ServeReport {
    /// Renders the report as a flat JSON object (hand-rolled: the
    /// workspace's serde stub has no serializer).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"seed\":{},\"policy\":\"{}\",\"submitted\":{},\"completed\":{},",
                "\"rejected\":{},\"reexecuted\":{},\"faults_injected\":{},",
                "\"scrub_corrected\":{},\"scrub_ticks\":{},\"quarantines\":{},",
                "\"layers_recovered\":{},\"durability_errors\":{},",
                "\"total_ns\":{},\"downtime_ns\":{},",
                "\"availability\":{:.9},\"latency_mean_us\":{:.3},\"latency_p50_us\":{:.3},",
                "\"latency_p95_us\":{:.3},\"latency_max_us\":{:.3},\"digest\":{}}}"
            ),
            self.seed,
            self.policy,
            self.submitted,
            self.completed,
            self.rejected,
            self.reexecuted,
            self.faults_injected,
            self.scrub_corrected,
            self.scrub_ticks,
            self.quarantines,
            self.layers_recovered,
            self.durability_errors,
            self.total_ns,
            self.downtime_ns,
            self.availability,
            self.latency.mean_us,
            self.latency.p50_us,
            self.latency.p95_us,
            self.latency.max_us,
            self.digest,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RejectReason;
    use milr_tensor::Tensor;

    fn outcome(id: u64, status: RequestStatus) -> RequestOutcome {
        RequestOutcome {
            id,
            input: Tensor::zeros(&[1]),
            status,
            arrival_ns: 0,
            resolved_ns: 1,
        }
    }

    #[test]
    fn digest_is_order_insensitive_and_content_sensitive() {
        let a = outcome(0, RequestStatus::Completed(Tensor::ones(&[2])));
        let b = outcome(1, RequestStatus::Rejected(RejectReason::QueueFull));
        let fwd = outcome_digest(&[a.clone(), b.clone()]);
        let rev = outcome_digest(&[b.clone(), a]);
        assert_eq!(fwd, rev);
        let changed = outcome(0, RequestStatus::Completed(Tensor::zeros(&[2])));
        assert_ne!(fwd, outcome_digest(&[changed, b]));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = ServeReport {
            seed: 7,
            policy: "drain".into(),
            submitted: 10,
            completed: 9,
            rejected: 1,
            reexecuted: 2,
            faults_injected: 1,
            scrub_corrected: 0,
            scrub_ticks: 5,
            quarantines: 1,
            layers_recovered: 1,
            durability_errors: 0,
            total_ns: 1000,
            downtime_ns: 100,
            availability: 0.9,
            latency: LatencyStats::default(),
            digest: 42,
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"availability\":0.900000000"));
        assert!(json.contains("\"policy\":\"drain\""));
        assert_eq!(json.matches('{').count(), 1);
    }
}
