//! The end-of-run service report: counters, empirical availability,
//! latency distribution, and the modeled-vs-measured comparison hook.

use crate::metrics::LatencyStats;
use crate::request::{RequestOutcome, RequestStatus};
use milr_integrity::PipelineReport;

/// Summary of one serving run (simulated or live).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Seed the run was driven by (0 for live runs without one).
    pub seed: u64,
    /// Quarantine policy name (`drain` / `reject`).
    pub policy: String,
    /// Requests submitted.
    pub submitted: usize,
    /// Requests completed with certified outputs.
    pub completed: usize,
    /// Requests rejected (queue-full, quarantine shedding, shutdown).
    pub rejected: usize,
    /// Request executions discarded and re-run because a scrub flagged
    /// the weights they may have been computed on.
    pub reexecuted: usize,
    /// Whole-weight faults injected into the substrate during the run.
    pub faults_injected: usize,
    /// Raw words corrected by the substrate's own scrub (ECC).
    pub scrub_corrected: usize,
    /// Scrub ticks performed.
    pub scrub_ticks: usize,
    /// Quarantine episodes.
    pub quarantines: usize,
    /// Layer recoveries performed across all quarantines.
    pub layers_recovered: usize,
    /// Failed durability commits on a store-backed server (journal
    /// flushes or re-anchor commits that errored). Served outputs stay
    /// correct — the in-memory heal succeeded — but the container on
    /// disk may lag the served state until a later commit succeeds, so
    /// a non-zero count means the crash-restart guarantee is degraded
    /// and the operator should look at the storage. Always 0 for
    /// in-memory servers and simulations.
    pub durability_errors: usize,
    /// Total run length on the service clock, nanoseconds.
    pub total_ns: u64,
    /// Time spent quarantined (unavailable), nanoseconds.
    pub downtime_ns: u64,
    /// Empirical availability: `1 − downtime / total`.
    pub availability: f64,
    /// Latency distribution of completed requests.
    pub latency: LatencyStats,
    /// Batches dispatched by the admission loop.
    pub batches: usize,
    /// Batches dispatched at the full configured `batch_max`.
    pub full_batches: usize,
    /// Mean requests per dispatched batch — the continuous-batching
    /// occupancy (1.0 means no coalescing happened; `batch_max` means
    /// every dispatch shared one decode + GEMM pass across a full
    /// batch).
    pub batch_occupancy: f64,
    /// Order-insensitive digest over `(id, status, output bits)` of
    /// every outcome — two runs with the same seed must agree on it.
    pub digest: u64,
    /// Per-stage counters (and, on wall-clock drivers, timings) of the
    /// shared integrity pipeline behind the run's scrubbing and
    /// recovery. Deterministic under a seed on virtual-clock drivers.
    pub pipeline: PipelineReport,
    /// Error-budget verdict of the run's SLO engine, when the driver
    /// ran one (the simulators always do; aggregation drops it — the
    /// fleet view carries its own). `None` leaves the JSON byte-for-
    /// byte what it was before SLOs existed.
    pub slo: Option<milr_obs::SloReport>,
}

/// FNV-1a over the resolved outcomes, for cheap reproducibility
/// assertions across runs.
pub fn outcome_digest(outcomes: &[RequestOutcome]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut sorted: Vec<&RequestOutcome> = outcomes.iter().collect();
    sorted.sort_by_key(|o| o.id);
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for o in sorted {
        eat(o.id);
        match &o.status {
            RequestStatus::Completed(out) => {
                eat(0);
                for v in out.data() {
                    eat(v.to_bits() as u64);
                }
            }
            RequestStatus::Rejected(reason) => {
                eat(1 + *reason as u64);
            }
        }
    }
    h
}

impl ServeReport {
    /// Aggregates per-replica reports into one fleet **capacity** view.
    ///
    /// Counters sum; `total_ns` is the longest replica clock;
    /// `downtime_ns` is the **mean replica downtime** (Σ downtime / n,
    /// truncated to whole nanoseconds), so the record stays internally
    /// consistent — `1 − downtime_ns / total_ns` reproduces
    /// `availability` up to that truncation, and `downtime_ns` can
    /// never exceed `total_ns`. `availability` itself is computed from
    /// the untruncated sum: the *mean replica* availability
    /// `1 − Σ downtime / (n · total)`, the fraction of fleet capacity
    /// that was serving. This is deliberately not the client-facing
    /// fleet availability (the fleet is only *down* when every replica
    /// is, which needs the overlap of the downtime windows — the fleet
    /// simulation measures that directly). Latency is merged by adding
    /// the replicas' histogram buckets and reading quantiles off the
    /// merged distribution — mean and max come out exact (the
    /// histograms carry exact sums and maxima), percentiles carry only
    /// the ≤ ~3.1% bucket quantization. Averaging per-replica
    /// percentiles, the old behaviour, is simply wrong on heterogeneous
    /// replicas: a fast replica's p99 pulls the "merged" p99 below
    /// values that 5% of fleet traffic exceeds. The digest chains the
    /// replicas' digests in order.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn aggregate(reports: &[ServeReport]) -> ServeReport {
        assert!(!reports.is_empty(), "nothing to aggregate");
        let total_ns = reports.iter().map(|r| r.total_ns).max().unwrap();
        let downtime_sum: u64 = reports.iter().map(|r| r.downtime_ns).sum();
        let downtime_ns = downtime_sum / reports.len() as u64;
        let capacity_ns = total_ns.saturating_mul(reports.len() as u64);
        let mut merged = milr_obs::Histogram::new();
        for r in reports {
            merged.merge(&r.latency.hist);
        }
        let batches: usize = reports.iter().map(|r| r.batches).sum();
        // Recover per-replica request totals from occupancy × batches
        // so the merged occupancy is batch-weighted, not replica-mean.
        let batched_requests: f64 = reports
            .iter()
            .map(|r| r.batch_occupancy * r.batches as f64)
            .sum();
        const PRIME: u64 = 0x100000001b3;
        let mut digest = 0xcbf29ce484222325u64;
        for r in reports {
            for byte in r.digest.to_le_bytes() {
                digest ^= byte as u64;
                digest = digest.wrapping_mul(PRIME);
            }
        }
        let mut pipeline = PipelineReport::default();
        for r in reports {
            pipeline.merge(&r.pipeline);
        }
        ServeReport {
            seed: reports[0].seed,
            policy: reports[0].policy.clone(),
            submitted: reports.iter().map(|r| r.submitted).sum(),
            completed: reports.iter().map(|r| r.completed).sum(),
            rejected: reports.iter().map(|r| r.rejected).sum(),
            reexecuted: reports.iter().map(|r| r.reexecuted).sum(),
            faults_injected: reports.iter().map(|r| r.faults_injected).sum(),
            scrub_corrected: reports.iter().map(|r| r.scrub_corrected).sum(),
            scrub_ticks: reports.iter().map(|r| r.scrub_ticks).sum(),
            quarantines: reports.iter().map(|r| r.quarantines).sum(),
            layers_recovered: reports.iter().map(|r| r.layers_recovered).sum(),
            durability_errors: reports.iter().map(|r| r.durability_errors).sum(),
            total_ns,
            downtime_ns,
            availability: if capacity_ns == 0 {
                1.0
            } else {
                1.0 - downtime_sum as f64 / capacity_ns as f64
            },
            latency: LatencyStats::from_histogram(merged),
            batches,
            full_batches: reports.iter().map(|r| r.full_batches).sum(),
            batch_occupancy: if batches == 0 {
                0.0
            } else {
                batched_requests / batches as f64
            },
            digest,
            pipeline,
            slo: None,
        }
    }

    /// Renders the report as a flat JSON object (hand-rolled: the
    /// workspace's serde stub has no serializer). The legacy fields
    /// keep their exact order and formatting — the golden-seed parity
    /// suite byte-compares this prefix across refactors — with the
    /// pipeline block and the newer fields (p99, batch-occupancy
    /// stats) appended after it.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            concat!(
                "{{\"seed\":{},\"policy\":\"{}\",\"submitted\":{},\"completed\":{},",
                "\"rejected\":{},\"reexecuted\":{},\"faults_injected\":{},",
                "\"scrub_corrected\":{},\"scrub_ticks\":{},\"quarantines\":{},",
                "\"layers_recovered\":{},\"durability_errors\":{},",
                "\"total_ns\":{},\"downtime_ns\":{},",
                "\"availability\":{:.9},\"latency_mean_us\":{:.3},\"latency_p50_us\":{:.3},",
                "\"latency_p95_us\":{:.3},\"latency_max_us\":{:.3},\"digest\":{},",
                "\"pipeline\":{},",
                "\"latency_p99_us\":{:.3},\"batches\":{},\"full_batches\":{},",
                "\"batch_occupancy\":{:.3}}}"
            ),
            self.seed,
            self.policy,
            self.submitted,
            self.completed,
            self.rejected,
            self.reexecuted,
            self.faults_injected,
            self.scrub_corrected,
            self.scrub_ticks,
            self.quarantines,
            self.layers_recovered,
            self.durability_errors,
            self.total_ns,
            self.downtime_ns,
            self.availability,
            self.latency.mean_us,
            self.latency.p50_us,
            self.latency.p95_us,
            self.latency.max_us,
            self.digest,
            self.pipeline.to_json(),
            self.latency.p99_us,
            self.batches,
            self.full_batches,
            self.batch_occupancy,
        );
        // The SLO block rides after the closing brace contract the
        // parity suite pins: swap the final `}` for `,"slo":{...}}`.
        if let Some(slo) = &self.slo {
            json.pop();
            json.push_str(",\"slo\":");
            json.push_str(&slo.to_json());
            json.push('}');
        }
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RejectReason;
    use milr_tensor::Tensor;

    fn outcome(id: u64, status: RequestStatus) -> RequestOutcome {
        RequestOutcome {
            id,
            input: Tensor::zeros(&[1]),
            status,
            arrival_ns: 0,
            resolved_ns: 1,
        }
    }

    #[test]
    fn digest_is_order_insensitive_and_content_sensitive() {
        let a = outcome(0, RequestStatus::Completed(Tensor::ones(&[2])));
        let b = outcome(1, RequestStatus::Rejected(RejectReason::QueueFull));
        let fwd = outcome_digest(&[a.clone(), b.clone()]);
        let rev = outcome_digest(&[b.clone(), a]);
        assert_eq!(fwd, rev);
        let changed = outcome(0, RequestStatus::Completed(Tensor::zeros(&[2])));
        assert_ne!(fwd, outcome_digest(&[changed, b]));
    }

    #[test]
    fn aggregate_sums_counters_and_merges_histograms() {
        // Per-replica summaries come from raw samples, exactly as the
        // drivers build them.
        let fast = LatencyStats::from_ns(&[2_000; 8]);
        let slow = LatencyStats::from_ns(&[4_000; 24]);
        let base = ServeReport {
            seed: 3,
            policy: "drain".into(),
            submitted: 10,
            completed: 8,
            rejected: 2,
            reexecuted: 1,
            faults_injected: 1,
            scrub_corrected: 4,
            scrub_ticks: 6,
            quarantines: 1,
            layers_recovered: 1,
            durability_errors: 0,
            total_ns: 1_000,
            downtime_ns: 100,
            availability: 0.9,
            latency: fast,
            batches: 4,
            full_batches: 1,
            batch_occupancy: 2.0,
            digest: 11,
            pipeline: PipelineReport {
                layers_healed: 1,
                ..PipelineReport::default()
            },
            slo: None,
        };
        let other = ServeReport {
            submitted: 30,
            completed: 24,
            total_ns: 2_000,
            downtime_ns: 500,
            latency: slow,
            batches: 6,
            full_batches: 3,
            batch_occupancy: 4.0,
            digest: 12,
            ..base.clone()
        };
        let agg = ServeReport::aggregate(&[base.clone(), other]);
        assert_eq!(agg.submitted, 40);
        assert_eq!(agg.completed, 32);
        // Pipeline counters merge across replicas.
        assert_eq!(agg.pipeline.layers_healed, 2);
        assert_eq!(agg.total_ns, 2_000);
        // Mean replica downtime: (100 + 500) / 2 — self-consistent with
        // total_ns (1 − 300/2000 ≈ availability).
        assert_eq!(agg.downtime_ns, 300);
        // Capacity availability: 1 − 600 / (2 · 2000).
        assert!((agg.availability - (1.0 - 600.0 / 4000.0)).abs() < 1e-12);
        // Histogram-merged latency: mean and max are exact.
        assert_eq!(agg.latency.count, 32);
        assert!((agg.latency.mean_us - (2.0 * 8.0 + 4.0 * 24.0) / 32.0).abs() < 1e-12);
        assert_eq!(agg.latency.max_us, 4.0);
        // Batch stats: counts sum, occupancy is batch-weighted.
        assert_eq!(agg.batches, 10);
        assert_eq!(agg.full_batches, 4);
        assert!((agg.batch_occupancy - (2.0 * 4.0 + 4.0 * 6.0) / 10.0).abs() < 1e-12);
        // Digest is order-sensitive over replica digests (a stable
        // replica ordering is part of the determinism contract).
        let swapped = ServeReport::aggregate(&[
            ServeReport {
                digest: 12,
                ..base.clone()
            },
            ServeReport { digest: 11, ..base },
        ]);
        assert_ne!(agg.digest, swapped.digest);
    }

    #[test]
    fn merged_percentiles_diverge_from_averaged_on_bimodal_replicas() {
        // One fast replica (every request ~1 ms) and one slow replica
        // (every request ~100 ms), equal traffic. Half of all fleet
        // requests take ~100 ms, so the true fleet p95 *is* ~100 ms.
        let fast = LatencyStats::from_ns(&[1_000_000; 100]);
        let slow = LatencyStats::from_ns(&[100_000_000; 100]);
        let template = ServeReport {
            seed: 0,
            policy: "drain".into(),
            submitted: 100,
            completed: 100,
            rejected: 0,
            reexecuted: 0,
            faults_injected: 0,
            scrub_corrected: 0,
            scrub_ticks: 0,
            quarantines: 0,
            layers_recovered: 0,
            durability_errors: 0,
            total_ns: 1_000,
            downtime_ns: 0,
            availability: 1.0,
            latency: fast.clone(),
            batches: 0,
            full_batches: 0,
            batch_occupancy: 0.0,
            digest: 1,
            pipeline: PipelineReport::default(),
            slo: None,
        };
        let replicas = [
            template.clone(),
            ServeReport {
                latency: slow.clone(),
                digest: 2,
                ..template
            },
        ];
        // What count-weighted averaging (the replaced behaviour) would
        // have claimed: the mean of the two p95s.
        let averaged_p95 = (fast.p95_us * 100.0 + slow.p95_us * 100.0) / 200.0;
        assert!((averaged_p95 - 50_500.0).abs() < 1.0);

        // The exact fleet p95 from the concatenated raw samples.
        let mut all = vec![1_000_000u64; 100];
        all.extend_from_slice(&[100_000_000; 100]);
        let exact = LatencyStats::from_ns(&all);
        assert!((exact.p95_us - 100_000.0).abs() < 1e-9);

        // The histogram merge lands within bucket error of the truth...
        let agg = ServeReport::aggregate(&replicas);
        let err = (agg.latency.p95_us - exact.p95_us).abs() / exact.p95_us;
        assert!(
            err <= 0.05,
            "merged p95 {} vs exact {}",
            agg.latency.p95_us,
            exact.p95_us
        );
        // ...while the averaged summary was off by a factor of ~2.
        assert!(
            (averaged_p95 - exact.p95_us).abs() / exact.p95_us > 0.4,
            "averaging should diverge wildly on bimodal replicas"
        );
        // p99 likewise comes from merged buckets.
        let p99_err = (agg.latency.p99_us - exact.p99_us).abs() / exact.p99_us;
        assert!(p99_err <= 0.05);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = ServeReport {
            seed: 7,
            policy: "drain".into(),
            submitted: 10,
            completed: 9,
            rejected: 1,
            reexecuted: 2,
            faults_injected: 1,
            scrub_corrected: 0,
            scrub_ticks: 5,
            quarantines: 1,
            layers_recovered: 1,
            durability_errors: 0,
            total_ns: 1000,
            downtime_ns: 100,
            availability: 0.9,
            latency: LatencyStats::default(),
            batches: 3,
            full_batches: 2,
            batch_occupancy: 2.5,
            digest: 42,
            pipeline: PipelineReport::default(),
            slo: None,
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"availability\":0.900000000"));
        assert!(json.contains("\"policy\":\"drain\""));
        // One top-level object plus the nested pipeline and stage_ns.
        assert_eq!(json.matches('{').count(), 3);
        assert!(json.contains("\"digest\":42,\"pipeline\":{"));
        // Newer fields append after the pipeline block so the legacy
        // prefix the parity suite byte-compares never moves.
        assert!(json.contains("},\"latency_p99_us\":0.000"));
        assert!(json.ends_with("\"batches\":3,\"full_batches\":2,\"batch_occupancy\":2.500}"));

        // With an SLO verdict attached, the block is appended inside
        // the closing brace and everything before it is unmoved.
        let without = json;
        let with = ServeReport {
            slo: Some(milr_obs::SloEngine::serving_defaults().report(1_000)),
            ..r
        }
        .to_json();
        assert!(with.starts_with(without.trim_end_matches('}')));
        assert!(with.contains(",\"slo\":{\"pass\":true,"));
        assert!(with.ends_with("}}"));
    }
}
