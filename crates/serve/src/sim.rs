//! Deterministic serving simulation on a virtual clock.
//!
//! The simulation drives the full serving control plane — bounded
//! admission queue, worker pool, incremental scrubber, quarantine and
//! recovery, certification — as a single-threaded discrete-event loop
//! over virtual nanoseconds. Every source of nondeterminism is seeded
//! (arrivals, fault times and locations) or fixed ([`VirtualCosts`]),
//! so a run is a pure function of `(model, MilrConfig, SimConfig)`:
//! two runs with the same seed produce bit-identical outcomes and the
//! same [`ServeReport::digest`]. This is the path the end-to-end test
//! and `serve_load`/`fig12 --measured` benchmarks use; the thread-pool
//! server in [`crate::server`] runs the same control plane on the wall
//! clock.
//!
//! ## Correctness protocol (why completed outputs are trustworthy)
//!
//! Outputs are *certified before release*: a batch computed at time `t`
//! is held in the [`CertificationLedger`] until a full scrub cycle
//! that **started after** `t` checks every layer clean. Faults are
//! monotone (corruption persists until recovery), so the clean cycle
//! proves the weights were clean at `t`. A flagged scrub instead
//! quarantines the service, voids everything uncertified (those
//! requests re-execute after recovery), and reopens only after a full
//! detection pass over the recovered weights comes back clean.

use crate::ledger::CertificationLedger;
use crate::metrics::{DowntimeLog, LatencyStats};
use crate::report::{outcome_digest, ServeReport};
use crate::request::{QuarantinePolicy, RejectReason, RequestOutcome, RequestStatus};
use crate::scrubber::ScrubCursor;
use milr_core::{Milr, MilrConfig, SolvingPlan};
use milr_fault::{
    milli, plan_burst, plan_stuck_at, ChaosSpec, FaultRng, SkewSpec, StuckAtPlan, StuckAtSpec,
};
use milr_integrity::{
    Budget, EscalationPolicy, IntegrityPipeline, ModelHost, RoundOutcome, StageHook, Volatile,
};
use milr_nn::{Layer, Sequential};
use milr_obs::{EventKind, Observer, SloEngine, SloKind, SloSpec, SpanTree};
use milr_substrate::{SharedSubstrate, SubstrateKind};
use milr_tensor::{Tensor, TensorRng};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual durations of the service's operations, in nanoseconds.
///
/// Fixed constants keep the simulation a pure function of the seed;
/// calibrate them from real measurements when comparing against a
/// particular machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualCosts {
    /// Fixed dispatch overhead per batch.
    pub batch_base_ns: u64,
    /// Marginal cost per request inside a batch.
    pub per_request_ns: u64,
    /// Detection replay of one layer.
    pub detect_layer_ns: u64,
    /// MILR recovery of one quarantine episode (propagate + solve).
    pub recover_ns: u64,
}

impl Default for VirtualCosts {
    fn default() -> Self {
        VirtualCosts {
            batch_base_ns: 1_000_000, // 1 ms
            per_request_ns: 500_000,  // 0.5 ms
            detect_layer_ns: 300_000, // 0.3 ms
            recover_ns: 10_000_000,   // 10 ms
        }
    }
}

impl VirtualCosts {
    /// Service time of a batch of `n` requests.
    pub fn batch_ns(&self, n: usize) -> u64 {
        self.batch_base_ns + self.per_request_ns * n as u64
    }

    /// One full detection pass over `layers` checkable layers.
    pub fn full_detect_ns(&self, layers: usize) -> u64 {
        self.detect_layer_ns * layers as u64
    }
}

/// Configuration of one simulated serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Master seed for arrivals, inputs and fault schedule.
    pub seed: u64,
    /// Requests in the workload.
    pub requests: usize,
    /// Mean inter-arrival gap, nanoseconds (exponential arrivals).
    pub mean_arrival_ns: u64,
    /// Worker pool size.
    pub workers: usize,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch.
    pub batch_max: usize,
    /// Continuous-batching admission deadline, nanoseconds: a partial
    /// batch holds for up to this long waiting for more arrivals before
    /// dispatching (full batches always dispatch immediately). `0`
    /// disables coalescing — every dispatch takes whatever is queued
    /// the moment a worker frees up, the legacy immediate-dispatch
    /// behavior the golden-seed parity suite locks.
    pub batch_wait_ns: u64,
    /// Scrubber cadence, nanoseconds between ticks.
    pub scrub_interval_ns: u64,
    /// Checkable layers examined per scrub tick.
    pub layers_per_tick: usize,
    /// What happens to queued/in-flight work during quarantine.
    pub policy: QuarantinePolicy,
    /// Whole-weight faults injected over the run.
    pub faults: usize,
    /// Substrate kind backing the model host. Chaos campaigns sweep
    /// this; the default ([`SubstrateKind::Plain`]) is the legacy
    /// configuration the golden-seed parity suite locks.
    pub kind: SubstrateKind,
    /// Chaos campaign overlay: correlated bursts, stuck-at cells, torn
    /// writes at pipeline seams, schedule skew. `None` (and
    /// `Some(quiet)`) leave the run byte-identical to the legacy
    /// simulation. Byzantine donors are fleet-only and ignored here.
    pub chaos: Option<ChaosSpec>,
    /// SLO suite override for campaign runs; `None` uses
    /// [`SloEngine::serving_defaults`].
    pub slo_specs: Option<Vec<SloSpec>>,
    /// Candidate layers for fault injection; empty means every
    /// *fully recoverable* convolution layer (solving plan `ConvFull`),
    /// whose CRC-certified recovery restores exact golden bits — the
    /// regime where certified outputs stay bit-for-bit faithful to the
    /// original model. Partial-recoverability layers may be listed
    /// explicitly: they heal within detection tolerance and the healed
    /// state becomes the new protected baseline (re-protection), but
    /// outputs computed after such a heal can differ from the original
    /// model by float rounding.
    pub fault_layers: Vec<usize>,
    /// Virtual operation costs.
    pub costs: VirtualCosts,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5E12FE,
            requests: 200,
            mean_arrival_ns: 400_000,
            workers: 4,
            queue_capacity: 256,
            batch_max: 8,
            batch_wait_ns: 0,
            scrub_interval_ns: 4_000_000,
            layers_per_tick: 2,
            policy: QuarantinePolicy::Drain,
            faults: 2,
            kind: SubstrateKind::Plain,
            chaos: None,
            slo_specs: None,
            fault_layers: Vec::new(),
            costs: VirtualCosts::default(),
        }
    }
}

/// What a chaos campaign actually injected over one run — the
/// ground-truth side of a [`ChaosSpec`], for campaign reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Correlated bursts fired.
    pub bursts_fired: usize,
    /// Raw bits flipped by bursts.
    pub burst_bits: usize,
    /// Stuck-at cell re-assertions (flips that pinned a corrected
    /// cell back to its stuck value).
    pub stuck_asserts: usize,
    /// Torn writes fired at pipeline stage seams.
    pub torn_fires: u64,
    /// Cold redeploys from the golden artifact: heal episodes whose
    /// damage exceeded single-instance recovery capacity (correlated
    /// bursts spanning adjacent layers defeat layer-local recovery),
    /// answered the way an operator would — a full-model rewrite,
    /// re-protect, and re-anchor, priced as extra downtime.
    pub redeploys: usize,
}

/// Everything a simulated run produced.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Aggregate counters and distributions.
    pub report: ServeReport,
    /// Every request's terminal state, by submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// Chaos injection tallies; `None` when no campaign was active.
    pub chaos: Option<ChaosStats>,
}

#[derive(Debug)]
enum Event {
    Arrival(usize),
    WorkerDone {
        worker: usize,
    },
    /// A partial batch's admission deadline lapsed: dispatch whatever
    /// is queued. Stale (pre-quarantine) deadlines carry an old epoch
    /// and are ignored.
    BatchDeadline {
        epoch: u64,
    },
    ScrubTick {
        epoch: u64,
    },
    Fault {
        layer: usize,
        weight: usize,
    },
    /// One correlated chaos burst over the raw image.
    ChaosBurst,
    RecoveryDone {
        epoch: u64,
    },
}

/// A deterministic discrete-event queue over virtual time.
///
/// Events pop earliest-first; equal timestamps break ties by schedule
/// order (a monotone sequence number), so the pop order is a pure
/// function of the schedule history — the property every seeded
/// simulation's bit-reproducibility contract rests on. Shared by this
/// crate's single-instance simulation and `milr-fleet`'s multi-replica
/// one.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, with the
        // schedule sequence as the deterministic tie-break.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at virtual time `time`.
    pub fn schedule(&mut self, time: u64, event: E) {
        self.seq += 1;
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
    }

    /// Pops the earliest event (schedule order breaking ties).
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }
}

struct Req {
    input: Tensor,
    arrival: u64,
    resolved: Option<(u64, RequestStatus)>,
}

struct Batch {
    reqs: Vec<usize>,
    outputs: Vec<Tensor>,
    epoch: u64,
}

/// Runs one deterministic serving simulation.
///
/// # Errors
///
/// Propagates MILR protection/detection/recovery failures.
///
/// # Panics
///
/// Panics on zero-sized pools/queues/batches, when the model has no
/// layers eligible for fault injection, or if the event budget (a
/// runaway-loop backstop) is exhausted.
pub fn simulate(
    golden: &Sequential,
    milr_config: MilrConfig,
    cfg: &SimConfig,
) -> milr_core::Result<SimResult> {
    simulate_observed(golden, milr_config, cfg, &Observer::default())
}

/// [`simulate`] with an observability context: trace events are
/// stamped with the **virtual clock**, so a fixed seed reproduces the
/// JSONL stream byte-for-byte, and metrics handles are registered once
/// up front (recording is atomics only). Observation is provably
/// non-perturbing: the returned result — digest included — is
/// byte-identical with or without an observer attached (the golden
/// parity suite asserts this).
///
/// # Errors
///
/// # Panics
///
/// See [`simulate`].
pub fn simulate_observed(
    golden: &Sequential,
    milr_config: MilrConfig,
    cfg: &SimConfig,
    obs: &Observer,
) -> milr_core::Result<SimResult> {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.queue_capacity > 0, "need a non-empty queue");
    assert!(cfg.batch_max > 0, "need a non-empty batch");
    assert!(cfg.requests > 0, "need a workload");

    let mut milr = Milr::protect(golden, milr_config)?;
    let host = ModelHost::new(golden, &|c| cfg.kind.store(c));
    let checkable = milr.checkable_layers();
    // Chaos campaign overlay. A quiet spec is the same as none: every
    // branch below is skipped and the run stays byte-identical to the
    // legacy simulation.
    let chaos = cfg.chaos.as_ref().filter(|c| !c.is_quiet());
    let skew = chaos.and_then(|c| c.skew.clone());
    let scrub_interval_ns = match &skew {
        Some(sk) => SkewSpec::scale(cfg.scrub_interval_ns, sk.scrub_milli),
        None => cfg.scrub_interval_ns,
    };
    let mut cursor = ScrubCursor::new(checkable.clone(), cfg.layers_per_tick);
    // The shared integrity engine, untimed (virtual clock) and
    // volatile: the simulation's weights live only in memory, and the
    // Quarantine policy matches the online server's give-up-and-resume
    // contract (the round budget itself is asserted below).
    let mut pipeline = IntegrityPipeline::new(EscalationPolicy::Quarantine, Budget::default());
    if let Some(trace) = &obs.trace {
        pipeline.attach_trace(trace.clone(), 0);
    }
    if let Some(spans) = &obs.spans {
        pipeline.attach_spans(spans.clone());
    }
    // Torn writes racing the heal: the stage hook owns a clone of the
    // shared store and fires raw corruption the moment the pipeline
    // enters the named seam — mid-heal, between Verify and Reprotect,
    // wherever the campaign aims it — a bounded number of times.
    let torn_fired = Arc::new(AtomicU64::new(0));
    if let Some(tw) = chaos.and_then(|c| c.torn_write.clone()) {
        let store: SharedSubstrate = host.store().clone();
        let fired = Arc::clone(&torn_fired);
        let mut torn_rng = FaultRng::seed(cfg.seed ^ 0x70A2);
        let mut remaining = tw.fires;
        pipeline.attach_stage_hook(StageHook::new(move |stage| {
            if remaining > 0 && stage.eq_ignore_ascii_case(&tw.stage) {
                remaining -= 1;
                let raw = store.raw_bits();
                for _ in 0..tw.flips {
                    store.flip_raw_bit(torn_rng.below(raw));
                }
                fired.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // The SLO engine runs unconditionally, fed from the run's own
    // deterministic streams, so the report's budget verdict is part of
    // the seeded contract: attaching (or omitting) observers cannot
    // change a byte of it. Only the AlertFired trace emission below is
    // observer-gated (`obs.emit` is a no-op without a recorder).
    let mut slo = match &cfg.slo_specs {
        Some(specs) => SloEngine::new(specs.clone()),
        None => SloEngine::serving_defaults(),
    };
    let mut avail_mark = 0u64;
    // Metrics handles, registered once: recording below is lock-free
    // atomics on preallocated buckets.
    let m = obs.metrics.as_deref();
    let lat_hist = m.map(|m| m.histogram("serve_latency_ns"));
    let wait_hist = m.map(|m| m.histogram("serve_batch_wait_ns"));
    let occ_hist = m.map(|m| m.histogram("serve_batch_occupancy"));
    let hold_hist = m.map(|m| m.histogram("serve_ledger_hold_ns"));
    let queue_gauge = m.map(|m| m.gauge("serve_queue_depth"));
    let faults_ctr = m.map(|m| m.counter("serve_faults_injected_total"));
    let quarantine_ctr = m.map(|m| m.counter("serve_quarantines_total"));

    // Seeded workload: inputs and exponential arrivals.
    let mut input_rng = TensorRng::new(cfg.seed ^ 0x1A7E57);
    let mut arrival_rng = FaultRng::seed(cfg.seed ^ 0xA441);
    let mut reqs: Vec<Req> = Vec::with_capacity(cfg.requests);
    let mut t = 0u64;
    for _ in 0..cfg.requests {
        let gap = -arrival_rng.unit().max(f64::MIN_POSITIVE).ln() * cfg.mean_arrival_ns as f64;
        let mut gap_ns = (gap as u64).max(1);
        if let Some(sk) = &skew {
            gap_ns = SkewSpec::scale(gap_ns, sk.arrival_milli);
        }
        t += gap_ns;
        reqs.push(Req {
            input: input_rng.uniform_tensor(golden.input_shape()),
            arrival: t,
            resolved: None,
        });
    }
    let horizon = t;

    // Seeded fault schedule over the bulk of the workload window.
    let fault_layers: Vec<usize> = if cfg.fault_layers.is_empty() {
        host.param_layers()
            .iter()
            .copied()
            .filter(|&i| {
                matches!(golden.layers()[i], Layer::Conv2D { .. })
                    && milr.plan().layers[i].solving == Some(SolvingPlan::ConvFull)
            })
            .collect()
    } else {
        cfg.fault_layers.clone()
    };
    assert!(
        cfg.faults == 0 || !fault_layers.is_empty(),
        "no layers eligible for fault injection"
    );
    let mut fault_rng = FaultRng::seed(cfg.seed ^ 0xFA117);
    let mut fault_sched: Vec<(u64, usize, usize)> = (0..cfg.faults)
        .map(|_| {
            let time = horizon / 10 + (fault_rng.unit() * 0.8 * horizon as f64) as u64;
            let layer = fault_layers[fault_rng.below(fault_layers.len())];
            let weight = fault_rng.below(host.layer_weight_count(layer));
            (time, layer, weight)
        })
        .collect();
    fault_sched.sort_unstable();

    // Chaos planning: a dedicated RNG stream (never drawn from without
    // a campaign) schedules correlated bursts over the same window as
    // the whole-weight faults and plants the stuck-at cells.
    let mut chaos_rng = FaultRng::seed(cfg.seed ^ 0xC4A05);
    let burst_spec = chaos.and_then(|c| c.bursts.clone());
    let mut burst_times: Vec<u64> = Vec::new();
    if let Some(b) = &burst_spec {
        burst_times = (0..b.bursts)
            .map(|_| horizon / 10 + (chaos_rng.unit() * 0.8 * horizon as f64) as u64)
            .collect();
        burst_times.sort_unstable();
    }
    let stuck: Option<(StuckAtSpec, StuckAtPlan)> =
        chaos.and_then(|c| c.stuck_at.clone()).map(|spec| {
            let plan = plan_stuck_at(host.store().raw_bits(), spec.bits, &mut chaos_rng);
            (spec, plan)
        });

    // Event timeline.
    let mut timeline: EventQueue<Event> = EventQueue::new();
    for (i, r) in reqs.iter().enumerate() {
        timeline.schedule(r.arrival, Event::Arrival(i));
    }
    for &(time, layer, weight) in &fault_sched {
        timeline.schedule(time, Event::Fault { layer, weight });
    }
    for &time in &burst_times {
        timeline.schedule(time, Event::ChaosBurst);
    }
    timeline.schedule(scrub_interval_ns, Event::ScrubTick { epoch: 0 });

    // Service state.
    let mut clock = 0u64;
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut workers: Vec<Option<Batch>> = (0..cfg.workers).map(|_| None).collect();
    let mut ledger: CertificationLedger<Batch> = CertificationLedger::default();
    let mut quarantined = false;
    let mut epoch = 0u64;
    let mut downtime = DowntimeLog::default();
    let mut resolved = 0usize;
    let mut last_fault_time = 0u64;
    let mut last_clean_cycle_start: Option<u64> = None;

    // Counters (healing/scrub counters live in the pipeline's report).
    let mut rejected = 0usize;
    let mut completed = 0usize;
    let mut reexecuted = 0usize;
    let mut faults_injected = 0usize;
    let mut scrub_ticks = 0usize;
    let mut quarantines = 0usize;
    let mut latencies: Vec<u64> = Vec::new();
    let mut batches = 0usize;
    let mut full_batches = 0usize;
    let mut batched_requests = 0usize;
    let mut deadline_pending = false;
    let mut chaos_stats = ChaosStats::default();
    // Chaos injections feed the same drain condition as whole-weight
    // faults: the run only exits after a clean scrub cycle that started
    // after the last injection of *any* kind.
    let mut chaos_injected = 0usize;

    /// Folds stage-hook firings (which happen inside pipeline calls)
    /// into the chaos tallies and the drain condition.
    macro_rules! torn_sync {
        () => {
            let fired = torn_fired.load(Ordering::Relaxed);
            if fired > chaos_stats.torn_fires {
                chaos_stats.torn_fires = fired;
                chaos_injected += 1;
                last_fault_time = clock;
            }
        };
    }

    macro_rules! slo_alerts {
        ($alerts:expr) => {
            for a in $alerts {
                obs.emit(
                    a.ns,
                    0,
                    EventKind::AlertFired {
                        slo: a.spec,
                        burn_milli: a.burn_milli,
                    },
                );
            }
        };
    }

    macro_rules! resolve {
        ($idx:expr, $status:expr) => {{
            let idx: usize = $idx;
            debug_assert!(reqs[idx].resolved.is_none());
            let status = $status;
            match &status {
                RequestStatus::Completed(_) => {
                    completed += 1;
                    let latency = clock.saturating_sub(reqs[idx].arrival);
                    if let Some(h) = &lat_hist {
                        h.record(latency);
                    }
                    latencies.push(latency);
                    slo_alerts!(slo.observe_latency(clock, latency));
                }
                RequestStatus::Rejected(_) => rejected += 1,
            }
            reqs[idx].resolved = Some((clock, status));
            resolved += 1;
        }};
    }

    macro_rules! dispatch_to {
        ($worker:expr, $n:expr) => {{
            let n: usize = $n;
            let worker: usize = $worker;
            let batch_reqs: Vec<usize> = queue.drain(..n).collect();
            obs.emit(
                clock,
                0,
                EventKind::BatchDispatched {
                    occupancy: n as u32,
                },
            );
            if let Some(h) = &occ_hist {
                h.record(n as u64);
            }
            if let Some(h) = &wait_hist {
                for &i in &batch_reqs {
                    h.record(clock.saturating_sub(reqs[i].arrival));
                }
            }
            let inputs: Vec<Tensor> = batch_reqs.iter().map(|&i| reqs[i].input.clone()).collect();
            // Fused decode-forward: parameterized layers pull their
            // shard through the host's epoch-tagged cache, so no
            // whole-model materialization per batch.
            let outputs = host
                .forward_batch(&inputs)
                .expect("batch inputs validated at submission");
            if let Some(sp) = &obs.spans {
                // Span tree from the modeled costs: the virtual clock
                // does not advance inside the host call, so the batch's
                // decode/forward split comes from `VirtualCosts` — the
                // same quantities the completion event is scheduled by.
                let decode_done = clock + cfg.costs.batch_base_ns;
                let span_done = clock + cfg.costs.batch_ns(n);
                let mut tree = SpanTree::new();
                tree.open(clock, "batch", n as u64);
                tree.open(clock, "decode", n as u64);
                tree.close(decode_done);
                tree.open(decode_done, "forward", n as u64);
                tree.close(span_done);
                sp.push_all(tree.finish(span_done));
            }
            batches += 1;
            batched_requests += n;
            if n == cfg.batch_max {
                full_batches += 1;
            }
            workers[worker] = Some(Batch {
                reqs: batch_reqs,
                outputs,
                epoch,
            });
            let done = clock + cfg.costs.batch_ns(n);
            timeline.schedule(done, Event::WorkerDone { worker });
        }};
    }

    macro_rules! try_dispatch {
        () => {
            while !quarantined && !queue.is_empty() {
                let Some(worker) = workers.iter().position(Option::is_none) else {
                    break;
                };
                let n = queue.len().min(cfg.batch_max);
                dispatch_to!(worker, n);
            }
        };
    }

    /// Continuous-batching admission. With `batch_wait_ns == 0` this is
    /// exactly the legacy immediate dispatch. Otherwise full batches go
    /// out at once, and a partial batch holds behind a scheduled
    /// deadline so later arrivals can coalesce into it.
    macro_rules! admit {
        () => {
            if cfg.batch_wait_ns == 0 {
                try_dispatch!();
            } else {
                while !quarantined && queue.len() >= cfg.batch_max {
                    let Some(worker) = workers.iter().position(Option::is_none) else {
                        break;
                    };
                    dispatch_to!(worker, cfg.batch_max);
                }
                if !quarantined
                    && !queue.is_empty()
                    && !deadline_pending
                    && workers.iter().any(Option::is_none)
                {
                    deadline_pending = true;
                    timeline.schedule(clock + cfg.batch_wait_ns, Event::BatchDeadline { epoch });
                }
            }
        };
    }

    /// Requests going back to the head of the queue after invalidation,
    /// ahead of everything that arrived later.
    macro_rules! requeue {
        ($ids:expr) => {{
            let mut ids: Vec<usize> = $ids;
            ids.sort_unstable();
            reexecuted += ids.len();
            for idx in ids.into_iter().rev() {
                queue.push_front(idx);
            }
        }};
    }

    let mut events = 0u64;
    let done = |resolved: usize,
                quarantined: bool,
                last_clean: Option<u64>,
                last_fault: u64,
                faults_injected: usize| {
        resolved == cfg.requests
            && !quarantined
            && (faults_injected == 0 || last_clean.map(|c| c > last_fault).unwrap_or(false))
    };

    while let Some((time, event)) = timeline.pop() {
        events += 1;
        assert!(events < 50_000_000, "simulation event budget exhausted");
        debug_assert!(time >= clock, "virtual time must be monotone");
        clock = time;
        match event {
            Event::Arrival(idx) => {
                if quarantined && cfg.policy == QuarantinePolicy::Reject {
                    resolve!(idx, RequestStatus::Rejected(RejectReason::Quarantined));
                } else if queue.len() >= cfg.queue_capacity {
                    resolve!(idx, RequestStatus::Rejected(RejectReason::QueueFull));
                } else {
                    queue.push_back(idx);
                    admit!();
                }
            }
            Event::WorkerDone { worker } => {
                let batch = workers[worker].take().expect("worker was busy");
                if batch.epoch != epoch {
                    // Dispatched before a quarantine: outputs suspect.
                    match cfg.policy {
                        QuarantinePolicy::Drain => requeue!(batch.reqs),
                        QuarantinePolicy::Reject => {
                            for idx in batch.reqs {
                                resolve!(idx, RequestStatus::Rejected(RejectReason::Quarantined));
                            }
                        }
                    }
                } else {
                    ledger.record(clock, batch);
                }
                admit!();
            }
            Event::BatchDeadline { epoch: dl_epoch } => {
                if dl_epoch != epoch {
                    continue; // canceled by a quarantine
                }
                deadline_pending = false;
                try_dispatch!();
            }
            Event::Fault { layer, weight } => {
                host.corrupt_weight(layer, weight);
                faults_injected += 1;
                last_fault_time = clock;
                obs.emit(
                    clock,
                    0,
                    EventKind::FaultInjected {
                        layer: layer as u32,
                        weight: weight as u64,
                    },
                );
                if let Some(c) = &faults_ctr {
                    c.inc();
                }
            }
            Event::ChaosBurst => {
                let spec = burst_spec.as_ref().expect("burst event without a spec");
                let store = host.store();
                let bits = plan_burst(
                    store.raw_geometry(),
                    store.raw_bits(),
                    spec.pattern,
                    milli(spec.flip_prob_milli),
                    &mut chaos_rng,
                );
                for &bit in &bits {
                    store.flip_raw_bit(bit);
                }
                chaos_stats.bursts_fired += 1;
                chaos_stats.burst_bits += bits.len();
                if !bits.is_empty() {
                    chaos_injected += 1;
                    last_fault_time = clock;
                }
                if let Some(c) = &faults_ctr {
                    c.inc();
                }
            }
            Event::ScrubTick { epoch: tick_epoch } => {
                if quarantined || tick_epoch != epoch {
                    continue; // stale tick from before a quarantine
                }
                // Stuck-at cells re-assert just before the scrubber
                // looks: whatever a previous pass corrected is pinned
                // back to its stuck value, so this tick observes the
                // cells held — the pattern iid flips cannot produce.
                if let Some((spec, plan)) = &stuck {
                    if spec.active(clock, horizon) {
                        let store = host.store();
                        let mut asserted = 0usize;
                        for &(bit, value) in &plan.cells {
                            if store.raw_bit(bit) != value {
                                store.flip_raw_bit(bit);
                                asserted += 1;
                            }
                        }
                        if asserted > 0 {
                            chaos_stats.stuck_asserts += asserted;
                            chaos_injected += 1;
                            last_fault_time = clock;
                        }
                    }
                }
                scrub_ticks += 1;
                let chunk = cursor.begin_tick(clock);
                pipeline.set_now(clock);
                let tick = pipeline
                    .tick(&host, &milr, &chunk, &mut Volatile)
                    .map_err(into_milr_err)?;
                torn_sync!();
                let flagged = !tick.detection.is_clean();
                if let Some(cycle_start) = cursor.finish_tick(flagged, clock) {
                    last_clean_cycle_start = Some(cycle_start);
                    for (finish, batch) in ledger.certify_before_stamped(cycle_start) {
                        if let Some(h) = &hold_hist {
                            h.record(clock.saturating_sub(finish));
                        }
                        for (idx, out) in batch.reqs.into_iter().zip(batch.outputs) {
                            resolve!(idx, RequestStatus::Completed(out));
                        }
                    }
                }
                if flagged {
                    // Quarantine: void uncertified work, stop dispatch,
                    // schedule recovery.
                    quarantines += 1;
                    quarantined = true;
                    epoch += 1;
                    deadline_pending = false; // pending deadline now stale
                    downtime.open_at(clock);
                    // Close the up-window for the availability SLO.
                    slo_alerts!(slo.observe(
                        clock,
                        SloKind::Availability,
                        clock.saturating_sub(avail_mark),
                        0
                    ));
                    avail_mark = clock;
                    obs.emit(clock, 0, EventKind::Quarantine { entered: true });
                    if let Some(c) = &quarantine_ctr {
                        c.inc();
                    }
                    let voided = ledger.invalidate();
                    match cfg.policy {
                        QuarantinePolicy::Drain => {
                            requeue!(voided.into_iter().flat_map(|b| b.reqs).collect());
                        }
                        QuarantinePolicy::Reject => {
                            for batch in voided {
                                for idx in batch.reqs {
                                    resolve!(
                                        idx,
                                        RequestStatus::Rejected(RejectReason::Quarantined)
                                    );
                                }
                            }
                            for idx in queue.drain(..).collect::<Vec<_>>() {
                                resolve!(idx, RequestStatus::Rejected(RejectReason::Quarantined));
                            }
                        }
                    }
                    let recovery_cost =
                        cfg.costs.full_detect_ns(checkable.len()) + cfg.costs.recover_ns;
                    timeline.schedule(clock + recovery_cost, Event::RecoveryDone { epoch });
                } else {
                    timeline.schedule(clock + scrub_interval_ns, Event::ScrubTick { epoch });
                }
            }
            Event::RecoveryDone { epoch: rec_epoch } => {
                if rec_epoch != epoch {
                    continue;
                }
                // One heal round of the shared engine: detect → heal →
                // fast-path verify, and — once clean — the re-protect
                // that keeps an approximate heal (partial-
                // recoverability geometry, §V-B) from leaving stored
                // CRC grids out of sync with storage.
                pipeline.set_now(clock);
                let heals_before = (
                    pipeline.report().heals_exact,
                    pipeline.report().heals_approx,
                );
                let round = pipeline
                    .heal_round(&host, &mut milr, &mut Volatile)
                    .map_err(into_milr_err)?;
                torn_sync!();
                let exact = pipeline.report().heals_exact - heals_before.0;
                let approx = pipeline.report().heals_approx - heals_before.1;
                if exact + approx > 0 {
                    slo_alerts!(slo.observe(
                        clock,
                        SloKind::HealExactness,
                        exact as u64,
                        approx as u64
                    ));
                }
                match round {
                    RoundOutcome::Clean { .. } => {
                        // Chaos campaigns run many quarantine episodes
                        // (stuck cells re-flag after every heal); the
                        // budget is per-episode there. Legacy runs keep
                        // the cumulative budget byte-for-byte.
                        if chaos.is_some() {
                            pipeline.reset_budget();
                        }
                        // Resume serving.
                        quarantined = false;
                        // Close the down-window for the availability SLO.
                        slo_alerts!(slo.observe(
                            clock,
                            SloKind::Availability,
                            0,
                            clock.saturating_sub(avail_mark)
                        ));
                        avail_mark = clock;
                        obs.emit(clock, 0, EventKind::Quarantine { entered: false });
                        downtime.close_at(clock);
                        cursor.reset();
                        timeline.schedule(clock + scrub_interval_ns, Event::ScrubTick { epoch });
                        admit!();
                    }
                    RoundOutcome::Retry { flagged } => {
                        if pipeline.budget_exhausted() {
                            // Legacy workloads inject only recoverable
                            // faults: a non-converging heal there is a
                            // harness bug, not an outcome.
                            assert!(chaos.is_some(), "recovery failed to converge: {flagged:?}");
                            // A chaos campaign exceeded single-instance
                            // capacity. Model the operator's answer: a
                            // cold redeploy from the golden artifact —
                            // full-model rewrite, re-protect, re-anchor
                            // — priced at one recovery per checkable
                            // layer of extra downtime. The SLO suite
                            // judges the availability burn.
                            host.write_back(golden, &checkable);
                            pipeline
                                .reprotect_and_anchor(&host, &mut milr, &mut Volatile)
                                .map_err(into_milr_err)?;
                            torn_sync!();
                            pipeline.reset_budget();
                            chaos_stats.redeploys += 1;
                            timeline.schedule(
                                clock + cfg.costs.recover_ns * checkable.len() as u64,
                                Event::RecoveryDone { epoch },
                            );
                        } else {
                            timeline.schedule(
                                clock + cfg.costs.recover_ns,
                                Event::RecoveryDone { epoch },
                            );
                        }
                    }
                    outcome => unreachable!(
                        "volatile quarantine serving neither escalates nor gives up before \
                         the budget assert: {outcome:?}"
                    ),
                }
            }
        }
        if let Some(g) = &queue_gauge {
            g.set(queue.len() as i64);
        }
        if done(
            resolved,
            quarantined,
            last_clean_cycle_start,
            last_fault_time,
            faults_injected + chaos_injected,
        ) {
            break;
        }
    }
    assert_eq!(resolved, cfg.requests, "workload did not drain");
    if let Some(m) = m {
        // Substrate-plane export: total raw-bit mutation epochs
        // (write-backs, fault injections, scrub corrections).
        m.gauge("substrate_epoch_total")
            .set(host.store().epoch_total() as i64);
    }

    let total_ns = clock;
    let outcomes: Vec<RequestOutcome> = reqs
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let (resolved_ns, status) = r.resolved.expect("all requests resolved");
            RequestOutcome {
                id: i as u64,
                input: r.input,
                status,
                arrival_ns: r.arrival,
                resolved_ns,
            }
        })
        .collect();
    let pipeline = pipeline.into_report();
    // Final SLO feedings: the trailing up-window (the loop only exits
    // un-quarantined) and the run's durability tally, then the budget
    // verdict — always computed, so it is part of the seeded contract.
    slo_alerts!(slo.observe(
        clock,
        SloKind::Availability,
        clock.saturating_sub(avail_mark),
        0
    ));
    slo_alerts!(slo.observe(
        clock,
        SloKind::Durability,
        pipeline.anchors as u64,
        pipeline.durability_errors as u64
    ));
    let slo_report = slo.report(clock);
    let report = ServeReport {
        seed: cfg.seed,
        policy: cfg.policy.name().to_string(),
        submitted: cfg.requests,
        completed,
        rejected,
        reexecuted,
        faults_injected,
        scrub_corrected: pipeline.scrub_corrected,
        scrub_ticks,
        quarantines,
        layers_recovered: pipeline.layers_healed,
        durability_errors: pipeline.durability_errors,
        total_ns,
        downtime_ns: downtime.total_ns(total_ns),
        availability: downtime.availability(total_ns),
        latency: LatencyStats::from_ns(&latencies),
        batches,
        full_batches,
        batch_occupancy: if batches == 0 {
            0.0
        } else {
            batched_requests as f64 / batches as f64
        },
        digest: outcome_digest(&outcomes),
        pipeline,
        slo: Some(slo_report),
    };
    Ok(SimResult {
        report,
        outcomes,
        chaos: chaos.map(|_| chaos_stats),
    })
}

/// The volatile simulation can only fail inside MILR itself — its
/// durability policy never touches storage — so the engine's error
/// narrows back to the crate's `milr_core::Result` contract.
fn into_milr_err(e: milr_integrity::IntegrityError) -> milr_core::MilrError {
    match e {
        milr_integrity::IntegrityError::Milr(e) => e,
        other => unreachable!("volatile pipeline cannot fail on durability: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::serving_model;

    #[test]
    fn fault_free_run_completes_everything() {
        let model = serving_model(3);
        let cfg = SimConfig {
            requests: 60,
            faults: 0,
            ..SimConfig::default()
        };
        let result = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        assert_eq!(result.report.completed, 60);
        assert_eq!(result.report.rejected, 0);
        assert_eq!(result.report.quarantines, 0);
        assert_eq!(result.report.availability, 1.0);
        // Every output equals the golden model's forward pass, bitwise.
        for o in &result.outcomes {
            let RequestStatus::Completed(out) = &o.status else {
                panic!("unexpected rejection")
            };
            let golden_out = &model.forward_batch(std::slice::from_ref(&o.input)).unwrap()[0];
            assert_eq!(
                out.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                golden_out
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn reject_policy_sheds_load_during_quarantine() {
        let model = serving_model(4);
        let cfg = SimConfig {
            requests: 150,
            faults: 2,
            policy: QuarantinePolicy::Reject,
            ..SimConfig::default()
        };
        let result = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        assert!(result.report.quarantines >= 1);
        assert!(result.report.rejected > 0, "reject policy must shed");
        assert!(result.report.availability < 1.0);
        // Whatever completed is still bit-exact golden.
        for o in &result.outcomes {
            if let RequestStatus::Completed(out) = &o.status {
                let golden_out = &model.forward_batch(std::slice::from_ref(&o.input)).unwrap()[0];
                assert_eq!(out.data(), golden_out.data());
            }
        }
    }

    #[test]
    fn chaos_campaign_is_deterministic_and_drains() {
        use milr_fault::{BurstPattern, BurstSpec, TornWriteSpec};
        let model = serving_model(6);
        let chaos = ChaosSpec {
            bursts: Some(BurstSpec {
                pattern: BurstPattern::Row,
                bursts: 2,
                flip_prob_milli: 300,
            }),
            stuck_at: Some(StuckAtSpec {
                bits: 8,
                from_milli: 100,
                until_milli: 700,
            }),
            torn_write: Some(TornWriteSpec {
                stage: "Heal".to_string(),
                fires: 1,
                flips: 8,
            }),
            byzantine: None,
            skew: Some(SkewSpec {
                arrival_milli: 800,
                scrub_milli: 1200,
            }),
        };
        let cfg = SimConfig {
            requests: 80,
            faults: 1,
            kind: SubstrateKind::Secded,
            chaos: Some(chaos),
            ..SimConfig::default()
        };
        let a = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        let b = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        assert_eq!(a.report.digest, b.report.digest, "seeded chaos diverged");
        let stats = a.chaos.expect("campaign stats");
        assert_eq!(stats, b.chaos.unwrap());
        assert_eq!(stats.bursts_fired, 2);
        assert!(stats.burst_bits > 0, "bursts flipped nothing");
        assert!(stats.stuck_asserts > 0, "stuck cells never re-asserted");
        assert_eq!(
            a.report.completed + a.report.rejected,
            cfg.requests,
            "workload did not drain under chaos"
        );
    }

    #[test]
    fn quiet_chaos_spec_is_byte_identical_to_none() {
        let model = serving_model(3);
        let base = SimConfig {
            requests: 60,
            faults: 1,
            ..SimConfig::default()
        };
        let quiet = SimConfig {
            chaos: Some(ChaosSpec::default()),
            ..base.clone()
        };
        let a = simulate(&model, MilrConfig::default(), &base).unwrap();
        let b = simulate(&model, MilrConfig::default(), &quiet).unwrap();
        assert_eq!(a.report.digest, b.report.digest);
        assert!(b.chaos.is_none(), "quiet spec must not report stats");
    }

    #[test]
    fn queue_overflow_rejects_at_admission() {
        let model = serving_model(5);
        let cfg = SimConfig {
            requests: 80,
            faults: 0,
            workers: 1,
            batch_max: 1,
            queue_capacity: 2,
            mean_arrival_ns: 10_000, // far faster than service
            ..SimConfig::default()
        };
        let result = simulate(&model, MilrConfig::default(), &cfg).unwrap();
        let queue_full = result
            .outcomes
            .iter()
            .filter(|o| matches!(o.status, RequestStatus::Rejected(RejectReason::QueueFull)))
            .count();
        assert!(queue_full > 0, "tiny queue must overflow");
        assert_eq!(
            result.report.completed + result.report.rejected,
            result.report.submitted
        );
    }
}
