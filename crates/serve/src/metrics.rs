//! Service metrics: latency distributions and downtime accounting.

use milr_obs::Histogram;

/// Latency distribution summary over resolved requests.
///
/// The headline fields (`mean_us` … `max_us`) are computed exactly
/// from the raw samples by [`LatencyStats::from_ns`] — nearest-rank on
/// the sorted sample set, so a deterministic run summarizes to
/// byte-identical JSON. Alongside them the summary carries the
/// **mergeable** log-bucketed histogram of the same samples: merging
/// replicas' histograms and reading quantiles off the merged buckets
/// is the only correct way to aggregate percentiles across replicas
/// (averaging per-replica percentiles is not —
/// [`ServeReport::aggregate`](crate::ServeReport::aggregate) uses the
/// histogram path). The histogram is not exported in report JSON, so
/// legacy summaries stay byte-identical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyStats {
    /// Samples summarized.
    pub count: usize,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds (the serve-load gate: CI
    /// fails a run whose p99 regresses past the recorded baseline).
    pub p99_us: f64,
    /// Maximum latency, microseconds.
    pub max_us: f64,
    /// Mergeable log-bucketed histogram of the samples, nanoseconds.
    pub hist: Histogram,
}

impl LatencyStats {
    /// Summarizes latency samples (nanoseconds). Percentiles use the
    /// nearest-rank convention on the sorted samples, so the summary is
    /// deterministic for a deterministic sample set.
    pub fn from_ns(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |q: f64| -> f64 {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx] as f64 / 1e3
        };
        let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
        let mut hist = Histogram::new();
        for &v in &sorted {
            hist.record(v);
        }
        LatencyStats {
            count: sorted.len(),
            mean_us: sum as f64 / sorted.len() as f64 / 1e3,
            p50_us: rank(0.50),
            p95_us: rank(0.95),
            p99_us: rank(0.99),
            max_us: *sorted.last().unwrap() as f64 / 1e3,
            hist,
        }
    }

    /// Rebuilds a summary from an already-merged histogram — the
    /// aggregation path. Mean and max are exact (the histogram tracks
    /// exact sums and maxima); percentiles are read off the merged
    /// buckets with ≤ ~3.1% quantization error, which is *correct* in
    /// the way count-weighted percentile averaging is not.
    pub fn from_histogram(hist: Histogram) -> Self {
        if hist.is_empty() {
            return LatencyStats::default();
        }
        LatencyStats {
            count: hist.count() as usize,
            mean_us: hist.mean() / 1e3,
            p50_us: hist.quantile(0.50) as f64 / 1e3,
            p95_us: hist.quantile(0.95) as f64 / 1e3,
            p99_us: hist.quantile(0.99) as f64 / 1e3,
            max_us: hist.max() as f64 / 1e3,
            hist,
        }
    }
}

/// Closed and in-progress unavailability windows on the service clock.
#[derive(Debug, Clone, Default)]
pub struct DowntimeLog {
    windows: Vec<(u64, u64)>,
    open: Option<u64>,
}

impl DowntimeLog {
    /// Opens a downtime window (quarantine entry). No-op when one is
    /// already open.
    pub fn open_at(&mut self, now: u64) {
        if self.open.is_none() {
            self.open = Some(now);
        }
    }

    /// Closes the open window (service resume). No-op when none is
    /// open.
    pub fn close_at(&mut self, now: u64) {
        if let Some(start) = self.open.take() {
            self.windows.push((start, now.max(start)));
        }
    }

    /// The closed windows, in order.
    pub fn windows(&self) -> &[(u64, u64)] {
        &self.windows
    }

    /// Total downtime up to `end` (an open window counts up to `end`).
    pub fn total_ns(&self, end: u64) -> u64 {
        let closed: u64 = self.windows.iter().map(|(s, e)| e - s).sum();
        closed + self.open.map(|s| end.saturating_sub(s)).unwrap_or(0)
    }

    /// Empirical availability over `[0, end]`: uptime fraction.
    pub fn availability(&self, end: u64) -> f64 {
        if end == 0 {
            return 1.0;
        }
        1.0 - self.total_ns(end) as f64 / end as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_percentiles() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        let s = LatencyStats::from_ns(&ns);
        assert_eq!(s.count, 100);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
        assert_eq!(s.p50_us, 50.0);
        assert_eq!(s.p95_us, 95.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
        assert_eq!(LatencyStats::from_ns(&[]).count, 0);
    }

    #[test]
    fn downtime_windows_accumulate() {
        let mut d = DowntimeLog::default();
        assert_eq!(d.availability(1000), 1.0);
        d.open_at(100);
        d.open_at(150); // ignored: already open
        d.close_at(300);
        d.open_at(600);
        assert_eq!(d.total_ns(1000), 200 + 400);
        assert!((d.availability(1000) - 0.4).abs() < 1e-12);
        d.close_at(700);
        assert_eq!(d.windows(), &[(100, 300), (600, 700)]);
        assert_eq!(d.total_ns(1000), 300);
    }

    #[test]
    fn close_before_open_is_a_no_op() {
        let mut d = DowntimeLog::default();
        d.close_at(500);
        assert_eq!(d.windows(), &[]);
        assert_eq!(d.total_ns(1000), 0);
        assert_eq!(d.availability(1000), 1.0);
        // A later real window is unaffected by the stray close.
        d.open_at(600);
        d.close_at(800);
        assert_eq!(d.windows(), &[(600, 800)]);
    }

    #[test]
    fn open_window_is_truncated_at_end() {
        let mut d = DowntimeLog::default();
        d.open_at(900);
        // The open window counts only up to the queried horizon...
        assert_eq!(d.total_ns(1000), 100);
        assert!((d.availability(1000) - 0.9).abs() < 1e-12);
        // ...and contributes nothing when it opened past the horizon.
        assert_eq!(d.total_ns(800), 0);
        assert_eq!(d.availability(800), 1.0);
    }

    #[test]
    fn zero_length_windows_cost_nothing() {
        let mut d = DowntimeLog::default();
        d.open_at(100);
        d.close_at(100);
        assert_eq!(d.windows(), &[(100, 100)]);
        assert_eq!(d.total_ns(1000), 0);
        // Close with a clock that went backwards: clamped to the open
        // stamp, still zero-length.
        d.open_at(500);
        d.close_at(400);
        assert_eq!(d.windows(), &[(100, 100), (500, 500)]);
        assert_eq!(d.total_ns(1000), 0);
        assert_eq!(d.availability(1000), 1.0);
    }

    #[test]
    fn from_histogram_matches_from_ns_within_bucket_error() {
        let ns: Vec<u64> = (1..=1000).map(|i| i * 977).collect();
        let exact = LatencyStats::from_ns(&ns);
        let merged = LatencyStats::from_histogram(exact.hist.clone());
        assert_eq!(merged.count, exact.count);
        assert!(
            (merged.mean_us - exact.mean_us).abs() < 1e-9,
            "mean is exact"
        );
        assert_eq!(merged.max_us, exact.max_us, "max is exact");
        for (a, b) in [
            (merged.p50_us, exact.p50_us),
            (merged.p95_us, exact.p95_us),
            (merged.p99_us, exact.p99_us),
        ] {
            assert!((a - b).abs() / b <= 0.05, "quantile {a} vs exact {b}");
        }
    }
}
