//! Request/response vocabulary of the serving plane.

use milr_tensor::Tensor;

/// Monotone request identifier, assigned in submission order.
pub type RequestId = u64;

/// What the service does with queued and in-flight work when a flagged
/// layer forces a quarantine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantinePolicy {
    /// Hold everything: queued requests wait out the outage, in-flight
    /// work finishes and is re-executed (its outputs are suspect), and
    /// new arrivals keep queueing. Clients pay latency, never errors.
    Drain,
    /// Shed everything: queued, in-flight, and newly arriving requests
    /// complete immediately with [`RejectReason::Quarantined`] until
    /// recovery finishes. Clients pay errors (and retry), never
    /// quarantine latency.
    Reject,
}

impl QuarantinePolicy {
    /// Stable lowercase name (reports, CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            QuarantinePolicy::Drain => "drain",
            QuarantinePolicy::Reject => "reject",
        }
    }
}

/// Why a request was completed without an output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue was full at arrival.
    QueueFull,
    /// The service was quarantined under [`QuarantinePolicy::Reject`].
    Quarantined,
    /// The service shut down before the request could be certified.
    Shutdown,
}

impl RejectReason {
    /// Stable lowercase name (reports, error messages).
    pub fn name(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::Quarantined => "quarantined",
            RejectReason::Shutdown => "shutdown",
        }
    }
}

/// Terminal state of one request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestStatus {
    /// Served and certified: the output was computed on weights a
    /// bracketing scrub cycle verified clean (or freshly recovered).
    Completed(Tensor),
    /// Completed without an output.
    Rejected(RejectReason),
}

/// One resolved request, as reported by the simulation and the live
/// server.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Submission-order id.
    pub id: RequestId,
    /// The request input (per-image shape, no batch dimension).
    pub input: Tensor,
    /// Terminal state.
    pub status: RequestStatus,
    /// Arrival stamp, nanoseconds on the service clock.
    pub arrival_ns: u64,
    /// Resolution stamp, nanoseconds on the service clock.
    pub resolved_ns: u64,
}

impl RequestOutcome {
    /// Arrival-to-resolution latency in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.resolved_ns.saturating_sub(self.arrival_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(QuarantinePolicy::Drain.name(), "drain");
        assert_eq!(QuarantinePolicy::Reject.name(), "reject");
        assert_eq!(RejectReason::QueueFull.name(), "queue-full");
        assert_eq!(RejectReason::Quarantined.name(), "quarantined");
        assert_eq!(RejectReason::Shutdown.name(), "shutdown");
    }

    #[test]
    fn latency_saturates() {
        let o = RequestOutcome {
            id: 0,
            input: Tensor::zeros(&[1]),
            status: RequestStatus::Rejected(RejectReason::Shutdown),
            arrival_ns: 10,
            resolved_ns: 4,
        };
        assert_eq!(o.latency_ns(), 0);
    }
}
