//! Incremental scrub scheduling: which layers to check each tick, and
//! when a full clean sweep (a *certification cycle*) completes.
//!
//! The cursor walks the checkable layers in fixed chunks. A cycle is
//! the window from the first chunk of a sweep to the last; when every
//! tick of a cycle came back clean, everything that finished **before
//! the cycle started** is proven to have run on clean weights — faults
//! are monotone (corruption persists until recovery), so a later clean
//! check of every layer implies the weights were clean at any earlier
//! instant since the last recovery.

/// Chunked sweep position over the checkable layers.
#[derive(Debug, Clone)]
pub struct ScrubCursor {
    layers: Vec<usize>,
    chunk: usize,
    pos: usize,
    cycle_started_at: u64,
    cycle_flagged: bool,
}

impl ScrubCursor {
    /// Creates a cursor over `layers` (ascending checkable indices),
    /// checking `layers_per_tick` of them per tick.
    ///
    /// # Panics
    ///
    /// Panics when `layers` is empty or `layers_per_tick == 0`.
    pub fn new(layers: Vec<usize>, layers_per_tick: usize) -> Self {
        assert!(!layers.is_empty(), "nothing to scrub");
        assert!(layers_per_tick > 0, "need at least one layer per tick");
        ScrubCursor {
            layers,
            chunk: layers_per_tick,
            pos: 0,
            cycle_started_at: 0,
            cycle_flagged: false,
        }
    }

    /// The layer chunk to check this tick. The first chunk of a sweep
    /// stamps the cycle start at `now`.
    pub fn begin_tick(&mut self, now: u64) -> Vec<usize> {
        if self.pos == 0 {
            self.cycle_started_at = now;
            self.cycle_flagged = false;
        }
        let end = (self.pos + self.chunk).min(self.layers.len());
        self.layers[self.pos..end].to_vec()
    }

    /// Records the tick's detection result. Returns `Some(cycle_start)`
    /// when this tick completed a full sweep with no layer flagged —
    /// the certification watermark for work finished before
    /// `cycle_start`.
    pub fn finish_tick(&mut self, flagged: bool, _now: u64) -> Option<u64> {
        self.cycle_flagged |= flagged;
        self.pos = (self.pos + self.chunk).min(self.layers.len());
        if self.pos >= self.layers.len() {
            self.pos = 0;
            if !self.cycle_flagged {
                return Some(self.cycle_started_at);
            }
        }
        None
    }

    /// Abandons the in-progress sweep (quarantine recovery invalidates
    /// its partial evidence); the next tick starts a fresh cycle.
    pub fn reset(&mut self) {
        self.pos = 0;
        self.cycle_flagged = false;
    }

    /// Ticks per full sweep.
    pub fn ticks_per_cycle(&self) -> usize {
        self.layers.len().div_ceil(self.chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_all_layers_and_wrap() {
        let mut c = ScrubCursor::new(vec![0, 1, 4, 5, 8], 2);
        assert_eq!(c.ticks_per_cycle(), 3);
        assert_eq!(c.begin_tick(10), vec![0, 1]);
        assert_eq!(c.finish_tick(false, 11), None);
        assert_eq!(c.begin_tick(20), vec![4, 5]);
        assert_eq!(c.finish_tick(false, 21), None);
        assert_eq!(c.begin_tick(30), vec![8]);
        // Clean sweep completes: watermark is the cycle start.
        assert_eq!(c.finish_tick(false, 31), Some(10));
        // Next sweep restamps.
        assert_eq!(c.begin_tick(40), vec![0, 1]);
    }

    #[test]
    fn flagged_tick_poisons_the_cycle() {
        let mut c = ScrubCursor::new(vec![0, 1], 1);
        c.begin_tick(5);
        assert_eq!(c.finish_tick(true, 6), None);
        c.begin_tick(7);
        // Sweep completes but was flagged: no watermark.
        assert_eq!(c.finish_tick(false, 8), None);
        // A fully clean sweep afterwards certifies.
        c.begin_tick(9);
        c.finish_tick(false, 10);
        c.begin_tick(11);
        assert_eq!(c.finish_tick(false, 12), Some(9));
    }

    #[test]
    fn reset_restarts_the_sweep() {
        let mut c = ScrubCursor::new(vec![0, 1, 2], 2);
        c.begin_tick(1);
        c.finish_tick(false, 2);
        c.reset();
        assert_eq!(c.begin_tick(50), vec![0, 1]);
        c.finish_tick(false, 51);
        assert_eq!(c.begin_tick(60), vec![2]);
        assert_eq!(c.finish_tick(false, 61), Some(50));
    }

    #[test]
    #[should_panic(expected = "nothing to scrub")]
    fn rejects_empty_layer_set() {
        ScrubCursor::new(vec![], 1);
    }
}
