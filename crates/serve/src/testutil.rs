//! Shared fixtures for the crate's unit tests.

use milr_nn::{Activation, Layer, Sequential};
use milr_tensor::{ConvSpec, Padding, PoolSpec, TensorRng};

/// Conv-heavy serving model: the two convolution layers sit in
/// different checkpoint segments, and CRC-guided conv recovery restores
/// exact golden bits — the regime where certified outputs stay
/// bit-for-bit faithful through fault/recovery episodes.
pub(crate) fn serving_model(seed: u64) -> Sequential {
    let mut rng = TensorRng::new(seed);
    let mut m = Sequential::new(vec![10, 10, 1]);
    let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
    m.push(Layer::conv2d_random(3, 1, 6, spec, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::bias_zero(6)).unwrap();
    m.push(Layer::Activation(Activation::Relu)).unwrap();
    m.push(Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()))
        .unwrap();
    m.push(Layer::conv2d_random(3, 6, 4, spec, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::bias_zero(4)).unwrap();
    m.push(Layer::Flatten).unwrap();
    m.push(Layer::dense_random(2 * 2 * 4, 5, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::Activation(Activation::Softmax)).unwrap();
    m
}
