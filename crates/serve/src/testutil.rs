//! Shared fixtures for the crate's unit tests.

use milr_nn::Sequential;

/// Conv-heavy serving model (see [`milr_models::serving_probe`]): the
/// two convolution layers sit in different checkpoint segments, and
/// CRC-guided conv recovery restores exact golden bits — the regime
/// where certified outputs stay bit-for-bit faithful through
/// fault/recovery episodes.
pub(crate) fn serving_model(seed: u64) -> Sequential {
    milr_models::serving_probe(seed)
}
