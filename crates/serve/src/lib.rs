//! # milr-serve
//!
//! An **online inference service** over MILR-protected weights: the
//! paper's offline detect→recover loop (DSN 2021) turned into a living
//! system that serves batched requests *while* faults land in the
//! weight substrate — and whose availability is **measured**, not just
//! modeled by Equation 6.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──submit──▶ bounded queue ──batches──▶ worker pool
//!                                                    │ forward on
//!                                                    ▼ materialized weights
//!  ┌──────────────────────────────┐        certification ledger
//!  │ ModelHost                    │        (released after a clean
//!  │  weights in SharedSubstrate  │         bracketing scrub cycle)
//!  │  one locked shard per layer  │
//!  └──────────────────────────────┘
//!        ▲            ▲
//!   scrub/detect    recovery write-back
//!        │            │
//!   scrubber daemon ──┴── quarantine (drain | reject) on flagged layer
//! ```
//!
//! * [`ModelHost`] owns the weights inside a
//!   [`milr_substrate::SharedSubstrate`] — one lock-protected shard per
//!   parameterized layer, so scrubbing one layer never blocks reading
//!   another. The in-memory skeleton is weightless; every forward pass
//!   decodes the substrate.
//! * The **scrubber daemon** sweeps the checkable layers in chunks
//!   ([`ScrubCursor`]), each tick running the substrate's own scrub
//!   (ECC) and an incremental MILR detection
//!   ([`milr_core::Milr::detect_layers`]).
//! * Outputs are **certified before release**
//!   ([`CertificationLedger`]): a batch is held until a full clean
//!   scrub cycle *starts after* it finished. Faults are monotone, so
//!   the clean cycle proves the batch ran on clean weights; a flagged
//!   scrub quarantines the service ([`QuarantinePolicy`]), voids
//!   everything uncertified, recovers with MILR, verifies, resumes,
//!   and re-executes the voided work. Certified outputs therefore
//!   match the fault-free model bit-for-bit whenever recovery is
//!   bit-exact (CRC-verified convolution recovery is; see the
//!   end-to-end test).
//! * Per-request latency, downtime windows, and **empirical
//!   availability** land in a [`ServeReport`], directly comparable to
//!   the closed-form `milr_core::availability` model.
//!
//! Two drivers share this control plane: [`sim::simulate`] — a
//! single-threaded discrete-event simulation on a **virtual clock**,
//! bit-reproducible under a seed (the benchmark and test path) — and
//! [`Server`] — real worker threads plus a scrubber daemon on the wall
//! clock.

#![deny(missing_docs)]

mod coldstart;
pub mod http;
mod ledger;
mod metrics;
mod report;
mod request;
mod scrubber;
mod server;
pub mod sim;
#[cfg(test)]
mod testutil;

pub use coldstart::{cold_start, cold_start_observed, ColdStartReport};
pub use ledger::CertificationLedger;
// The substrate-backed weight host and the shared integrity engine
// moved to `milr-integrity` (the serve/store/fleet drivers all ride
// it); re-exported here so serving callers keep one import path.
pub use metrics::{DowntimeLog, LatencyStats};
pub use milr_integrity::{
    Budget, EscalationPolicy, IntegrityPipeline, ModelHost, PipelineReport, RoundOutcome,
};
pub use report::{outcome_digest, ServeReport};
pub use request::{QuarantinePolicy, RejectReason, RequestId, RequestOutcome, RequestStatus};
pub use scrubber::ScrubCursor;
pub use server::{ReadPath, ResponseHandle, ServeError, Server, ServerConfig};
pub use sim::{simulate, simulate_observed, ChaosStats, SimConfig, SimResult, VirtualCosts};
