//! Zero-dependency live introspection transport: a minimal blocking
//! HTTP/1.1 listener (std [`TcpListener`] only) that the threaded
//! [`crate::Server`] uses to answer `GET /metrics`, `/health`,
//! `/slo`, and `/spans` while traffic and fault campaigns are in
//! flight.
//!
//! The listener is deliberately tiny: one accept loop on a
//! non-blocking socket polled against the server's stop flag, one
//! short-lived connection per request (`Connection: close`), and
//! request parsing that reads only the request line. That is all four
//! read-only introspection endpoints need, and it keeps the serving
//! crate free of HTTP dependencies.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// One introspection response: status code, content type, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code (200, 404, 405, 503).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body, sent with an exact `Content-Length`.
    pub body: String,
}

impl HttpResponse {
    /// Builds a response.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            content_type,
            body: body.into(),
        }
    }

    /// The 404 fallback for unknown paths.
    pub fn not_found() -> Self {
        HttpResponse::new(404, "text/plain; charset=utf-8", "not found\n")
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Largest request head accepted before the connection is dropped.
const MAX_HEAD_BYTES: usize = 8192;

/// Reads one request head and returns `(method, path)` — the path
/// with any query string stripped. `None` on malformed or timed-out
/// input (the connection is simply dropped).
///
/// The request line can arrive split across arbitrarily many TCP
/// segments — one byte per segment in the worst case — so this loops
/// until the line's `\r\n` terminator shows up or the head exceeds
/// [`MAX_HEAD_BYTES`]. A connection that hits EOF, times out, or
/// errors before the terminator never delivered a complete request
/// line; the truncated prefix is *not* parsed.
fn read_request(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut data = Vec::new();
    let mut buf = [0u8; 512];
    let line_end = loop {
        if let Some(pos) = data.windows(2).position(|w| w == b"\r\n") {
            break pos;
        }
        if data.len() >= MAX_HEAD_BYTES {
            return None;
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => data.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    };
    let line = String::from_utf8_lossy(&data[..line_end]);
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    Some((method, path))
}

fn write_response(stream: &mut TcpStream, resp: &HttpResponse) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// Accept loop: serves one request per connection through `route`
/// until `stop` reports true. The listener is switched to
/// non-blocking so the stop flag is polled every few milliseconds —
/// shutdown never waits on an idle socket. Individual connection
/// errors are swallowed (the client sees a dropped connection; the
/// server keeps serving).
pub fn serve_until(
    listener: TcpListener,
    stop: impl Fn() -> bool,
    route: impl Fn(&str, &str) -> HttpResponse,
) {
    let _ = listener.set_nonblocking(true);
    while !stop() {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                if let Some((method, path)) = read_request(&mut stream) {
                    let resp = route(&method, &path);
                    let _ = write_response(&mut stream, &resp);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn get(addr: std::net::SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_routed_responses_and_stops_on_flag() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                serve_until(
                    listener,
                    move || stop.load(Ordering::Acquire),
                    |method, path| match (method, path) {
                        ("GET", "/ping") => {
                            HttpResponse::new(200, "text/plain; charset=utf-8", "pong\n")
                        }
                        ("GET", _) => HttpResponse::not_found(),
                        _ => HttpResponse::new(405, "text/plain; charset=utf-8", "no\n"),
                    },
                )
            })
        };
        let ok = get(addr, "/ping?verbose=1");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("Content-Length: 5\r\n"), "{ok}");
        assert!(ok.ends_with("pong\n"), "{ok}");
        let missing = get(addr, "/nope");
        assert!(
            missing.starts_with("HTTP/1.1 404 Not Found\r\n"),
            "{missing}"
        );
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    /// Accepts one connection and runs `read_request` on it while the
    /// test body drives the client side of the socket pair.
    fn parse_one(client: impl FnOnce(TcpStream) + Send + 'static) -> Option<(String, String)> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || client(TcpStream::connect(addr).expect("connect")));
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let parsed = read_request(&mut stream);
        drop(stream); // EOF for a client blocked in read_to_end
        writer.join().unwrap();
        parsed
    }

    #[test]
    fn head_split_across_segments_is_reassembled() {
        // Worst-case segmentation: every byte of the head in its own
        // write, with the kernel given time to deliver them as
        // separate reads.
        let parsed = parse_one(|mut stream| {
            for byte in b"GET /split?x=1 HTTP/1.1\r\n" {
                stream.write_all(&[*byte]).unwrap();
                stream.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
            let mut out = Vec::new();
            let _ = stream.read_to_end(&mut out);
        });
        assert_eq!(parsed, Some(("GET".to_string(), "/split".to_string())));
    }

    #[test]
    fn truncated_request_line_is_dropped_not_parsed() {
        // The peer dies mid-request-line: no terminator ever arrives,
        // so the head must be rejected — not parsed as `GET /par`.
        let parsed = parse_one(|stream| {
            (&stream).write_all(b"GET /partial").unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
        });
        assert_eq!(parsed, None);
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let parsed = parse_one(|mut stream| {
            let long = vec![b'a'; MAX_HEAD_BYTES + 64];
            let _ = stream.write_all(b"GET /");
            let _ = stream.write_all(&long);
            let mut out = Vec::new();
            let _ = stream.read_to_end(&mut out);
        });
        assert_eq!(parsed, None);
    }
}
