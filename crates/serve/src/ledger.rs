//! The certification ledger: completed-but-unreleased batches.
//!
//! A batch's outputs are only released to clients once a full clean
//! scrub cycle *started after the batch finished* (see
//! [`ScrubCursor`](crate::scrubber::ScrubCursor)). Until then the batch
//! waits here; a flagged scrub invalidates everything pending, because
//! any of it may have been computed on corrupted weights.

use std::collections::VecDeque;

/// Pending completed batches, ordered by finish stamp.
#[derive(Debug, Clone)]
pub struct CertificationLedger<T> {
    pending: VecDeque<(u64, T)>,
}

impl<T> Default for CertificationLedger<T> {
    fn default() -> Self {
        CertificationLedger {
            pending: VecDeque::new(),
        }
    }
}

impl<T> CertificationLedger<T> {
    /// Records a batch that finished at `finish`. Stamps must be
    /// non-decreasing across calls (batches are recorded as they
    /// complete on one clock).
    ///
    /// # Panics
    ///
    /// Panics when `finish` precedes the last recorded stamp.
    pub fn record(&mut self, finish: u64, batch: T) {
        if let Some(&(last, _)) = self.pending.back() {
            assert!(finish >= last, "ledger stamps must be monotone");
        }
        self.pending.push_back((finish, batch));
    }

    /// Releases every batch whose finish stamp is `<= watermark` (a
    /// clean cycle started at `watermark` proves them).
    pub fn certify_before(&mut self, watermark: u64) -> Vec<T> {
        self.certify_before_stamped(watermark)
            .into_iter()
            .map(|(_, b)| b)
            .collect()
    }

    /// [`certify_before`](CertificationLedger::certify_before), keeping
    /// each batch's finish stamp — callers measuring certification
    /// hold time (`now − finish`) read it off the pair.
    pub fn certify_before_stamped(&mut self, watermark: u64) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        while let Some(&(finish, _)) = self.pending.front() {
            if finish > watermark {
                break;
            }
            out.push(self.pending.pop_front().unwrap());
        }
        out
    }

    /// Drains everything pending (a flagged scrub voids all of it).
    pub fn invalidate(&mut self) -> Vec<T> {
        self.pending.drain(..).map(|(_, b)| b).collect()
    }

    /// Number of pending batches.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certifies_only_up_to_watermark() {
        let mut l = CertificationLedger::default();
        l.record(10, "a");
        l.record(20, "b");
        l.record(30, "c");
        assert_eq!(l.certify_before(20), vec!["a", "b"]);
        assert_eq!(l.len(), 1);
        assert_eq!(l.certify_before(19), Vec::<&str>::new());
        assert_eq!(l.certify_before(30), vec!["c"]);
        assert!(l.is_empty());
    }

    #[test]
    fn invalidate_drains_everything() {
        let mut l = CertificationLedger::default();
        l.record(1, 10u32);
        l.record(2, 20);
        assert_eq!(l.invalidate(), vec![10, 20]);
        assert!(l.is_empty());
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejects_out_of_order_stamps() {
        let mut l = CertificationLedger::default();
        l.record(5, ());
        l.record(4, ());
    }
}
