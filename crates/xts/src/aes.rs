//! AES-128 block cipher, implemented from the FIPS-197 specification.
//!
//! This exists to model the memory-encryption engines (Intel MKTME / AMD
//! SEV) in whose *plaintext space* MILR operates: AES-XTS needs a real
//! block cipher so that a single ciphertext bit flip decrypts to an
//! unpredictable 128-bit garble, which is the error model that defeats
//! per-word SECDED and motivates MILR.
//!
//! Table-based, not constant-time — this is a simulator substrate, not a
//! production cryptographic library.
//!
//! # Kernel
//!
//! The hot path runs fused T-table rounds: four 256-entry `u32` tables
//! (`TE`, and `TD` for the equivalent inverse cipher) each combine
//! SubBytes, ShiftRows and the MixColumns column of one input row, so a
//! full round is 16 table lookups and 16 XORs instead of per-byte S-box
//! substitution plus 16 `gmul` field multiplications. Decryption uses
//! the FIPS-197 §5.3.5 *equivalent inverse cipher*: InvMixColumns is
//! folded into the decryption round keys once at key expansion, letting
//! the inverse rounds share the same fused shape. The inverse S-box is a
//! compile-time constant (no first-use derivation), and the original
//! per-byte implementation survives in [`scalar`] as the bit-equivalence
//! reference.

/// AES S-box.
static SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const fn build_inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// Inverse AES S-box, a compile-time constant derived from [`SBOX`].
static INV_SBOX: [u8; 256] = build_inv_sbox();

/// Multiplication by `x` in GF(2⁸) with the AES polynomial.
#[inline]
const fn xtime(a: u8) -> u8 {
    (a << 1) ^ (if a & 0x80 != 0 { 0x1b } else { 0 })
}

/// GF(2⁸) multiplication.
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// Encryption T-table for input row 0: `TE[0][x]` packs the MixColumns
/// column `[2, 1, 1, 3] · SBOX[x]` little-endian; rows 1..=3 are byte
/// rotations of row 0 (the matrix is circulant).
const fn build_te() -> [[u32; 256]; 4] {
    let mut te = [[0u32; 256]; 4];
    let mut x = 0;
    while x < 256 {
        let s = SBOX[x];
        let base = (gmul(s, 2) as u32)
            | ((s as u32) << 8)
            | ((s as u32) << 16)
            | ((gmul(s, 3) as u32) << 24);
        te[0][x] = base;
        te[1][x] = base.rotate_left(8);
        te[2][x] = base.rotate_left(16);
        te[3][x] = base.rotate_left(24);
        x += 1;
    }
    te
}

/// Decryption T-table for input row 0: `TD[0][x]` packs the
/// InvMixColumns column `[14, 9, 13, 11] · INV_SBOX[x]` little-endian.
const fn build_td() -> [[u32; 256]; 4] {
    let inv = build_inv_sbox();
    let mut td = [[0u32; 256]; 4];
    let mut x = 0;
    while x < 256 {
        let s = inv[x];
        let base = (gmul(s, 14) as u32)
            | ((gmul(s, 9) as u32) << 8)
            | ((gmul(s, 13) as u32) << 16)
            | ((gmul(s, 11) as u32) << 24);
        td[0][x] = base;
        td[1][x] = base.rotate_left(8);
        td[2][x] = base.rotate_left(16);
        td[3][x] = base.rotate_left(24);
        x += 1;
    }
    td
}

static TE: [[u32; 256]; 4] = build_te();
static TD: [[u32; 256]; 4] = build_td();

/// InvMixColumns applied to one little-endian-packed state column —
/// used once per decryption round key at key-expansion time (the
/// equivalent-inverse-cipher transform), never per block.
const fn inv_mix_word(w: u32) -> u32 {
    let (a0, a1, a2, a3) = (w as u8, (w >> 8) as u8, (w >> 16) as u8, (w >> 24) as u8);
    (gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)) as u32
        | (((gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)) as u32) << 8)
        | (((gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)) as u32) << 16)
        | (((gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)) as u32) << 24)
}

/// Expanded AES-128 key: 11 encryption round keys plus the
/// InvMixColumns-transformed decryption schedule of the equivalent
/// inverse cipher, each as 4 little-endian-packed state columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes128 {
    ek: [[u32; 4]; 11],
    dk: [[u32; 4]; 11],
}

impl Aes128 {
    /// Expands a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon: u8 = 1;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in &mut temp {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut ek = [[0u32; 4]; 11];
        for (r, rk) in ek.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c] = u32::from_le_bytes(w[4 * r + c]);
            }
        }
        // Equivalent inverse cipher schedule: reversed round order, with
        // InvMixColumns folded into every inner round key.
        let mut dk = [[0u32; 4]; 11];
        dk[0] = ek[10];
        dk[10] = ek[0];
        for r in 1..10 {
            for c in 0..4 {
                dk[r][c] = inv_mix_word(ek[10 - r][c]);
            }
        }
        Aes128 { ek, dk }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let load = |b: &[u8; 16], c: usize| {
            u32::from_le_bytes([b[4 * c], b[4 * c + 1], b[4 * c + 2], b[4 * c + 3]])
        };
        let rk = &self.ek;
        let mut c0 = load(block, 0) ^ rk[0][0];
        let mut c1 = load(block, 1) ^ rk[0][1];
        let mut c2 = load(block, 2) ^ rk[0][2];
        let mut c3 = load(block, 3) ^ rk[0][3];
        for round in rk[1..10].iter() {
            let t0 = TE[0][(c0 & 0xFF) as usize]
                ^ TE[1][((c1 >> 8) & 0xFF) as usize]
                ^ TE[2][((c2 >> 16) & 0xFF) as usize]
                ^ TE[3][(c3 >> 24) as usize]
                ^ round[0];
            let t1 = TE[0][(c1 & 0xFF) as usize]
                ^ TE[1][((c2 >> 8) & 0xFF) as usize]
                ^ TE[2][((c3 >> 16) & 0xFF) as usize]
                ^ TE[3][(c0 >> 24) as usize]
                ^ round[1];
            let t2 = TE[0][(c2 & 0xFF) as usize]
                ^ TE[1][((c3 >> 8) & 0xFF) as usize]
                ^ TE[2][((c0 >> 16) & 0xFF) as usize]
                ^ TE[3][(c1 >> 24) as usize]
                ^ round[2];
            let t3 = TE[0][(c3 & 0xFF) as usize]
                ^ TE[1][((c0 >> 8) & 0xFF) as usize]
                ^ TE[2][((c1 >> 16) & 0xFF) as usize]
                ^ TE[3][(c2 >> 24) as usize]
                ^ round[3];
            (c0, c1, c2, c3) = (t0, t1, t2, t3);
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let sb = |x: u32, shift: u32| (SBOX[((x >> shift) & 0xFF) as usize] as u32) << shift;
        let o0 = sb(c0, 0) | sb(c1, 8) | sb(c2, 16) | sb(c3, 24);
        let o1 = sb(c1, 0) | sb(c2, 8) | sb(c3, 16) | sb(c0, 24);
        let o2 = sb(c2, 0) | sb(c3, 8) | sb(c0, 16) | sb(c1, 24);
        let o3 = sb(c3, 0) | sb(c0, 8) | sb(c1, 16) | sb(c2, 24);
        block[0..4].copy_from_slice(&(o0 ^ rk[10][0]).to_le_bytes());
        block[4..8].copy_from_slice(&(o1 ^ rk[10][1]).to_le_bytes());
        block[8..12].copy_from_slice(&(o2 ^ rk[10][2]).to_le_bytes());
        block[12..16].copy_from_slice(&(o3 ^ rk[10][3]).to_le_bytes());
    }

    /// Decrypts one 16-byte block in place (equivalent inverse cipher).
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let load = |b: &[u8; 16], c: usize| {
            u32::from_le_bytes([b[4 * c], b[4 * c + 1], b[4 * c + 2], b[4 * c + 3]])
        };
        let rk = &self.dk;
        let mut c0 = load(block, 0) ^ rk[0][0];
        let mut c1 = load(block, 1) ^ rk[0][1];
        let mut c2 = load(block, 2) ^ rk[0][2];
        let mut c3 = load(block, 3) ^ rk[0][3];
        for round in rk[1..10].iter() {
            // InvShiftRows moves row r of column j in from column j - r.
            let t0 = TD[0][(c0 & 0xFF) as usize]
                ^ TD[1][((c3 >> 8) & 0xFF) as usize]
                ^ TD[2][((c2 >> 16) & 0xFF) as usize]
                ^ TD[3][(c1 >> 24) as usize]
                ^ round[0];
            let t1 = TD[0][(c1 & 0xFF) as usize]
                ^ TD[1][((c0 >> 8) & 0xFF) as usize]
                ^ TD[2][((c3 >> 16) & 0xFF) as usize]
                ^ TD[3][(c2 >> 24) as usize]
                ^ round[1];
            let t2 = TD[0][(c2 & 0xFF) as usize]
                ^ TD[1][((c1 >> 8) & 0xFF) as usize]
                ^ TD[2][((c0 >> 16) & 0xFF) as usize]
                ^ TD[3][(c3 >> 24) as usize]
                ^ round[2];
            let t3 = TD[0][(c3 & 0xFF) as usize]
                ^ TD[1][((c2 >> 8) & 0xFF) as usize]
                ^ TD[2][((c1 >> 16) & 0xFF) as usize]
                ^ TD[3][(c0 >> 24) as usize]
                ^ round[3];
            (c0, c1, c2, c3) = (t0, t1, t2, t3);
        }
        // Final round: InvSubBytes + InvShiftRows + AddRoundKey.
        let sb = |x: u32, shift: u32| (INV_SBOX[((x >> shift) & 0xFF) as usize] as u32) << shift;
        let o0 = sb(c0, 0) | sb(c3, 8) | sb(c2, 16) | sb(c1, 24);
        let o1 = sb(c1, 0) | sb(c0, 8) | sb(c3, 16) | sb(c2, 24);
        let o2 = sb(c2, 0) | sb(c1, 8) | sb(c0, 16) | sb(c3, 24);
        let o3 = sb(c3, 0) | sb(c2, 8) | sb(c1, 16) | sb(c0, 24);
        block[0..4].copy_from_slice(&(o0 ^ rk[10][0]).to_le_bytes());
        block[4..8].copy_from_slice(&(o1 ^ rk[10][1]).to_le_bytes());
        block[8..12].copy_from_slice(&(o2 ^ rk[10][2]).to_le_bytes());
        block[12..16].copy_from_slice(&(o3 ^ rk[10][3]).to_le_bytes());
    }
}

/// Scalar reference implementation.
///
/// The original per-byte FIPS-197 cipher — SubBytes, ShiftRows and
/// MixColumns as separate passes with `gmul` field multiplications —
/// kept as the ground truth the T-table kernels are proptested against
/// and as the baseline side of `kernel_bench`.
pub mod scalar {
    use super::{gmul, xtime, INV_SBOX, SBOX};

    /// Expanded AES-128 key for the per-byte reference cipher.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Aes128 {
        round_keys: [[u8; 16]; 11],
    }

    impl Aes128 {
        /// Expands a 128-bit key.
        pub fn new(key: &[u8; 16]) -> Self {
            let mut w = [[0u8; 4]; 44];
            for i in 0..4 {
                w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
            }
            let mut rcon: u8 = 1;
            for i in 4..44 {
                let mut temp = w[i - 1];
                if i % 4 == 0 {
                    temp.rotate_left(1);
                    for t in &mut temp {
                        *t = SBOX[*t as usize];
                    }
                    temp[0] ^= rcon;
                    rcon = xtime(rcon);
                }
                for j in 0..4 {
                    w[i][j] = w[i - 4][j] ^ temp[j];
                }
            }
            let mut round_keys = [[0u8; 16]; 11];
            for (r, rk) in round_keys.iter_mut().enumerate() {
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
            }
            Aes128 { round_keys }
        }

        /// Encrypts one 16-byte block in place.
        pub fn encrypt_block(&self, block: &mut [u8; 16]) {
            add_round_key(block, &self.round_keys[0]);
            for round in 1..10 {
                sub_bytes(block);
                shift_rows(block);
                mix_columns(block);
                add_round_key(block, &self.round_keys[round]);
            }
            sub_bytes(block);
            shift_rows(block);
            add_round_key(block, &self.round_keys[10]);
        }

        /// Decrypts one 16-byte block in place.
        pub fn decrypt_block(&self, block: &mut [u8; 16]) {
            add_round_key(block, &self.round_keys[10]);
            inv_shift_rows(block);
            inv_sub_bytes(block);
            for round in (1..10).rev() {
                add_round_key(block, &self.round_keys[round]);
                inv_mix_columns(block);
                inv_shift_rows(block);
                inv_sub_bytes(block);
            }
            add_round_key(block, &self.round_keys[0]);
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    /// State layout: byte `i` is row `i % 4`, column `i / 4` (FIPS-197
    /// column-major order).
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for row in 1..4 {
            for col in 0..4 {
                state[row + 4 * col] = s[row + 4 * ((col + row) % 4)];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for row in 1..4 {
            for col in 0..4 {
                state[row + 4 * ((col + row) % 4)] = s[row + 4 * col];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for col in 0..4 {
            let c = &mut state[4 * col..4 * col + 4];
            let (a0, a1, a2, a3) = (c[0], c[1], c[2], c[3]);
            c[0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
            c[1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
            c[2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
            c[3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for col in 0..4 {
            let c = &mut state[4 * col..4 * col + 4];
            let (a0, a1, a2, a3) = (c[0], c[1], c[2], c[3]);
            c[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
            c[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
            c[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
            c[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mix_columns_roundtrip() {
            let mut state: [u8; 16] = core::array::from_fn(|i| (i * 17 + 3) as u8);
            let original = state;
            mix_columns(&mut state);
            assert_ne!(state, original);
            inv_mix_columns(&mut state);
            assert_eq!(state, original);
        }

        #[test]
        fn shift_rows_roundtrip() {
            let mut state: [u8; 16] = core::array::from_fn(|i| i as u8);
            let original = state;
            shift_rows(&mut state);
            inv_shift_rows(&mut state);
            assert_eq!(state, original);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B worked example.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let mut block: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 Appendix C.1 example vectors.
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn gf_multiplication_basics() {
        assert_eq!(gmul(0x57, 0x13), 0xfe); // FIPS-197 §4.2 example
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }

    #[test]
    fn sbox_inverse_is_consistent() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
        }
    }

    proptest! {
        #[test]
        fn encrypt_decrypt_roundtrip(
            key in proptest::array::uniform16(proptest::num::u8::ANY),
            plain in proptest::array::uniform16(proptest::num::u8::ANY),
        ) {
            let aes = Aes128::new(&key);
            let mut block = plain;
            aes.encrypt_block(&mut block);
            aes.decrypt_block(&mut block);
            prop_assert_eq!(block, plain);
        }

        // Bit-equivalence: the fused T-table cipher must produce exactly
        // the bytes of the per-byte reference for arbitrary keys and
        // blocks, in both directions.
        #[test]
        fn optimized_matches_scalar(
            key in proptest::array::uniform16(proptest::num::u8::ANY),
            plain in proptest::array::uniform16(proptest::num::u8::ANY),
        ) {
            let fast = Aes128::new(&key);
            let slow = scalar::Aes128::new(&key);
            let mut a = plain;
            let mut b = plain;
            fast.encrypt_block(&mut a);
            slow.encrypt_block(&mut b);
            prop_assert_eq!(a, b);
            fast.decrypt_block(&mut a);
            slow.decrypt_block(&mut b);
            prop_assert_eq!(a, b);
            prop_assert_eq!(a, plain);
        }

        #[test]
        fn avalanche_one_plaintext_bit(
            key in proptest::array::uniform16(proptest::num::u8::ANY),
            plain in proptest::array::uniform16(proptest::num::u8::ANY),
            bit in 0usize..128,
        ) {
            let aes = Aes128::new(&key);
            let mut a = plain;
            let mut b = plain;
            b[bit / 8] ^= 1 << (bit % 8);
            aes.encrypt_block(&mut a);
            aes.encrypt_block(&mut b);
            let diff: u32 = a.iter().zip(b.iter())
                .map(|(x, y)| (x ^ y).count_ones())
                .sum();
            // Expect roughly half the 128 bits to differ; demand > 20.
            prop_assert!(diff > 20, "only {diff} bits differ");
        }
    }
}
