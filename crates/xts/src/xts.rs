use crate::aes::Aes128;
use std::fmt;

/// Errors from the XTS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XtsError {
    /// Data length is not a positive multiple of the 16-byte block size.
    BadLength {
        /// Offending length in bytes.
        len: usize,
    },
}

impl fmt::Display for XtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XtsError::BadLength { len } => write!(
                f,
                "data length {len} is not a positive multiple of 16 bytes"
            ),
        }
    }
}

impl std::error::Error for XtsError {}

/// XTS-AES-128 tweakable block cipher (IEEE 1619), the mode used by
/// Intel MKTME and AMD SEV memory encryption (paper Fig. 1).
///
/// Each *data unit* (here: a run of 16-byte blocks sharing a tweak
/// index, like a cache line or sector) is encrypted with a tweak derived
/// from its address, so identical plaintext at different addresses yields
/// different ciphertext. The property MILR cares about: ciphertext and
/// plaintext are related by a full-block permutation, so **one flipped
/// ciphertext bit decrypts to ~64 flipped plaintext bits confined to one
/// 16-byte block** — a whole-weight error in each of the four `f32`
/// parameters sharing that block.
#[derive(Debug, Clone)]
pub struct XtsCipher {
    data_key: Aes128,
    tweak_key: Aes128,
}

impl XtsCipher {
    /// Creates a cipher from the two XTS keys.
    pub fn new(data_key: &[u8; 16], tweak_key: &[u8; 16]) -> Self {
        XtsCipher {
            data_key: Aes128::new(data_key),
            tweak_key: Aes128::new(tweak_key),
        }
    }

    fn initial_tweak(&self, unit: u64) -> [u8; 16] {
        let mut t = [0u8; 16];
        t[..8].copy_from_slice(&unit.to_le_bytes());
        self.tweak_key.encrypt_block(&mut t);
        t
    }

    /// Multiplies the tweak by α in GF(2¹²⁸) (little-endian convention).
    fn bump_tweak(t: &mut [u8; 16]) {
        let mut carry = 0u8;
        for b in t.iter_mut() {
            let next_carry = *b >> 7;
            *b = (*b << 1) | carry;
            carry = next_carry;
        }
        if carry != 0 {
            t[0] ^= 0x87;
        }
    }

    /// Encrypts a data unit in place.
    ///
    /// # Errors
    ///
    /// Returns [`XtsError::BadLength`] unless `data.len()` is a positive
    /// multiple of 16 (ciphertext stealing is not needed for the aligned
    /// weight buffers this models).
    pub fn encrypt_unit(&self, data: &mut [u8], unit: u64) -> Result<(), XtsError> {
        self.process_unit(data, unit, true)
    }

    /// Decrypts a data unit in place.
    ///
    /// # Errors
    ///
    /// Returns [`XtsError::BadLength`] unless `data.len()` is a positive
    /// multiple of 16.
    pub fn decrypt_unit(&self, data: &mut [u8], unit: u64) -> Result<(), XtsError> {
        self.process_unit(data, unit, false)
    }

    fn process_unit(&self, data: &mut [u8], unit: u64, encrypt: bool) -> Result<(), XtsError> {
        if data.is_empty() || !data.len().is_multiple_of(16) {
            return Err(XtsError::BadLength { len: data.len() });
        }
        let mut tweak = self.initial_tweak(unit);
        for block in data.chunks_mut(16) {
            let mut buf: [u8; 16] = block.try_into().expect("chunk is 16 bytes");
            for (b, t) in buf.iter_mut().zip(tweak.iter()) {
                *b ^= t;
            }
            if encrypt {
                self.data_key.encrypt_block(&mut buf);
            } else {
                self.data_key.decrypt_block(&mut buf);
            }
            for (b, t) in buf.iter_mut().zip(tweak.iter()) {
                *b ^= t;
            }
            block.copy_from_slice(&buf);
            Self::bump_tweak(&mut tweak);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn ieee1619_vector_1() {
        // IEEE 1619-2007 XTS-AES-128 Vector 1: all-zero keys, unit 0,
        // 32 zero bytes.
        let cipher = XtsCipher::new(&[0u8; 16], &[0u8; 16]);
        let mut data = vec![0u8; 32];
        cipher.encrypt_unit(&mut data, 0).unwrap();
        assert_eq!(
            data,
            hex("917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e")
        );
        cipher.decrypt_unit(&mut data, 0).unwrap();
        assert_eq!(data, vec![0u8; 32]);
    }

    #[test]
    fn ieee1619_vector_2() {
        // IEEE 1619-2007 Vector 2: unit 0x3333333333, repeated 0x44 keys.
        let key1: [u8; 16] = hex("11111111111111111111111111111111").try_into().unwrap();
        let key2: [u8; 16] = hex("22222222222222222222222222222222").try_into().unwrap();
        let cipher = XtsCipher::new(&key1, &key2);
        let mut data = hex("4444444444444444444444444444444444444444444444444444444444444444");
        cipher.encrypt_unit(&mut data, 0x3333333333).unwrap();
        assert_eq!(
            data,
            hex("c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0")
        );
    }

    #[test]
    fn rejects_bad_lengths() {
        let cipher = XtsCipher::new(&[0u8; 16], &[1u8; 16]);
        let mut empty: Vec<u8> = vec![];
        assert!(cipher.encrypt_unit(&mut empty, 0).is_err());
        let mut odd = vec![0u8; 15];
        assert!(matches!(
            cipher.decrypt_unit(&mut odd, 0),
            Err(XtsError::BadLength { len: 15 })
        ));
    }

    #[test]
    fn different_units_give_different_ciphertext() {
        let cipher = XtsCipher::new(&[7u8; 16], &[9u8; 16]);
        let mut a = vec![0xAB; 16];
        let mut b = vec![0xAB; 16];
        cipher.encrypt_unit(&mut a, 1).unwrap();
        cipher.encrypt_unit(&mut b, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn ciphertext_bit_flip_garbles_exactly_one_block() {
        let cipher = XtsCipher::new(&[3u8; 16], &[5u8; 16]);
        let plain: Vec<u8> = (0..48).collect();
        let mut data = plain.clone();
        cipher.encrypt_unit(&mut data, 9).unwrap();
        // Flip one bit in the middle block of the ciphertext.
        data[20] ^= 0x10;
        cipher.decrypt_unit(&mut data, 9).unwrap();
        // Block 0 and block 2 are untouched; block 1 is heavily garbled.
        assert_eq!(&data[0..16], &plain[0..16]);
        assert_eq!(&data[32..48], &plain[32..48]);
        let diff: u32 = data[16..32]
            .iter()
            .zip(plain[16..32].iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(diff > 20, "plaintext garble too small: {diff} bits");
    }

    proptest! {
        #[test]
        fn roundtrip_any_unit(
            key1 in proptest::array::uniform16(proptest::num::u8::ANY),
            key2 in proptest::array::uniform16(proptest::num::u8::ANY),
            blocks in 1usize..5,
            unit in proptest::num::u64::ANY,
            seed in proptest::num::u8::ANY,
        ) {
            let cipher = XtsCipher::new(&key1, &key2);
            let plain: Vec<u8> = (0..blocks * 16).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect();
            let mut data = plain.clone();
            cipher.encrypt_unit(&mut data, unit).unwrap();
            prop_assert_ne!(&data, &plain);
            cipher.decrypt_unit(&mut data, unit).unwrap();
            prop_assert_eq!(data, plain);
        }
    }
}
