use crate::{XtsCipher, XtsError};
use bytes::{BufMut, BytesMut};

/// Bytes per AES block — the granularity at which a ciphertext error
/// garbles plaintext.
pub const BLOCK_BYTES: usize = 16;

/// `f32` weights per encryption block (4).
pub const WEIGHTS_PER_BLOCK: usize = BLOCK_BYTES / 4;

/// A weight buffer held as AES-XTS ciphertext — the *plaintext space /
/// ciphertext space* memory model of the paper's encrypted-VM scenario.
///
/// The weights live encrypted in (error-prone) main memory; inference
/// reads decrypt them. Faults and attacks flip *ciphertext* bits; after
/// decryption those become concentrated multi-bit plaintext errors
/// spanning whole weights, which SECDED-per-word cannot correct but MILR
/// can. Each 16-byte block is its own XTS data unit, indexed by its
/// block number (standing in for the physical address tweak of MKTME).
#[derive(Debug, Clone)]
pub struct EncryptedMemory {
    cipher: XtsCipher,
    ciphertext: BytesMut,
    /// Number of valid weights (the final block may be partially
    /// padded).
    len: usize,
}

impl EncryptedMemory {
    /// Encrypts a weight buffer. The buffer is padded with zeros to a
    /// whole number of 16-byte blocks.
    ///
    /// # Errors
    ///
    /// Propagates [`XtsError`] from the cipher (cannot occur for the
    /// padded length produced here, but kept in the signature for
    /// forward compatibility).
    pub fn encrypt(weights: &[f32], cipher: XtsCipher) -> Result<Self, XtsError> {
        let mut buf = BytesMut::with_capacity(weights.len().div_ceil(WEIGHTS_PER_BLOCK) * 16);
        for w in weights {
            buf.put_slice(&w.to_le_bytes());
        }
        while !buf.len().is_multiple_of(BLOCK_BYTES) {
            buf.put_u8(0);
        }
        for (unit, block) in buf.chunks_mut(BLOCK_BYTES).enumerate() {
            cipher.encrypt_unit(block, unit as u64)?;
        }
        Ok(EncryptedMemory {
            cipher,
            ciphertext: buf,
            len: weights.len(),
        })
    }

    /// Reconstructs a memory from a raw ciphertext image (the
    /// persistence path: ciphertext round-trips through disk without a
    /// decrypt, preserving any in-flight error state bit-for-bit).
    ///
    /// # Errors
    ///
    /// Returns [`XtsError::BadLength`] when the image is not a whole
    /// number of blocks or cannot hold `len` weights.
    pub fn from_ciphertext(
        ciphertext: Vec<u8>,
        len: usize,
        cipher: XtsCipher,
    ) -> Result<Self, XtsError> {
        if !ciphertext.len().is_multiple_of(BLOCK_BYTES) || ciphertext.len() < len * 4 {
            return Err(XtsError::BadLength {
                len: ciphertext.len(),
            });
        }
        let mut buf = BytesMut::with_capacity(ciphertext.len());
        buf.put_slice(&ciphertext);
        Ok(EncryptedMemory {
            cipher,
            ciphertext: buf,
            len,
        })
    }

    /// Replaces the stored ciphertext in place from a raw image of the
    /// same geometry (the peer-repair path: another replica's certified
    /// ciphertext overwrites this one's, bit for bit, without a
    /// decrypt).
    ///
    /// # Errors
    ///
    /// Returns [`XtsError::BadLength`] when the image length differs
    /// from the stored ciphertext length.
    pub fn set_ciphertext(&mut self, ciphertext: &[u8]) -> Result<(), XtsError> {
        if ciphertext.len() != self.ciphertext.len() {
            return Err(XtsError::BadLength {
                len: ciphertext.len(),
            });
        }
        self.ciphertext.copy_from_slice(ciphertext);
        Ok(())
    }

    /// Number of stored weights.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no weights are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total ciphertext bits (the space over which RBER faults are
    /// drawn in the ciphertext-space experiments).
    pub fn ciphertext_bits(&self) -> usize {
        self.ciphertext.len() * 8
    }

    /// Raw ciphertext bytes.
    pub fn ciphertext(&self) -> &[u8] {
        &self.ciphertext
    }

    /// Flips one ciphertext bit, simulating a soft memory error or a
    /// memory-corruption attack on the encrypted VM's DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn flip_ciphertext_bit(&mut self, bit: usize) {
        assert!(bit < self.ciphertext_bits(), "bit index out of range");
        self.ciphertext[bit / 8] ^= 1 << (bit % 8);
    }

    /// The range of weight indices garbled by a fault in the given
    /// ciphertext bit: all weights sharing its 16-byte block.
    pub fn blast_radius(&self, bit: usize) -> std::ops::Range<usize> {
        let block = bit / 8 / BLOCK_BYTES;
        let start = block * WEIGHTS_PER_BLOCK;
        start.min(self.len)..((block + 1) * WEIGHTS_PER_BLOCK).min(self.len)
    }

    /// Decrypts the entire buffer into plaintext weights, as an
    /// inference pass (or MILR's detection pass) would observe them.
    ///
    /// # Errors
    ///
    /// Propagates [`XtsError`] from the cipher.
    pub fn decrypt_all(&self) -> Result<Vec<f32>, XtsError> {
        let mut buf = self.ciphertext.to_vec();
        for (unit, block) in buf.chunks_mut(BLOCK_BYTES).enumerate() {
            self.cipher.decrypt_unit(block, unit as u64)?;
        }
        Ok(buf
            .chunks_exact(4)
            .take(self.len)
            .map(|b| f32::from_le_bytes(b.try_into().expect("chunk of 4")))
            .collect())
    }

    /// Re-encrypts a repaired weight buffer in place (MILR writing
    /// recovered parameters back through the memory-encryption engine).
    ///
    /// # Errors
    ///
    /// Propagates [`XtsError`]; also returned if `weights.len()` differs
    /// from the stored length.
    pub fn overwrite(&mut self, weights: &[f32]) -> Result<(), XtsError> {
        if weights.len() != self.len {
            return Err(XtsError::BadLength { len: weights.len() });
        }
        *self = EncryptedMemory::encrypt(weights, self.cipher.clone())?;
        Ok(())
    }

    /// Re-encrypts only the blocks holding the given weights, leaving
    /// every untouched block's ciphertext — including any in-flight
    /// error state — bit-for-bit intact. Each touched 16-byte block is
    /// decrypted, patched in its 4-byte lanes, and re-encrypted once.
    ///
    /// # Errors
    ///
    /// Returns [`XtsError::BadLength`] when an index is out of range;
    /// propagates [`XtsError`] from the cipher.
    pub fn overwrite_sparse(&mut self, updates: &[(usize, f32)]) -> Result<(), XtsError> {
        for &(idx, _) in updates {
            if idx >= self.len {
                return Err(XtsError::BadLength { len: idx + 1 });
            }
        }
        let mut blocks: Vec<usize> = updates
            .iter()
            .map(|&(idx, _)| idx / WEIGHTS_PER_BLOCK)
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        let bytes: &mut [u8] = &mut self.ciphertext;
        for block in blocks {
            let buf = &mut bytes[block * BLOCK_BYTES..(block + 1) * BLOCK_BYTES];
            self.cipher.decrypt_unit(buf, block as u64)?;
            for &(idx, value) in updates {
                if idx / WEIGHTS_PER_BLOCK == block {
                    let off = (idx % WEIGHTS_PER_BLOCK) * 4;
                    buf[off..off + 4].copy_from_slice(&value.to_le_bytes());
                }
            }
            self.cipher.encrypt_unit(buf, block as u64)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> XtsCipher {
        XtsCipher::new(&[0x0F; 16], &[0xF0; 16])
    }

    fn weights(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.5 - 8.0).collect()
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        for n in [1usize, 3, 4, 17, 64] {
            let w = weights(n);
            let mem = EncryptedMemory::encrypt(&w, cipher()).unwrap();
            assert_eq!(mem.len(), n);
            assert_eq!(mem.decrypt_all().unwrap(), w);
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let w = weights(8);
        let mem = EncryptedMemory::encrypt(&w, cipher()).unwrap();
        let plain_bytes: Vec<u8> = w.iter().flat_map(|x| x.to_le_bytes()).collect();
        assert_ne!(mem.ciphertext(), &plain_bytes[..]);
    }

    #[test]
    fn one_ciphertext_bit_garbles_whole_block_of_weights() {
        let w = weights(12);
        let mut mem = EncryptedMemory::encrypt(&w, cipher()).unwrap();
        // Flip a bit in block 1 (weights 4..8).
        let bit = 17 * 8 + 3;
        mem.flip_ciphertext_bit(bit);
        assert_eq!(mem.blast_radius(bit), 4..8);
        let out = mem.decrypt_all().unwrap();
        // Outside the block: intact. Inside: garbled (whole-weight
        // errors).
        assert_eq!(&out[0..4], &w[0..4]);
        assert_eq!(&out[8..12], &w[8..12]);
        let changed = out[4..8]
            .iter()
            .zip(w[4..8].iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed >= 3, "only {changed} of 4 block weights changed");
    }

    #[test]
    fn blast_radius_clamps_to_buffer_end() {
        let w = weights(5); // pads to 2 blocks, weights 4..8 mostly pad
        let mem = EncryptedMemory::encrypt(&w, cipher()).unwrap();
        let last_bit = mem.ciphertext_bits() - 1;
        assert_eq!(mem.blast_radius(last_bit), 4..5);
    }

    #[test]
    fn overwrite_heals_corruption() {
        let w = weights(8);
        let mut mem = EncryptedMemory::encrypt(&w, cipher()).unwrap();
        mem.flip_ciphertext_bit(0);
        assert_ne!(mem.decrypt_all().unwrap(), w);
        mem.overwrite(&w).unwrap();
        assert_eq!(mem.decrypt_all().unwrap(), w);
        assert!(mem.overwrite(&weights(9)).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_bounds_checked() {
        let mut mem = EncryptedMemory::encrypt(&weights(4), cipher()).unwrap();
        mem.flip_ciphertext_bit(mem.ciphertext_bits());
    }
}
