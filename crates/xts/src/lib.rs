//! # milr-xts
//!
//! AES-128-XTS memory-encryption model for the MILR reproduction.
//!
//! The paper's central framing (§I) is the distinction between
//! *ciphertext space* and *plaintext space*: CNN weights in an encrypted
//! VM (AMD SEV, Intel MKTME) live in DRAM as AES-XTS ciphertext. A single
//! bit error in the ciphertext decrypts to a concentrated ~64-bit garble
//! of one 128-bit block — four whole `f32` weights — which per-word
//! SECDED ECC cannot correct. MILR is the plaintext-space error
//! correction (PSEC) scheme for exactly this regime.
//!
//! This crate builds that model from scratch:
//!
//! * [`Aes128`] — the FIPS-197 block cipher (validated against the
//!   specification's test vectors);
//! * [`XtsCipher`] — IEEE 1619 XTS mode with per-block address tweaks
//!   (validated against IEEE 1619 vectors);
//! * [`EncryptedMemory`] — a weight buffer stored as ciphertext, with
//!   bit-flip injection and blast-radius queries used by `milr-fault`'s
//!   ciphertext-space experiments.
//!
//! ```
//! use milr_xts::{EncryptedMemory, XtsCipher};
//!
//! let cipher = XtsCipher::new(&[1; 16], &[2; 16]);
//! let weights = vec![0.5f32, -1.25, 3.0, 0.0];
//! let mut mem = EncryptedMemory::encrypt(&weights, cipher)?;
//! mem.flip_ciphertext_bit(9); // one DRAM soft error…
//! let seen = mem.decrypt_all()?;
//! // …garbles the whole 4-weight block in plaintext space.
//! assert_ne!(seen, weights);
//! # Ok::<(), milr_xts::XtsError>(())
//! ```

#![deny(missing_docs)]

mod aes;
mod memory;
mod xts;

/// Scalar reference AES cipher (bit-equivalence ground truth and the
/// baseline side of `kernel_bench`).
pub use aes::scalar;
pub use aes::Aes128;
pub use memory::{EncryptedMemory, BLOCK_BYTES, WEIGHTS_PER_BLOCK};
pub use xts::{XtsCipher, XtsError};
