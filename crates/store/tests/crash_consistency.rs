//! Crash consistency of the `.milr` commit protocols.
//!
//! The kill-point harness snapshots the store's on-disk state at every
//! step of a commit — including artificially truncated journals (a
//! kill mid-`write`) — and asserts each snapshot **reloads to a
//! certified old-or-new state**: `Store::open` succeeds, the decoded
//! weights are exactly the pre-commit or the post-commit bits (never a
//! mixture), and MILR detection against the stored artifacts reaches a
//! clean verdict (directly, or after the scrub-on-load heal the old
//! state was awaiting).

use milr_core::{Milr, MilrConfig};
use milr_nn::{Layer, Sequential};
use milr_store::{journal_path, shadow_path, Store, StoreOptions};
use milr_substrate::{PagePatch, SharedSubstrate, SubstrateKind};
use milr_tensor::{ConvSpec, Padding, TensorRng};
use std::path::{Path, PathBuf};

fn model() -> Sequential {
    let mut rng = TensorRng::new(77);
    let mut m = Sequential::new(vec![8, 8, 1]);
    let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
    m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::bias_zero(4)).unwrap();
    m.push(Layer::Flatten).unwrap();
    m.push(Layer::dense_random(6 * 6 * 4, 5, &mut rng).unwrap())
        .unwrap();
    m
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("milr-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copies the store file plus any journal/shadow droppings.
fn snapshot(store: &Path, dest_dir: &Path, tag: &str) -> PathBuf {
    let dest = dest_dir.join(format!("{tag}.milr"));
    std::fs::copy(store, &dest).unwrap();
    for (src, suffix) in [
        (journal_path(store), ".journal"),
        (shadow_path(store), ".shadow"),
    ] {
        if src.exists() {
            let mut os = dest.as_os_str().to_os_string();
            os.push(suffix);
            std::fs::copy(&src, PathBuf::from(os)).unwrap();
        }
    }
    dest
}

fn open_shared(store: &Store) -> SharedSubstrate {
    SharedSubstrate::from_parts(
        store
            .open_substrates(4)
            .into_iter()
            .map(|(_, s)| s)
            .collect(),
    )
}

fn weight_bits(shared: &SharedSubstrate) -> Vec<u32> {
    shared.read_weights().iter().map(|v| v.to_bits()).collect()
}

/// Builds the live model a snapshot serves: template + decoded shards.
fn materialize(store: &Store, shared: &SharedSubstrate) -> Sequential {
    let mut m = store.template().clone();
    for (shard, entry) in store.layers().iter().enumerate() {
        let data = shared.read_shard(shard);
        let dims = m.layers()[entry.layer]
            .params()
            .unwrap()
            .shape()
            .dims()
            .to_vec();
        *m.layers_mut()[entry.layer].params_mut().unwrap() =
            milr_tensor::Tensor::from_vec(data, &dims).unwrap();
    }
    m
}

/// The certified-reload check: the snapshot opens, its weights are
/// bit-exactly `old` or `new`, and scrub + detect + recover reaches a
/// clean state.
fn assert_reloads_old_or_new(snap: &Path, old: &[u32], new: &[u32], what: &str) {
    let store = Store::open(snap).unwrap_or_else(|e| panic!("{what}: failed to reload: {e}"));
    let shared = open_shared(&store);
    let bits = weight_bits(&shared);
    assert!(
        bits == old || bits == new,
        "{what}: snapshot weights are neither old nor new (torn state)"
    );
    shared.scrub();
    let mut live = materialize(&store, &shared);
    let milr = store.milr().clone();
    let report = milr.detect(&live).unwrap();
    if !report.is_clean() {
        milr.recover_layers(&mut live, &report.flagged).unwrap();
        let verify = milr.detect(&live).unwrap();
        assert!(
            verify.is_clean(),
            "{what}: snapshot could not heal to a certified state"
        );
    }
}

#[test]
fn every_journal_kill_point_reloads_to_old_or_new() {
    let golden = model();
    let dir = temp_dir("journal");
    let path = dir.join("store.milr");
    Store::create(
        &path,
        &golden,
        MilrConfig::default(),
        StoreOptions {
            kind: SubstrateKind::Secded,
            page_weights: 16,
        },
    )
    .unwrap();

    // Old state: a disk fault corrupted conv layer 0 (still certified:
    // it reloads and heals). New state: the healed pages.
    let store = Store::open(&path).unwrap();
    let stride = store.layer_raw_bits(0) / 36;
    for bit in 7 * stride..8 * stride {
        store.flip_raw_bit(0, bit).unwrap();
    }
    drop(store);

    let store = Store::open(&path).unwrap();
    let shared = open_shared(&store);
    let old_bits = weight_bits(&shared);
    // Heal in memory (substrate scrub + MILR recovery + write-back),
    // then flush through the journal with the kill-point observer.
    shared.scrub();
    let mut live = materialize(&store, &shared);
    let milr = store.milr().clone();
    let report = milr.detect(&live).unwrap();
    assert_eq!(report.flagged, vec![0]);
    milr.recover_layers(&mut live, &report.flagged).unwrap();
    let healed: Vec<f32> = store
        .layers()
        .iter()
        .flat_map(|e| live.layers()[e.layer].params().unwrap().data().to_vec())
        .collect();
    shared.write_weights(&healed).unwrap();
    let new_bits = weight_bits(&shared);
    assert_ne!(old_bits, new_bits);

    // Drive the flush through the journal, snapshotting at every step.
    let mut snaps: Vec<(String, PathBuf)> = vec![];
    let mut patches: Vec<PagePatch> = Vec::new();
    for (shard, entry) in store.layers().iter().enumerate() {
        patches.push(PagePatch {
            offset: entry.offset,
            bytes: shared.export_shard_raw(shard),
        });
    }
    {
        let journal = store.journal().clone();
        let mut step_no = 0;
        journal
            .commit_with_observer(&patches, &mut |step| {
                snaps.push((
                    format!("step{step_no}-{step}"),
                    snapshot(&path, &dir, &format!("step{step_no}-{step}")),
                ));
                step_no += 1;
            })
            .unwrap();
    }
    assert_eq!(snaps.len(), 4, "journal protocol has 4 observable steps");

    // A kill mid-journal-write leaves a partial journal: synthesize
    // those from the fully-written journal snapshot.
    let journal_snap = {
        let mut os = snaps[1].1.as_os_str().to_os_string();
        os.push(".journal");
        PathBuf::from(os)
    };
    let journal_bytes = std::fs::read(&journal_snap).unwrap();
    for frac in [1usize, journal_bytes.len() / 3, journal_bytes.len() - 1] {
        let tag = format!("partial-journal-{frac}");
        let snap = snapshot(&snaps[0].1, &dir, &tag); // store file pre-apply
        let mut os = snap.as_os_str().to_os_string();
        os.push(".journal");
        std::fs::write(PathBuf::from(os), &journal_bytes[..frac]).unwrap();
        snaps.push((tag.clone(), snap));
    }

    for (tag, snap) in &snaps {
        assert_reloads_old_or_new(snap, &old_bits, &new_bits, tag);
    }
    // The completed-journal kill points must specifically land on NEW.
    for idx in [1usize, 2] {
        let store = Store::open(&snaps[idx].1).unwrap();
        let shared = open_shared(&store);
        assert_eq!(
            weight_bits(&shared),
            new_bits,
            "{}: a committed journal must replay to the new state",
            snaps[idx].0
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_reanchor_kill_point_reloads_to_a_certified_pair() {
    let golden = model();
    let dir = temp_dir("reanchor");
    let path = dir.join("store.milr");
    Store::create(
        &path,
        &golden,
        MilrConfig::default(),
        StoreOptions {
            kind: SubstrateKind::Plain,
            page_weights: 16,
        },
    )
    .unwrap();
    let mut store = Store::open(&path).unwrap();
    let shared = open_shared(&store);
    let old_bits = weight_bits(&shared);

    // New state: mutated weights + re-protected artifacts, committed
    // together. (A min-norm heal would look exactly like this: weights
    // that differ from the old artifacts' golden flow.)
    let mut live = materialize(&store, &shared);
    live.layers_mut()[0].params_mut().unwrap().data_mut()[5] += 0.75;
    let healed: Vec<f32> = store
        .layers()
        .iter()
        .flat_map(|e| live.layers()[e.layer].params().unwrap().data().to_vec())
        .collect();
    shared.write_weights(&healed).unwrap();
    let new_bits = weight_bits(&shared);
    let milr2 = Milr::protect(&live, MilrConfig::default()).unwrap();

    let mut snaps: Vec<(String, PathBuf)> = vec![];
    store
        .commit_reanchor_with_observer(&milr2, &live, &shared, &mut |step| {
            snaps.push((step.to_string(), snapshot(&path, &dir, step)));
        })
        .unwrap();
    assert_eq!(snaps.len(), 3, "re-anchor protocol has 3 observable steps");

    // A kill mid-shadow-write leaves a partial shadow: synthesize it.
    let shadow_snap = {
        let mut os = snaps[1].1.as_os_str().to_os_string();
        os.push(".shadow");
        PathBuf::from(os)
    };
    let shadow_bytes = std::fs::read(&shadow_snap).unwrap();
    {
        let snap = snapshot(&snaps[0].1, &dir, "partial-shadow");
        let mut os = snap.as_os_str().to_os_string();
        os.push(".shadow");
        std::fs::write(PathBuf::from(os), &shadow_bytes[..shadow_bytes.len() / 2]).unwrap();
        snaps.push(("partial-shadow".into(), snap));
    }

    for (tag, snap) in &snaps {
        // Old-or-new *pair*: the weights and the artifacts swap
        // together — every snapshot detects clean against its own
        // artifacts without any healing.
        let store = Store::open(snap).unwrap_or_else(|e| panic!("{tag}: failed to reload: {e}"));
        let shared = open_shared(&store);
        let bits = weight_bits(&shared);
        assert!(
            bits == old_bits || bits == new_bits,
            "{tag}: torn weight state"
        );
        let live = materialize(&store, &shared);
        assert!(
            store.milr().detect(&live).unwrap().is_clean(),
            "{tag}: artifacts and weights are from different commits (torn pair)"
        );
    }
    // Before the rename the old pair must be served, after it the new.
    let pre = Store::open(&snaps[1].1).unwrap();
    assert_eq!(weight_bits(&open_shared(&pre)), old_bits, "shadow-written");
    let post = Store::open(&snaps[2].1).unwrap();
    assert_eq!(weight_bits(&open_shared(&post)), new_bits, "renamed");
    let _ = std::fs::remove_dir_all(&dir);
}
