//! Property tests: the container round-trips model + artifacts through
//! the format, and **degrades loudly** — under random truncation and
//! random byte corruption a load either heals (weight-region damage is
//! the paper's fault model) or errors (error-resistant sections are
//! checksummed). It never silently serves corrupt state.

use milr_core::MilrConfig;
use milr_nn::{Layer, Sequential};
use milr_store::{Store, StoreError, StoreOptions};
use milr_substrate::{SharedSubstrate, SubstrateKind};
use milr_tensor::{ConvSpec, Padding, TensorRng};
use proptest::prelude::*;
use std::path::PathBuf;

fn model(seed: u64) -> Sequential {
    let mut rng = TensorRng::new(seed);
    let mut m = Sequential::new(vec![8, 8, 1]);
    let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
    m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::bias_zero(4)).unwrap();
    m.push(Layer::Flatten).unwrap();
    m.push(Layer::dense_random(6 * 6 * 4, 5, &mut rng).unwrap())
        .unwrap();
    m
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("milr-robust-{}-{name}.milr", std::process::id()))
}

fn open_shared(store: &Store) -> SharedSubstrate {
    SharedSubstrate::from_parts(
        store
            .open_substrates(4)
            .into_iter()
            .map(|(_, s)| s)
            .collect(),
    )
}

fn materialize(store: &Store, shared: &SharedSubstrate) -> Sequential {
    let mut m = store.template().clone();
    for (shard, entry) in store.layers().iter().enumerate() {
        let data = shared.read_shard(shard);
        let dims = m.layers()[entry.layer]
            .params()
            .unwrap()
            .shape()
            .dims()
            .to_vec();
        *m.layers_mut()[entry.layer].params_mut().unwrap() =
            milr_tensor::Tensor::from_vec(data, &dims).unwrap();
    }
    m
}

/// The "heal or error" verdict for one damaged container.
fn load_and_heal(path: &std::path::Path, golden: &Sequential) -> Result<(), String> {
    let store = match Store::open(path) {
        Ok(s) => s,
        // A refused load is a loud failure: acceptable.
        Err(StoreError::Corrupt(_)) => return Ok(()),
        Err(e) => return Err(format!("unexpected error class: {e}")),
    };
    let shared = open_shared(&store);
    shared.scrub();
    let mut live = materialize(&store, &shared);
    let milr = store.milr().clone();
    for _ in 0..4 {
        let report = match milr.detect(&live) {
            Ok(r) => r,
            Err(e) => return Err(format!("detection crashed on loaded state: {e}")),
        };
        if report.is_clean() {
            break;
        }
        if milr.recover_layers(&mut live, &report.flagged).is_err() {
            return Err("recovery crashed on loaded state".into());
        }
    }
    // Healed (or never damaged): parameters must approximate the
    // golden model. Ulp-level leftovers below the detection tolerance
    // are the paper's documented blind spot, not silent corruption.
    for (i, (a, b)) in golden.layers().iter().zip(live.layers().iter()).enumerate() {
        if let (Some(p), Some(q)) = (a.params(), b.params()) {
            if !p.approx_eq(q, 1e-2, 1e-3) {
                return Err(format!("layer {i} silently corrupt after load+heal"));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random truncation: load must heal or error — never crash, never
    /// serve garbage.
    #[test]
    fn truncation_heals_or_errors(seed in 1u64..500, cut_frac in 0.0f64..1.0) {
        let golden = model(seed);
        let kind = SubstrateKind::ALL[(seed % 4) as usize];
        let path = temp(&format!("trunc-{seed}"));
        Store::create(&path, &golden, MilrConfig::default(), StoreOptions { kind, page_weights: 16 }).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let verdict = load_and_heal(&path, &golden);
        // A strict truncation must in fact refuse to load (the weight
        // region is length-checked even though it is not checksummed).
        let refused = Store::open(&path).is_err();
        let _ = std::fs::remove_file(&path);
        prop_assert!(verdict.is_ok(), "{:?}", verdict);
        prop_assert!(refused, "a truncated container loaded");
    }

    /// Random byte corruption anywhere in the container: checksummed
    /// sections refuse the load, weight-region damage is healed.
    #[test]
    fn byte_flips_heal_or_error(
        seed in 1u64..500,
        offset_frac in 0.0f64..1.0,
        mask in 1u32..256,
    ) {
        let golden = model(seed);
        let kind = SubstrateKind::ALL[(seed % 4) as usize];
        let path = temp(&format!("flip-{seed}"));
        Store::create(&path, &golden, MilrConfig::default(), StoreOptions { kind, page_weights: 16 }).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        bytes[offset] ^= mask as u8;
        std::fs::write(&path, &bytes).unwrap();
        let verdict = load_and_heal(&path, &golden);
        let _ = std::fs::remove_file(&path);
        prop_assert!(verdict.is_ok(), "offset {} of {}: {:?}", offset, bytes.len(), verdict);
    }
}

#[test]
fn weight_region_damage_specifically_heals() {
    // Deterministic companion to the properties above: corrupt a byte
    // squarely inside layer 0's page run and require a *successful*
    // heal (not an error) for every substrate kind.
    for kind in SubstrateKind::ALL {
        let golden = model(9);
        let path = temp(&format!("region-{kind:?}"));
        Store::create(
            &path,
            &golden,
            MilrConfig::default(),
            StoreOptions {
                kind,
                page_weights: 16,
            },
        )
        .unwrap();
        let offset = {
            let store = Store::open(&path).unwrap();
            store.layers()[0].offset
        };
        let mut bytes = std::fs::read(&path).unwrap();
        // A high byte of the first stored word: large, detectable
        // damage.
        bytes[offset as usize + 3] ^= 0xC0;
        std::fs::write(&path, &bytes).unwrap();
        let store = Store::open(&path).unwrap_or_else(|e| {
            panic!("{kind}: weight-region damage must not refuse the load: {e}")
        });
        let shared = open_shared(&store);
        shared.scrub();
        let mut live = materialize(&store, &shared);
        let milr = store.milr().clone();
        let report = milr.detect(&live).unwrap();
        if !report.is_clean() {
            milr.recover_layers(&mut live, &report.flagged).unwrap();
            assert!(milr.detect(&live).unwrap().is_clean(), "{kind}");
        }
        for (a, b) in golden.layers().iter().zip(live.layers().iter()) {
            if let (Some(p), Some(q)) = (a.params(), b.params()) {
                assert!(p.approx_eq(q, 1e-3, 1e-4), "{kind}: heal missed");
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
