//! The `.milr` container format: a versioned, checksummed on-disk
//! layout holding everything a cold start needs.
//!
//! ```text
//! offset 0 : magic  "MILRSTO\x01"                       (8 bytes)
//!        8 : container version (u32)
//!       12 : META      section   u64 len | u32 crc32 | bytes
//!        … : ARTIFACTS section   u64 len | u32 crc32 | bytes
//!        … : REPORT    section   u64 len | u32 crc32 | bytes
//!        … : WEIGHT region — per-layer runs of substrate-encoded pages
//! ```
//!
//! The three leading sections model the paper's **error-resistant
//! storage** (§III): they are CRC-32 checksummed and a mismatch fails
//! the load. The weight region is deliberately *not* checksummed — its
//! bytes are the substrates' raw images, i.e. the fault surface the
//! paper's Eq. 1–6 error model covers, and corruption there is healed
//! by scrub-on-load + MILR rather than rejected.
//!
//! * **META** — substrate kind, page geometry, the model's architecture
//!   skeleton (shapes and specs only; parameters live in the weight
//!   region), and the layer table mapping each parameterized layer to
//!   its page run.
//! * **ARTIFACTS** — the serialized [`milr_core::Milr`] instance
//!   ([`Milr::to_bytes`](milr_core::Milr::to_bytes)).
//! * **REPORT** — the [`StorageReport`], so storage accounting survives
//!   alongside the artifacts it describes.

use crate::bytes::{Reader, Writer};
use crate::StoreError;
use milr_core::StorageReport;
use milr_ecc::crc32;
use milr_nn::{Activation, Layer, Sequential};
use milr_substrate::SubstrateKind;
use milr_tensor::{ConvSpec, Padding, PoolSpec, Tensor};

/// Leading magic of every `.milr` container.
pub const MAGIC: [u8; 8] = *b"MILRSTO\x01";
/// Container format version.
pub const CONTAINER_VERSION: u32 = 1;
/// Bytes of each section header (u64 length + u32 crc).
pub(crate) const SECTION_HEADER: usize = 12;

/// One parameterized layer's run of pages in the weight region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerEntry {
    /// Layer index in the model.
    pub layer: usize,
    /// Weights stored.
    pub weights: usize,
    /// Absolute file offset of the layer's first page.
    pub offset: u64,
    /// Total raw bytes of the layer's pages.
    pub bytes: u64,
}

/// The decoded META section.
#[derive(Debug, Clone)]
pub struct StoreMeta {
    /// Base substrate kind encoding the weight pages.
    pub kind: SubstrateKind,
    /// Weights per page.
    pub page_weights: usize,
    /// Architecture skeleton with zeroed parameters.
    pub template: Sequential,
    /// Page-run table, ascending by layer.
    pub layers: Vec<LayerEntry>,
}

impl StoreMeta {
    /// End of the weight region (= expected minimum file length).
    pub fn weights_end(&self) -> u64 {
        self.layers.last().map(|l| l.offset + l.bytes).unwrap_or(0)
    }
}

// ------------------------------------------------------------ sections

/// Appends one checksummed section to `out`.
pub(crate) fn write_section(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads one checksummed section.
pub(crate) fn read_section<'a>(r: &mut Reader<'a>, what: &str) -> Result<&'a [u8], StoreError> {
    let len = r.len(1, what)?;
    let stored = r.u32(what)?;
    let payload = r.take(len, what)?;
    if crc32(payload) != stored {
        return Err(StoreError::Corrupt(format!(
            "{what} section checksum mismatch — error-resistant storage is corrupt"
        )));
    }
    Ok(payload)
}

// ------------------------------------------------------------- model

const TAG_CONV: u8 = 0;
const TAG_DENSE: u8 = 1;
const TAG_BIAS: u8 = 2;
const TAG_ACTIVATION: u8 = 3;
const TAG_MAXPOOL: u8 = 4;
const TAG_AVGPOOL: u8 = 5;
const TAG_FLATTEN: u8 = 6;
const TAG_DROPOUT: u8 = 7;
const TAG_ZEROPAD: u8 = 8;

fn activation_tag(a: Activation) -> u8 {
    match a {
        Activation::Relu => 0,
        Activation::Softmax => 1,
        Activation::Sigmoid => 2,
        Activation::Tanh => 3,
        Activation::Identity => 4,
    }
}

fn activation_from(tag: u8) -> Result<Activation, StoreError> {
    Ok(match tag {
        0 => Activation::Relu,
        1 => Activation::Softmax,
        2 => Activation::Sigmoid,
        3 => Activation::Tanh,
        4 => Activation::Identity,
        t => return Err(StoreError::Corrupt(format!("unknown activation tag {t}"))),
    })
}

/// Encodes the architecture skeleton: shapes and specs only. Parameter
/// values are *not* written — they live in the weight region.
fn write_model(w: &mut Writer, model: &Sequential) {
    w.usize(model.input_shape().len());
    for &d in model.input_shape() {
        w.usize(d);
    }
    w.usize(model.len());
    for layer in model.layers() {
        match layer {
            Layer::Conv2D { filters, spec } => {
                w.u8(TAG_CONV);
                for i in 0..4 {
                    w.usize(filters.shape().dim(i));
                }
                w.usize(spec.filter);
                w.usize(spec.stride);
                w.u8(match spec.padding {
                    Padding::Valid => 0,
                    Padding::Same => 1,
                });
            }
            Layer::Dense { weights } => {
                w.u8(TAG_DENSE);
                w.usize(weights.shape().dim(0));
                w.usize(weights.shape().dim(1));
            }
            Layer::Bias { bias } => {
                w.u8(TAG_BIAS);
                w.usize(bias.numel());
            }
            Layer::Activation(a) => {
                w.u8(TAG_ACTIVATION);
                w.u8(activation_tag(*a));
            }
            Layer::MaxPool2D(spec) => {
                w.u8(TAG_MAXPOOL);
                w.usize(spec.window);
                w.usize(spec.stride);
            }
            Layer::AvgPool2D(spec) => {
                w.u8(TAG_AVGPOOL);
                w.usize(spec.window);
                w.usize(spec.stride);
            }
            Layer::Flatten => w.u8(TAG_FLATTEN),
            Layer::Dropout { rate } => {
                w.u8(TAG_DROPOUT);
                w.f32(*rate);
            }
            Layer::ZeroPad2D { pad } => {
                w.u8(TAG_ZEROPAD);
                w.usize(*pad);
            }
        }
    }
}

fn bad_geometry(e: impl std::fmt::Display) -> StoreError {
    StoreError::Corrupt(format!("stored model has impossible geometry: {e}"))
}

/// Decodes the skeleton back into a zero-parameter [`Sequential`],
/// re-validating every layer against the running shape.
fn read_model(r: &mut Reader) -> Result<Sequential, StoreError> {
    let ndim = r.len(8, "model.input_shape")?;
    let input: Vec<usize> = (0..ndim)
        .map(|_| r.usize("model.input_shape"))
        .collect::<Result<_, _>>()?;
    let mut model = Sequential::new(input);
    let layers = r.len(1, "model.layers")?;
    for _ in 0..layers {
        let layer = match r.u8("model.layer_tag")? {
            TAG_CONV => {
                let dims: Vec<usize> = (0..4)
                    .map(|_| r.usize("conv.dims"))
                    .collect::<Result<_, _>>()?;
                let filter = r.usize("conv.filter")?;
                let stride = r.usize("conv.stride")?;
                let padding = match r.u8("conv.padding")? {
                    0 => Padding::Valid,
                    1 => Padding::Same,
                    t => return Err(StoreError::Corrupt(format!("unknown padding tag {t}"))),
                };
                if dims.iter().product::<usize>() > 1 << 28 {
                    return Err(bad_geometry("conv filter bank too large"));
                }
                Layer::Conv2D {
                    filters: Tensor::zeros(&dims),
                    spec: ConvSpec::new(filter, stride, padding).map_err(bad_geometry)?,
                }
            }
            TAG_DENSE => {
                let n = r.usize("dense.n")?;
                let p = r.usize("dense.p")?;
                if n.checked_mul(p).is_none_or(|c| c > 1 << 28) {
                    return Err(bad_geometry("dense weight matrix too large"));
                }
                Layer::Dense {
                    weights: Tensor::zeros(&[n, p]),
                }
            }
            TAG_BIAS => {
                let c = r.usize("bias.channels")?;
                if c > 1 << 24 {
                    return Err(bad_geometry("bias vector too large"));
                }
                Layer::bias_zero(c)
            }
            TAG_ACTIVATION => Layer::Activation(activation_from(r.u8("activation")?)?),
            TAG_MAXPOOL => {
                let window = r.usize("pool.window")?;
                let stride = r.usize("pool.stride")?;
                Layer::MaxPool2D(PoolSpec::new(window, stride).map_err(bad_geometry)?)
            }
            TAG_AVGPOOL => {
                let window = r.usize("pool.window")?;
                let stride = r.usize("pool.stride")?;
                Layer::AvgPool2D(PoolSpec::new(window, stride).map_err(bad_geometry)?)
            }
            TAG_FLATTEN => Layer::Flatten,
            TAG_DROPOUT => Layer::Dropout {
                rate: r.f32("dropout.rate")?,
            },
            TAG_ZEROPAD => Layer::ZeroPad2D {
                pad: r.usize("zeropad.pad")?,
            },
            t => return Err(StoreError::Corrupt(format!("unknown layer tag {t}"))),
        };
        model
            .push(layer)
            .map_err(|e| StoreError::Corrupt(format!("stored layer stack is inconsistent: {e}")))?;
    }
    Ok(model)
}

// -------------------------------------------------------------- meta

fn kind_tag(kind: SubstrateKind) -> u8 {
    match kind {
        SubstrateKind::Plain => 0,
        SubstrateKind::Secded => 1,
        SubstrateKind::Xts => 2,
        SubstrateKind::XtsSecded => 3,
        SubstrateKind::Int8 => 4,
        SubstrateKind::Fp16 => 5,
        SubstrateKind::Int8Secded => 6,
        SubstrateKind::Fp16Secded => 7,
        file => kind_tag(file.base()),
    }
}

fn kind_from(tag: u8) -> Result<SubstrateKind, StoreError> {
    Ok(match tag {
        0 => SubstrateKind::Plain,
        1 => SubstrateKind::Secded,
        2 => SubstrateKind::Xts,
        3 => SubstrateKind::XtsSecded,
        4 => SubstrateKind::Int8,
        5 => SubstrateKind::Fp16,
        6 => SubstrateKind::Int8Secded,
        7 => SubstrateKind::Fp16Secded,
        t => return Err(StoreError::Corrupt(format!("unknown substrate tag {t}"))),
    })
}

/// Encodes the META section.
pub(crate) fn write_meta(meta: &StoreMeta) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(1); // meta version
    w.u8(kind_tag(meta.kind));
    w.usize(meta.page_weights);
    write_model(&mut w, &meta.template);
    w.usize(meta.layers.len());
    for e in &meta.layers {
        w.usize(e.layer);
        w.usize(e.weights);
        w.u64(e.offset);
        w.u64(e.bytes);
    }
    w.buf
}

/// Decodes and cross-validates the META section.
pub(crate) fn read_meta(payload: &[u8]) -> Result<StoreMeta, StoreError> {
    let mut r = Reader::new(payload);
    let version = r.u32("meta.version")?;
    if version != 1 {
        return Err(StoreError::Corrupt(format!(
            "unsupported meta version {version}"
        )));
    }
    let kind = kind_from(r.u8("meta.kind")?)?;
    let page_weights = r.usize("meta.page_weights")?;
    if page_weights == 0 {
        return Err(StoreError::Corrupt("zero page size".into()));
    }
    let template = read_model(&mut r)?;
    let n = r.len(32, "meta.layer_table")?;
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        layers.push(LayerEntry {
            layer: r.usize("meta.layer")?,
            weights: r.usize("meta.weights")?,
            offset: r.u64("meta.offset")?,
            bytes: r.u64("meta.bytes")?,
        });
    }
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt("trailing bytes in META".into()));
    }
    // The table must exactly mirror the template's parameterized
    // layers.
    let expect: Vec<(usize, usize)> = template
        .layers()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.param_count() > 0)
        .map(|(i, l)| (i, l.param_count()))
        .collect();
    let got: Vec<(usize, usize)> = layers.iter().map(|e| (e.layer, e.weights)).collect();
    if expect != got {
        return Err(StoreError::Corrupt(
            "layer table does not match the stored architecture".into(),
        ));
    }
    for e in &layers {
        let expect_bytes =
            milr_substrate::FileSubstrate::region_bytes(kind, e.weights, page_weights) as u64;
        if e.bytes != expect_bytes {
            return Err(StoreError::Corrupt(format!(
                "layer {} region is {} bytes, geometry needs {expect_bytes}",
                e.layer, e.bytes
            )));
        }
    }
    Ok(StoreMeta {
        kind,
        page_weights,
        template,
        layers,
    })
}

// ------------------------------------------------------------ report

/// Encodes the REPORT section.
pub(crate) fn write_report(report: &StorageReport) -> Vec<u8> {
    let mut w = Writer::new();
    for v in [
        report.backup_bytes,
        report.ecc_bytes,
        report.full_checkpoint_bytes,
        report.partial_checkpoint_bytes,
        report.dummy_output_bytes,
        report.crc_bytes,
        report.bias_sum_bytes,
        report.seed_bytes,
    ] {
        w.usize(v);
    }
    w.buf
}

/// Decodes the REPORT section.
pub(crate) fn read_report(payload: &[u8]) -> Result<StorageReport, StoreError> {
    let mut r = Reader::new(payload);
    let report = StorageReport {
        backup_bytes: r.usize("report.backup")?,
        ecc_bytes: r.usize("report.ecc")?,
        full_checkpoint_bytes: r.usize("report.full_ckpt")?,
        partial_checkpoint_bytes: r.usize("report.partial_ckpt")?,
        dummy_output_bytes: r.usize("report.dummy")?,
        crc_bytes: r.usize("report.crc")?,
        bias_sum_bytes: r.usize("report.bias")?,
        seed_bytes: r.usize("report.seeds")?,
    };
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt("trailing bytes in REPORT".into()));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_tensor::TensorRng;

    fn model() -> Sequential {
        let mut rng = TensorRng::new(2);
        let mut m = Sequential::new(vec![8, 8, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Same).unwrap();
        m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        m.push(Layer::Activation(Activation::Relu)).unwrap();
        m.push(Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()))
            .unwrap();
        m.push(Layer::Dropout { rate: 0.25 }).unwrap();
        m.push(Layer::ZeroPad2D { pad: 1 }).unwrap();
        m.push(Layer::AvgPool2D(PoolSpec::new(2, 2).unwrap()))
            .unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(3 * 3 * 4, 5, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::Activation(Activation::Softmax)).unwrap();
        m
    }

    #[test]
    fn model_skeleton_roundtrips_every_layer_kind() {
        let m = model();
        let mut w = Writer::new();
        write_model(&mut w, &m);
        let restored = read_model(&mut Reader::new(&w.buf)).unwrap();
        assert_eq!(restored.len(), m.len());
        assert_eq!(restored.input_shape(), m.input_shape());
        assert_eq!(restored.output_shape(), m.output_shape());
        for (a, b) in m.layers().iter().zip(restored.layers().iter()) {
            assert_eq!(a.kind_name(), b.kind_name());
            assert_eq!(a.param_count(), b.param_count());
            // Parameters are zeroed, not copied.
            if let Some(p) = b.params() {
                assert!(p.data().iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn section_checksum_rejects_corruption() {
        let payload = b"hello sections".to_vec();
        let mut out = Vec::new();
        write_section(&mut out, &payload);
        assert_eq!(
            read_section(&mut Reader::new(&out), "test").unwrap(),
            &payload[..]
        );
        let mut bad = out.clone();
        *bad.last_mut().unwrap() ^= 0x10;
        assert!(read_section(&mut Reader::new(&bad), "test").is_err());
        // Truncation is an error too.
        assert!(read_section(&mut Reader::new(&out[..out.len() - 1]), "t").is_err());
    }

    #[test]
    fn report_roundtrips() {
        let report = StorageReport {
            backup_bytes: 1,
            ecc_bytes: 2,
            full_checkpoint_bytes: 3,
            partial_checkpoint_bytes: 4,
            dummy_output_bytes: 5,
            crc_bytes: 6,
            bias_sum_bytes: 7,
            seed_bytes: 8,
        };
        assert_eq!(read_report(&write_report(&report)).unwrap(), report);
        assert!(read_report(&write_report(&report)[..63]).is_err());
    }

    #[test]
    fn meta_rejects_mismatched_layer_table() {
        let m = model();
        let layers: Vec<LayerEntry> = m
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.param_count() > 0)
            .map(|(i, l)| LayerEntry {
                layer: i,
                weights: l.param_count(),
                offset: 0,
                bytes: milr_substrate::FileSubstrate::region_bytes(
                    SubstrateKind::Plain,
                    l.param_count(),
                    64,
                ) as u64,
            })
            .collect();
        let meta = StoreMeta {
            kind: SubstrateKind::Plain,
            page_weights: 64,
            template: m,
            layers,
        };
        let good = write_meta(&meta);
        assert!(read_meta(&good).is_ok());
        // Drop one table entry: mismatch.
        let mut broken = meta.clone();
        broken.layers.pop();
        assert!(read_meta(&write_meta(&broken)).is_err());
        // Wrong region size: mismatch.
        let mut broken = meta.clone();
        broken.layers[0].bytes += 1;
        assert!(read_meta(&write_meta(&broken)).is_err());
    }
}
