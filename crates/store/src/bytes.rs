//! Tiny little-endian byte codec shared by the container sections:
//! fixed-width scalars and length-prefixed sequences, with a fully
//! bounds-checked reader (corrupt input errors, never panics).

use crate::StoreError;

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> StoreError {
    StoreError::Corrupt(format!("container truncated reading {what}"))
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(corrupt(what));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn usize(&mut self, what: &str) -> Result<usize, StoreError> {
        Ok(self.u64(what)? as usize)
    }

    /// A length prefix, sanity-bounded by the bytes remaining so a
    /// corrupt prefix cannot drive a huge allocation.
    pub fn len(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize, StoreError> {
        let n = self.u64(what)?;
        if n > (self.remaining() / min_elem_bytes.max(1)) as u64 {
            return Err(StoreError::Corrupt(format!(
                "implausible length {n} reading {what}"
            )));
        }
        Ok(n as usize)
    }

    pub fn f32(&mut self, what: &str) -> Result<f32, StoreError> {
        Ok(f32::from_bits(self.u32(what)?))
    }
}
