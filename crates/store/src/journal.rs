//! Crash-consistent commits for the `.milr` container.
//!
//! Two commit shapes, each atomic under kill-anywhere:
//!
//! * **Page commit** (weight mutations: healed layers, scrub
//!   corrections) — a redo **journal**: the new page images are written
//!   to `<store>.journal` *first* (single file write ending in a CRC +
//!   commit marker, then fsync), only then applied in place to the
//!   container and the journal removed. Recovery on open replays a
//!   complete journal (idempotent) and discards an incomplete one, so
//!   every kill point resolves to all-of-the-batch or none-of-it —
//!   never a torn page.
//! * **Full commit** (protection re-anchoring: new artifacts + current
//!   weights) — a **shadow file**: the entire new container is written
//!   to `<store>.shadow`, fsynced, and atomically renamed over the
//!   store; the rename is the commit point. Recovery removes orphaned
//!   shadows.
//!
//! Both protocols expose an *observer* hook that fires between
//! protocol steps; the crash-consistency suite uses it to snapshot the
//! directory at every kill point and prove each snapshot reloads.

use crate::StoreError;
use milr_ecc::crc32;
use milr_obs::{SpanHandle, SpanTree};
use milr_substrate::{PageCommitter, PageFile, PagePatch, StdFile};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Leading magic of a journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"MILRJRNL";
/// Trailing commit marker; absent ⇒ the journal never committed.
pub const COMMIT_MARKER: u64 = 0x4D49_4C52_434F_4D54; // "MILRCOMT"

/// Path of the journal beside a store file.
pub fn journal_path(store: &Path) -> PathBuf {
    let mut os = store.as_os_str().to_os_string();
    os.push(".journal");
    PathBuf::from(os)
}

/// Path of the shadow file beside a store file.
pub fn shadow_path(store: &Path) -> PathBuf {
    let mut os = store.as_os_str().to_os_string();
    os.push(".shadow");
    PathBuf::from(os)
}

/// Fsyncs the directory containing `path`, making a rename or unlink
/// in it durable (best-effort on platforms without directory handles).
pub(crate) fn sync_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        }) {
            let _ = dir.sync_all();
        }
    }
}

/// Serializes a batch of patches into journal bytes.
fn encode_journal(patches: &[PagePatch]) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&(patches.len() as u64).to_le_bytes());
    for p in patches {
        body.extend_from_slice(&p.offset.to_le_bytes());
        body.extend_from_slice(&(p.bytes.len() as u64).to_le_bytes());
        body.extend_from_slice(&p.bytes);
    }
    let mut out = Vec::with_capacity(body.len() + 24);
    out.extend_from_slice(&JOURNAL_MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&COMMIT_MARKER.to_le_bytes());
    out
}

/// Parses journal bytes. `Ok(Some(patches))` for a complete committed
/// journal, `Ok(None)` for a recognizably incomplete one (no marker /
/// bad checksum / truncated), `Err` only for I/O-free logic bugs —
/// i.e. never.
fn decode_journal(bytes: &[u8]) -> Option<Vec<PagePatch>> {
    if bytes.len() < 8 + 8 + 4 + 8 || bytes[..8] != JOURNAL_MAGIC {
        return None;
    }
    let marker = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if marker != COMMIT_MARKER {
        return None;
    }
    let body = &bytes[8..bytes.len() - 12];
    let stored = u32::from_le_bytes(
        bytes[bytes.len() - 12..bytes.len() - 8]
            .try_into()
            .expect("4 bytes"),
    );
    if crc32(body) != stored {
        return None;
    }
    let mut pos = 0usize;
    let u64_at = |p: &mut usize| -> Option<u64> {
        let v = body.get(*p..*p + 8)?;
        *p += 8;
        Some(u64::from_le_bytes(v.try_into().expect("8 bytes")))
    };
    let count = u64_at(&mut pos)? as usize;
    let mut patches = Vec::new();
    for _ in 0..count {
        let offset = u64_at(&mut pos)?;
        let len = u64_at(&mut pos)? as usize;
        let bytes = body.get(pos..pos + len)?;
        pos += len;
        patches.push(PagePatch {
            offset,
            bytes: bytes.to_vec(),
        });
    }
    if pos != body.len() {
        return None;
    }
    Some(patches)
}

/// The page-commit engine: owns the journal path and serializes
/// concurrent committers (several file substrates share one store).
pub struct Journal {
    io: Arc<StdFile>,
    path: PathBuf,
    lock: Mutex<()>,
    /// Span ring + wall anchor, when a live driver attached one (see
    /// [`Journal::set_spans`]). Sim drivers never construct a file
    /// journal, so journal spans are inherently wall-clocked.
    spans: Mutex<Option<(SpanHandle, Instant)>>,
}

impl Journal {
    /// A journal writing `<store>.journal` and applying to `io`.
    pub fn new(store_path: &Path, io: Arc<StdFile>) -> Self {
        Journal {
            io,
            path: journal_path(store_path),
            lock: Mutex::new(()),
            spans: Mutex::new(None),
        }
    }

    /// Attaches a span ring: every committed page batch pushes one
    /// `journal_commit` span tree — `write → fsync → apply → retire`
    /// children stamped with wall nanoseconds since `started`. Purely
    /// observational: the commit protocol, its kill-point observer
    /// steps, and all error behaviour are unchanged.
    pub fn set_spans(&self, spans: SpanHandle, started: Instant) {
        *self.spans.lock().expect("journal spans lock poisoned") = Some((spans, started));
    }

    /// Commits a batch of page writes atomically (see module docs).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; after an error the batch is either fully
    /// applied, or will be re-applied / discarded by recovery.
    pub fn commit(&self, patches: &[PagePatch]) -> std::io::Result<()> {
        self.commit_with_observer(patches, &mut |_| {})
    }

    /// [`Journal::commit`] with a kill-point observer: `observe` fires
    /// after each durable protocol step (`"journal-written"`,
    /// `"patches-applied"`, `"journal-removed"`) so a test harness can
    /// snapshot the store directory between steps.
    ///
    /// # Errors
    ///
    /// See [`Journal::commit`].
    pub fn commit_with_observer(
        &self,
        patches: &[PagePatch],
        observe: &mut dyn FnMut(&str),
    ) -> std::io::Result<()> {
        if patches.is_empty() {
            return Ok(());
        }
        let _guard = self.lock.lock().expect("journal lock poisoned");
        // Span attribution rides alongside the protocol (only pushed
        // on a fully committed batch; an errored commit drops the
        // partial tree with the `?`).
        let tap = self
            .spans
            .lock()
            .expect("journal spans lock poisoned")
            .clone();
        let ns = |t0: &Instant| t0.elapsed().as_nanos() as u64;
        let mut tree = SpanTree::new();
        if let Some((_, t0)) = &tap {
            tree.open(ns(t0), "journal_commit", patches.len() as u64);
            tree.open(ns(t0), "write", 0);
        }
        observe("begin");
        // 1. Make the intent durable: journal first.
        let bytes = encode_journal(patches);
        let mut file = File::create(&self.path)?;
        file.write_all(&bytes)?;
        if let Some((_, t0)) = &tap {
            tree.close(ns(t0));
            tree.open(ns(t0), "fsync", 0);
        }
        file.sync_all()?;
        drop(file);
        sync_dir(&self.path);
        observe("journal-written");
        if let Some((_, t0)) = &tap {
            tree.close(ns(t0));
            tree.open(ns(t0), "apply", patches.len() as u64);
        }
        // 2. Apply in place.
        for p in patches {
            self.io.write_all_at(p.offset, &p.bytes)?;
        }
        self.io.sync()?;
        observe("patches-applied");
        if let Some((_, t0)) = &tap {
            tree.close(ns(t0));
            tree.open(ns(t0), "retire", 0);
        }
        // 3. Retire the journal.
        std::fs::remove_file(&self.path)?;
        sync_dir(&self.path);
        observe("journal-removed");
        if let Some((handle, t0)) = &tap {
            handle.push_all(tree.finish(ns(t0)));
        }
        Ok(())
    }
}

impl PageCommitter for Journal {
    fn commit(&self, patches: &[PagePatch]) -> std::io::Result<()> {
        Journal::commit(self, patches)
    }
}

/// Crash recovery, run before a store file is parsed:
///
/// 1. A complete journal is replayed into the store file (idempotent)
///    and removed; an incomplete journal is discarded.
/// 2. An orphaned shadow file is removed (the rename that would have
///    committed it never happened).
///
/// Returns `true` when a journal was replayed.
///
/// # Errors
///
/// Propagates I/O errors (not container corruption — parsing happens
/// later).
pub fn recover(store_path: &Path) -> Result<bool, StoreError> {
    let jpath = journal_path(store_path);
    let mut replayed = false;
    if jpath.exists() {
        let bytes = std::fs::read(&jpath)?;
        match decode_journal(&bytes) {
            Some(patches) => {
                let io = StdFile::open(store_path)?;
                for p in &patches {
                    io.write_all_at(p.offset, &p.bytes)?;
                }
                io.sync()?;
                replayed = true;
            }
            None => {
                // Never committed: the old state is the valid one.
            }
        }
        std::fs::remove_file(&jpath)?;
        sync_dir(&jpath);
    }
    let spath = shadow_path(store_path);
    if spath.exists() {
        std::fs::remove_file(&spath)?;
        sync_dir(&spath);
    }
    Ok(replayed)
}

/// Atomically replaces the container with `bytes` via a shadow file +
/// rename, firing `observe` after each durable step
/// (`"shadow-written"`, `"renamed"`).
///
/// # Errors
///
/// Propagates I/O errors; the container is the old or the new bytes,
/// never a mixture.
pub(crate) fn replace_container(
    store_path: &Path,
    bytes: &[u8],
    observe: &mut dyn FnMut(&str),
) -> Result<(), StoreError> {
    observe("begin");
    let spath = shadow_path(store_path);
    let mut shadow = File::create(&spath)?;
    shadow.write_all(bytes)?;
    shadow.sync_all()?;
    drop(shadow);
    sync_dir(&spath);
    observe("shadow-written");
    std::fs::rename(&spath, store_path)?;
    sync_dir(store_path);
    observe("renamed");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("milr-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn journal_roundtrip_and_tamper_rejection() {
        let patches = vec![
            PagePatch {
                offset: 10,
                bytes: vec![1, 2, 3],
            },
            PagePatch {
                offset: 99,
                bytes: vec![9; 40],
            },
        ];
        let bytes = encode_journal(&patches);
        assert_eq!(decode_journal(&bytes).unwrap(), patches);
        // Any truncation invalidates it.
        for cut in 0..bytes.len() {
            assert!(decode_journal(&bytes[..cut]).is_none(), "cut {cut}");
        }
        // A flipped body byte invalidates the checksum.
        let mut bad = bytes.clone();
        bad[10] ^= 1;
        assert!(decode_journal(&bad).is_none());
    }

    #[test]
    fn commit_applies_and_retires() {
        let store = temp("commit.milr");
        std::fs::write(&store, vec![0u8; 64]).unwrap();
        let io = Arc::new(StdFile::open(&store).unwrap());
        let journal = Journal::new(&store, Arc::clone(&io));
        let mut steps = Vec::new();
        journal
            .commit_with_observer(
                &[PagePatch {
                    offset: 8,
                    bytes: vec![0xAB; 4],
                }],
                &mut |s| steps.push(s.to_string()),
            )
            .unwrap();
        assert_eq!(
            steps,
            [
                "begin",
                "journal-written",
                "patches-applied",
                "journal-removed"
            ]
        );
        assert!(!journal_path(&store).exists());
        let data = std::fs::read(&store).unwrap();
        assert_eq!(&data[8..12], &[0xAB; 4]);
        let _ = std::fs::remove_file(&store);
    }

    #[test]
    fn commit_spans_time_every_protocol_step_without_changing_them() {
        use milr_obs::SpanRing;
        let store = temp("spans.milr");
        std::fs::write(&store, vec![0u8; 64]).unwrap();
        let io = Arc::new(StdFile::open(&store).unwrap());
        let journal = Journal::new(&store, Arc::clone(&io));
        let ring = Arc::new(SpanRing::new(8));
        journal.set_spans(SpanHandle::new(Arc::clone(&ring)), Instant::now());
        let mut steps = Vec::new();
        journal
            .commit_with_observer(
                &[PagePatch {
                    offset: 16,
                    bytes: vec![0xCD; 4],
                }],
                &mut |s| steps.push(s.to_string()),
            )
            .unwrap();
        // The kill-point protocol is byte-for-byte what it was.
        assert_eq!(
            steps,
            [
                "begin",
                "journal-written",
                "patches-applied",
                "journal-removed"
            ]
        );
        let trees = ring.trees();
        assert_eq!(trees.len(), 1);
        let root = &trees[0];
        assert_eq!(root.name, "journal_commit");
        assert_eq!(root.tag, 1, "tagged with the patch count");
        let names: Vec<&str> = root.children.iter().map(|c| c.name).collect();
        assert_eq!(names, ["write", "fsync", "apply", "retire"]);
        assert!(root.children.iter().all(|c| c.end_ns >= c.start_ns));
        let _ = std::fs::remove_file(&store);
    }

    #[test]
    fn recovery_replays_complete_journals_and_discards_partial_ones() {
        let store = temp("recover.milr");
        std::fs::write(&store, vec![0u8; 32]).unwrap();
        let patches = vec![PagePatch {
            offset: 4,
            bytes: vec![7; 8],
        }];
        // Complete journal left behind (kill between apply and retire —
        // or before apply; same bytes either way).
        std::fs::write(journal_path(&store), encode_journal(&patches)).unwrap();
        assert!(recover(&store).unwrap());
        assert!(!journal_path(&store).exists());
        assert_eq!(&std::fs::read(&store).unwrap()[4..12], &[7; 8]);
        // Partial journal (kill mid-write): discarded, file untouched.
        std::fs::write(&store, vec![0u8; 32]).unwrap();
        let bytes = encode_journal(&patches);
        std::fs::write(journal_path(&store), &bytes[..bytes.len() - 3]).unwrap();
        assert!(!recover(&store).unwrap());
        assert!(!journal_path(&store).exists());
        assert_eq!(std::fs::read(&store).unwrap(), vec![0u8; 32]);
        // Orphan shadow: removed.
        std::fs::write(shadow_path(&store), b"half a container").unwrap();
        assert!(!recover(&store).unwrap());
        assert!(!shadow_path(&store).exists());
        let _ = std::fs::remove_file(&store);
    }

    #[test]
    fn replace_container_is_old_or_new() {
        let store = temp("replace.milr");
        std::fs::write(&store, b"old contents").unwrap();
        replace_container(&store, b"new contents!", &mut |_| {}).unwrap();
        assert_eq!(std::fs::read(&store).unwrap(), b"new contents!");
        assert!(!shadow_path(&store).exists());
        let _ = std::fs::remove_file(&store);
    }
}
