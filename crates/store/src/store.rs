//! The [`Store`]: one `.milr` container on disk, opened for serving.

use crate::format::{
    read_meta, read_report, read_section, write_meta, write_report, write_section, LayerEntry,
    StoreMeta, CONTAINER_VERSION, MAGIC, SECTION_HEADER,
};
use crate::journal::{recover, replace_container, Journal};
use crate::StoreError;
use milr_core::{Milr, MilrConfig, StorageReport};
use milr_nn::Sequential;
use milr_substrate::{
    FileSubstrate, PageFile, SharedSubstrate, StdFile, SubstrateKind, WeightSubstrate,
};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Creation-time knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Base substrate kind encoding the weight pages on disk.
    pub kind: SubstrateKind,
    /// Weights per page (the write-back / streaming granularity).
    pub page_weights: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            // The paper's ECC-DRAM baseline: single disk bit errors are
            // absorbed by the code layer, anything worse by MILR.
            kind: SubstrateKind::Secded,
            page_weights: 1024,
        }
    }
}

/// A persistent MILR-protected model: substrate-encoded weight pages
/// plus the serialized protection instance, in one crash-consistent
/// container file. See the [crate docs](crate) for the format and the
/// commit protocols.
pub struct Store {
    path: PathBuf,
    io: Arc<StdFile>,
    journal: Arc<Journal>,
    meta: StoreMeta,
    milr: Milr,
    report: StorageReport,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.path)
            .field("kind", &self.meta.kind)
            .field("layers", &self.meta.layers.len())
            .field("weights_end", &self.meta.weights_end())
            .finish()
    }
}

/// Encodes `weights` into per-page raw images of `kind`.
fn encode_region(kind: SubstrateKind, weights: &[f32], page_weights: usize, out: &mut Vec<u8>) {
    for chunk in weights.chunks(page_weights.max(1)) {
        out.extend(kind.store(chunk).export_raw());
    }
}

/// Computes the layer table (offsets unassigned) for a model.
fn layout(kind: SubstrateKind, page_weights: usize, template: &Sequential) -> StoreMeta {
    StoreMeta {
        kind,
        page_weights,
        template: template.clone(),
        layers: template
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.param_count() > 0)
            .map(|(i, l)| LayerEntry {
                layer: i,
                weights: l.param_count(),
                offset: 0,
                bytes: FileSubstrate::region_bytes(kind, l.param_count(), page_weights) as u64,
            })
            .collect(),
    }
}

/// Builds the complete container image, assigning final weight-region
/// offsets into `meta`. `region_of(i)` yields layer `i`'s (by table
/// order) raw page run.
fn build_container(
    meta: &mut StoreMeta,
    artifacts: &[u8],
    report: &StorageReport,
    mut region_of: impl FnMut(usize) -> Vec<u8>,
) -> Vec<u8> {
    let report_bytes = write_report(report);
    // META length is offset-value independent (fixed-width fields), so
    // one sizing pass pins the weight-region start.
    let meta_len = write_meta(meta).len();
    let mut offset =
        (12 + 3 * SECTION_HEADER + meta_len + artifacts.len() + report_bytes.len()) as u64;
    for e in &mut meta.layers {
        e.offset = offset;
        offset += e.bytes;
    }
    let meta_bytes = write_meta(meta);
    assert_eq!(meta_bytes.len(), meta_len, "META must size stably");
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
    write_section(&mut out, &meta_bytes);
    write_section(&mut out, artifacts);
    write_section(&mut out, &report_bytes);
    for i in 0..meta.layers.len() {
        assert_eq!(out.len() as u64, meta.layers[i].offset, "layout drift");
        let region = region_of(i);
        assert_eq!(
            region.len() as u64,
            meta.layers[i].bytes,
            "region {i} does not match its layout size"
        );
        out.extend(region);
    }
    out
}

impl Store {
    /// Protects `model` under `config` and writes a fresh container at
    /// `path` (atomically: shadow + rename — a kill leaves the previous
    /// file, or none, never a partial container). Returns the opened
    /// store.
    ///
    /// # Errors
    ///
    /// Propagates MILR protection failures and I/O errors.
    pub fn create(
        path: &Path,
        model: &Sequential,
        config: MilrConfig,
        opts: StoreOptions,
    ) -> Result<Store, StoreError> {
        let milr = Milr::protect(model, config)?;
        Self::create_protected(path, model, &milr, opts)
    }

    /// [`Store::create`] with an already-built protection instance.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create_protected(
        path: &Path,
        model: &Sequential,
        milr: &Milr,
        opts: StoreOptions,
    ) -> Result<Store, StoreError> {
        let kind = opts.kind.base();
        let report = milr.storage_report(model);
        let mut template = model.clone();
        for layer in template.layers_mut() {
            if let Some(p) = layer.params_mut() {
                p.map_in_place(|_| 0.0);
            }
        }
        let mut meta = layout(kind, opts.page_weights.max(1), &template);
        let artifacts = milr.to_bytes();
        let params: Vec<&[f32]> = meta
            .layers
            .iter()
            .map(|e| {
                model.layers()[e.layer]
                    .params()
                    .expect("table lists param layers")
                    .data()
            })
            .collect();
        let page_weights = meta.page_weights;
        let bytes = build_container(&mut meta, &artifacts, &report, |i| {
            let mut region = Vec::with_capacity(params[i].len() * 8);
            encode_region(kind, params[i], page_weights, &mut region);
            region
        });
        // Settle any predecessor's crash droppings *before* the new
        // container exists: a committed journal left by a previous
        // store at this path must replay into (or be discarded with)
        // the OLD file — replaying old-layout patches into the new
        // container would corrupt it.
        if path.exists() {
            recover(path)?;
        } else {
            let _ = std::fs::remove_file(crate::journal::journal_path(path));
            let _ = std::fs::remove_file(crate::journal::shadow_path(path));
        }
        replace_container(path, &bytes, &mut |_| {})?;
        Self::open(path)
    }

    /// Opens a container: runs crash recovery (journal replay, shadow
    /// cleanup), then parses and checksum-validates the
    /// error-resistant sections. The weight region is *not* validated
    /// here — raw-space faults in it are the serving layer's
    /// scrub-on-load job.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for a damaged container (bad magic,
    /// checksum mismatch, truncated weight region, inconsistent meta),
    /// I/O errors otherwise.
    pub fn open(path: &Path) -> Result<Store, StoreError> {
        recover(path)?;
        let mut file = std::fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        // Stream only the error-resistant head sections; the (possibly
        // huge) weight region stays on disk until pages are touched.
        let mut read_n = |n: u64, what: &str| -> Result<Vec<u8>, StoreError> {
            if n > file_len {
                return Err(StoreError::Corrupt(format!(
                    "implausible {what} length {n} in a {file_len}-byte file"
                )));
            }
            let mut buf = vec![0u8; n as usize];
            file.read_exact(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    StoreError::Corrupt(format!("container truncated reading {what}"))
                } else {
                    StoreError::from(e)
                }
            })?;
            Ok(buf)
        };
        let head = read_n(12, "header")?;
        if head[..8] != MAGIC {
            return Err(StoreError::Corrupt("not a .milr container".into()));
        }
        let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
        if version != CONTAINER_VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported container version {version}"
            )));
        }
        let mut sections = Vec::with_capacity(3);
        for what in ["META", "ARTIFACTS", "REPORT"] {
            let header = read_n(SECTION_HEADER as u64, what)?;
            let len = u64::from_le_bytes(header[..8].try_into().expect("8 bytes"));
            let payload = read_n(len, what)?;
            let mut section = header;
            section.extend(payload);
            let verified = read_section(&mut crate::bytes::Reader::new(&section), what)?;
            sections.push(verified.to_vec());
        }
        let meta = read_meta(&sections[0])?;
        let milr = Milr::from_bytes(&sections[1])?;
        let report = read_report(&sections[2])?;
        if file_len < meta.weights_end() {
            return Err(StoreError::Corrupt(format!(
                "weight region truncated: file is {file_len} bytes, layout needs {}",
                meta.weights_end()
            )));
        }
        let io = Arc::new(StdFile::open(path)?);
        let journal = Arc::new(Journal::new(path, Arc::clone(&io)));
        Ok(Store {
            path: path.to_path_buf(),
            io,
            journal,
            meta,
            milr,
            report,
        })
    }

    /// The container path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The deserialized protection instance.
    pub fn milr(&self) -> &Milr {
        &self.milr
    }

    /// The stored storage-overhead report.
    pub fn report(&self) -> &StorageReport {
        &self.report
    }

    /// The architecture skeleton (parameters zeroed).
    pub fn template(&self) -> &Sequential {
        &self.meta.template
    }

    /// Base substrate kind of the weight pages.
    pub fn kind(&self) -> SubstrateKind {
        self.meta.kind
    }

    /// Weights per page.
    pub fn page_weights(&self) -> usize {
        self.meta.page_weights
    }

    /// The layer table (ascending by layer index).
    pub fn layers(&self) -> &[LayerEntry] {
        &self.meta.layers
    }

    /// The page-commit journal shared by this store's substrates — the
    /// kill-point harness drives it directly via
    /// [`Journal::commit_with_observer`].
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// Opens one [`FileSubstrate`] per parameterized layer over the
    /// container's weight region, each write-back committed through
    /// the shared journal. `cache_pages` bounds each substrate's
    /// in-memory block cache (models larger than the budget stream).
    pub fn open_substrates(&self, cache_pages: usize) -> Vec<(usize, Box<dyn WeightSubstrate>)> {
        self.meta
            .layers
            .iter()
            .map(|e| {
                let sub = FileSubstrate::open(
                    self.meta.kind,
                    Arc::clone(&self.io) as Arc<dyn milr_substrate::PageFile>,
                    Arc::clone(&self.journal) as Arc<dyn milr_substrate::PageCommitter>,
                    e.offset,
                    e.weights,
                    self.meta.page_weights,
                    cache_pages,
                );
                (e.layer, Box::new(sub) as Box<dyn WeightSubstrate>)
            })
            .collect()
    }

    /// Number of pages in one stored layer's run.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is not in the table.
    pub fn layer_page_count(&self, layer: usize) -> usize {
        self.entry(layer).weights.div_ceil(self.meta.page_weights)
    }

    /// Reads the raw (substrate-encoded) bytes of one page of a
    /// layer's run straight from the container — the page-granular
    /// read peer repair is built on. No decode, no verification: pair
    /// with [`Store::certified_layer_pages`] when the bytes must be
    /// proven clean before use.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is not in the table or `page` is out of
    /// range for its run.
    pub fn read_layer_page_raw(&self, layer: usize, page: usize) -> Result<Vec<u8>, StoreError> {
        let e = self.entry(layer);
        let pages = e.weights.div_ceil(self.meta.page_weights);
        assert!(page < pages, "page {page} out of range ({pages} pages)");
        let full = self.meta.kind.raw_image_bytes(self.meta.page_weights);
        let weights = self
            .meta
            .page_weights
            .min(e.weights - page * self.meta.page_weights);
        let mut buf = vec![0u8; self.meta.kind.raw_image_bytes(weights)];
        self.io
            .read_exact_at(e.offset + (page * full) as u64, &mut buf)?;
        Ok(buf)
    }

    /// **Certified** page read of one layer's run: reads every page,
    /// decodes them, and replays the layer's MILR detection check
    /// against the stored artifacts. Only when the check passes are the
    /// raw page images returned — this is what lets a damaged replica
    /// trust a peer's pages: the peer proves, against its own
    /// error-resistant artifacts, that the bytes it ships decode to the
    /// protected weights.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the decoded pages fail the layer's
    /// detection check (the store's own weight region is damaged — pick
    /// another peer); I/O and detection errors otherwise.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is not in the table.
    pub fn certified_layer_pages(&self, layer: usize) -> Result<Vec<Vec<u8>>, StoreError> {
        let e = self.entry(layer);
        let pages = e.weights.div_ceil(self.meta.page_weights);
        let mut images = Vec::with_capacity(pages);
        let mut weights = Vec::with_capacity(e.weights);
        for page in 0..pages {
            let image = self.read_layer_page_raw(layer, page)?;
            let page_weights = self
                .meta
                .page_weights
                .min(e.weights - page * self.meta.page_weights);
            let sub = self
                .meta
                .kind
                .restore(&image, page_weights)
                .map_err(|err| {
                    StoreError::Corrupt(format!("page {page} of layer {layer}: {err}"))
                })?;
            weights.extend(sub.read_weights());
            images.push(image);
        }
        let mut model = self.meta.template.clone();
        let params = model.layers_mut()[layer]
            .params_mut()
            .expect("table lists param layers");
        let dims = params.shape().dims().to_vec();
        *params = milr_tensor::Tensor::from_vec(weights, &dims)
            .map_err(|err| StoreError::Corrupt(format!("layer {layer} page run: {err}")))?;
        let check = self.milr.detect_layers(&model, &[layer])?;
        if !check.is_clean() {
            return Err(StoreError::Corrupt(format!(
                "layer {layer} failed its detection check — pages are not certified"
            )));
        }
        Ok(images)
    }

    /// Raw (fault-surface) bits of one layer's on-disk pages — the
    /// index space [`Store::flip_raw_bit`] accepts.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is not in the table.
    pub fn layer_raw_bits(&self, layer: usize) -> usize {
        let e = self.entry(layer);
        let pages = e.weights.div_ceil(self.meta.page_weights);
        let full = self.meta.kind.raw_bits_for(self.meta.page_weights);
        let last = e.weights - (pages - 1) * self.meta.page_weights;
        (pages - 1) * full + self.meta.kind.raw_bits_for(last)
    }

    /// Flips one raw bit of a layer's on-disk pages **directly in the
    /// file** — simulated disk corruption, deliberately bypassing the
    /// journal (faults don't announce themselves). `bit` indexes the
    /// layer's substrate raw space, i.e. the same space the in-memory
    /// injectors draw from.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is not in the table or `bit` is out of
    /// range.
    pub fn flip_raw_bit(&self, layer: usize, bit: usize) -> Result<(), StoreError> {
        let e = self.entry(layer);
        let direct = Arc::new(milr_substrate::DirectCommitter::new(
            Arc::clone(&self.io) as Arc<dyn milr_substrate::PageFile>
        ));
        let mut sub = FileSubstrate::open(
            self.meta.kind,
            Arc::clone(&self.io) as Arc<dyn milr_substrate::PageFile>,
            direct,
            e.offset,
            e.weights,
            self.meta.page_weights,
            1,
        );
        sub.flip_raw_bit(bit);
        sub.flush()
            .map_err(|err| StoreError::Corrupt(format!("writing fault to disk: {err}")))?;
        Ok(())
    }

    /// Durably re-anchors protection: writes a whole new container —
    /// the given (freshly re-protected) instance, a recomputed storage
    /// report, and the **current** raw weight images of `shared` (one
    /// shard per table entry, in order) — via shadow + atomic rename,
    /// then moves this handle (and every substrate sharing its
    /// [`StdFile`]) onto the new file. A kill at any point leaves the
    /// old certified container or the new one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics when `shared`'s shard count or shard sizes disagree with
    /// the layer table.
    pub fn commit_reanchor(
        &mut self,
        milr: &Milr,
        model: &Sequential,
        shared: &SharedSubstrate,
    ) -> Result<(), StoreError> {
        self.commit_reanchor_with_observer(milr, model, shared, &mut |_| {})
    }

    /// [`Store::commit_reanchor`] with a kill-point observer (steps
    /// `"begin"`, `"shadow-written"`, `"renamed"`).
    ///
    /// # Errors
    ///
    /// See [`Store::commit_reanchor`].
    pub fn commit_reanchor_with_observer(
        &mut self,
        milr: &Milr,
        model: &Sequential,
        shared: &SharedSubstrate,
        observe: &mut dyn FnMut(&str),
    ) -> Result<(), StoreError> {
        assert_eq!(
            shared.shard_count(),
            self.meta.layers.len(),
            "one shard per stored layer"
        );
        let report = milr.storage_report(model);
        let artifacts = milr.to_bytes();
        let mut meta = layout(self.meta.kind, self.meta.page_weights, &self.meta.template);
        let bytes = build_container(&mut meta, &artifacts, &report, |i| {
            shared.export_shard_raw(i)
        });
        replace_container(&self.path, &bytes, observe)?;
        // Everyone holding this StdFile must move to the new inode.
        self.io.replace(
            std::fs::File::options()
                .read(true)
                .write(true)
                .open(&self.path)?,
        );
        self.meta = meta;
        self.milr = milr.clone();
        self.report = report;
        Ok(())
    }

    fn entry(&self, layer: usize) -> &LayerEntry {
        self.meta
            .layers
            .iter()
            .find(|e| e.layer == layer)
            .unwrap_or_else(|| panic!("layer {layer} is not stored"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_nn::Layer;
    use milr_tensor::{ConvSpec, Padding, TensorRng};

    fn model() -> Sequential {
        let mut rng = TensorRng::new(5);
        let mut m = Sequential::new(vec![8, 8, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(6 * 6 * 4, 5, &mut rng).unwrap())
            .unwrap();
        m
    }

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("milr-store-{}-{name}.milr", std::process::id()))
    }

    #[test]
    fn create_open_roundtrip_per_kind() {
        let m = model();
        for kind in SubstrateKind::ALL {
            let path = temp(&format!("rt-{kind:?}"));
            let store = Store::create(
                &path,
                &m,
                MilrConfig::default(),
                StoreOptions {
                    kind,
                    page_weights: 16,
                },
            )
            .unwrap();
            assert_eq!(store.kind(), kind);
            assert_eq!(store.layers().len(), 3);
            drop(store);

            let store = Store::open(&path).unwrap();
            let shared = SharedSubstrate::from_parts(
                store
                    .open_substrates(4)
                    .into_iter()
                    .map(|(_, s)| s)
                    .collect(),
            );
            // Decoded weights are bit-identical to the saved model.
            let mut expect = Vec::new();
            for l in m.layers() {
                if let Some(p) = l.params() {
                    expect.extend_from_slice(p.data());
                }
            }
            let got = shared.read_weights();
            let eb: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(eb, gb, "{kind}");
            // Artifacts survive: a clean model detects clean.
            assert!(store.milr().detect(&m).unwrap().is_clean(), "{kind}");
            assert_eq!(store.report(), &store.milr().storage_report(&m));
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn open_rejects_damaged_error_resistant_sections() {
        let m = model();
        let path = temp("damage");
        Store::create(&path, &m, MilrConfig::default(), StoreOptions::default()).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(Store::open(&path), Err(StoreError::Corrupt(_))));
        // Flip one byte inside the META section payload.
        let mut bad = good.clone();
        bad[40] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(Store::open(&path), Err(StoreError::Corrupt(_))));
        // Truncate into the weight region.
        std::fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(matches!(Store::open(&path), Err(StoreError::Corrupt(_))));
        // Restore: opens again.
        std::fs::write(&path, &good).unwrap();
        assert!(Store::open(&path).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disk_fault_injection_lands_in_substrate_raw_space() {
        let m = model();
        let path = temp("fault");
        let store = Store::create(
            &path,
            &m,
            MilrConfig::default(),
            StoreOptions {
                kind: SubstrateKind::Secded,
                page_weights: 8,
            },
        )
        .unwrap();
        let bits = store.layer_raw_bits(0);
        assert_eq!(
            bits,
            SubstrateKind::Secded.raw_bits_for(8) * 4 + SubstrateKind::Secded.raw_bits_for(4)
        );
        store.flip_raw_bit(0, 41).unwrap();
        drop(store);
        // Reopen: the substrate's own scrub sees and corrects exactly
        // one single-bit error.
        let store = Store::open(&path).unwrap();
        let shared = SharedSubstrate::from_parts(
            store
                .open_substrates(2)
                .into_iter()
                .map(|(_, s)| s)
                .collect(),
        );
        let summary = shared.scrub();
        assert_eq!(summary.corrected, 1);
        assert_eq!(summary.uncorrectable, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_over_a_crashed_store_discards_its_stale_journal() {
        // A predecessor store killed between "patches-applied" and
        // "journal-removed" leaves a complete journal. Re-creating a
        // store at the same path must not replay those old-layout
        // patches into the fresh container.
        let m = model();
        let path = temp("stale-journal");
        let store = Store::create(
            &path,
            &m,
            MilrConfig::default(),
            StoreOptions {
                kind: SubstrateKind::Plain,
                page_weights: 8,
            },
        )
        .unwrap();
        let patch = milr_substrate::PagePatch {
            offset: store.layers()[0].offset,
            bytes: vec![0xAB; 32],
        };
        let journal = Arc::clone(store.journal());
        drop(store);
        // Simulate the kill: run the protocol but die before the
        // journal is retired.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            journal.commit_with_observer(std::slice::from_ref(&patch), &mut |step| {
                assert!(step != "patches-applied", "kill point");
            })
        }));
        assert!(result.is_err(), "the simulated kill must fire");
        assert!(crate::journal::journal_path(&path).exists());
        // A brand-new store over the same path (different layout) must
        // come up clean, not corrupted by the stale journal.
        let fresh = model();
        let store = Store::create(
            &path,
            &fresh,
            MilrConfig::default(),
            StoreOptions {
                kind: SubstrateKind::Secded,
                page_weights: 32,
            },
        )
        .unwrap();
        assert!(!crate::journal::journal_path(&path).exists());
        let shared = SharedSubstrate::from_parts(
            store
                .open_substrates(4)
                .into_iter()
                .map(|(_, s)| s)
                .collect(),
        );
        let mut expect = Vec::new();
        for l in fresh.layers() {
            if let Some(p) = l.params() {
                expect.extend(p.data().iter().map(|v| v.to_bits()));
            }
        }
        let got: Vec<u32> = shared.read_weights().iter().map(|v| v.to_bits()).collect();
        assert_eq!(expect, got, "stale journal leaked into the new container");
        assert!(store.milr().detect(&fresh).unwrap().is_clean());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn page_reads_cover_layer_runs_and_certify() {
        let m = model();
        for kind in SubstrateKind::ALL {
            let path = temp(&format!("pages-{kind:?}"));
            let store = Store::create(
                &path,
                &m,
                MilrConfig::default(),
                StoreOptions {
                    kind,
                    page_weights: 16,
                },
            )
            .unwrap();
            // Conv layer 0 holds 36 weights: 3 pages of 16/16/4.
            assert_eq!(store.layer_page_count(0), 3);
            assert_eq!(store.layer_page_count(1), 1);
            let certified = store.certified_layer_pages(0).unwrap();
            assert_eq!(certified.len(), 3);
            // The certified pages are exactly the on-disk page bytes,
            // and concatenate to the layer's full region.
            let mut concat = Vec::new();
            for (i, page) in certified.iter().enumerate() {
                assert_eq!(page, &store.read_layer_page_raw(0, i).unwrap(), "{kind}");
                concat.extend_from_slice(page);
            }
            assert_eq!(concat.len() as u64, store.layers()[0].bytes, "{kind}");
            // Damage the layer on disk: certification must refuse.
            let stride = store.layer_raw_bits(0) / 36;
            for bit in 7 * stride..8 * stride {
                store.flip_raw_bit(0, bit).unwrap();
            }
            assert!(
                matches!(store.certified_layer_pages(0), Err(StoreError::Corrupt(_))),
                "{kind}: damaged pages must not certify"
            );
            // Other layers still certify.
            assert!(store.certified_layer_pages(3).is_ok(), "{kind}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn reanchor_swaps_container_atomically() {
        let m = model();
        let path = temp("reanchor");
        let mut store = Store::create(
            &path,
            &m,
            MilrConfig::default(),
            StoreOptions {
                kind: SubstrateKind::Plain,
                page_weights: 32,
            },
        )
        .unwrap();
        let shared = SharedSubstrate::from_parts(
            store
                .open_substrates(4)
                .into_iter()
                .map(|(_, s)| s)
                .collect(),
        );
        // Mutate weights in memory (not yet flushed), re-protect, and
        // commit: the new container must carry the new weights and the
        // new artifacts together.
        let mut m2 = m.clone();
        m2.layers_mut()[0].params_mut().unwrap().data_mut()[0] = 7.5;
        let mut all = Vec::new();
        for l in m2.layers() {
            if let Some(p) = l.params() {
                all.extend_from_slice(p.data());
            }
        }
        shared.write_weights(&all).unwrap();
        let milr2 = Milr::protect(&m2, MilrConfig::default()).unwrap();
        let mut steps = Vec::new();
        store
            .commit_reanchor_with_observer(&milr2, &m2, &shared, &mut |s| steps.push(s.to_string()))
            .unwrap();
        assert_eq!(steps, ["begin", "shadow-written", "renamed"]);
        drop(shared);
        drop(store);
        let reopened = Store::open(&path).unwrap();
        let shared = SharedSubstrate::from_parts(
            reopened
                .open_substrates(4)
                .into_iter()
                .map(|(_, s)| s)
                .collect(),
        );
        assert_eq!(shared.read_weights()[0], 7.5);
        assert!(reopened.milr().detect(&m2).unwrap().is_clean());
        assert!(!reopened.milr().detect(&m).unwrap().is_clean());
        let _ = std::fs::remove_file(&path);
    }
}
