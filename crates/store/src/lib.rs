//! # milr-store
//!
//! A **crash-consistent persistent weight store** for MILR-protected
//! models: the paper keeps its protection artifacts in error-resistant
//! storage precisely because they are durable and storage-cheap — this
//! crate makes the whole reproduction live up to that, so a model (and
//! its heals) outlives the process that built it.
//!
//! One `.milr` container file holds:
//!
//! * **substrate-encoded weight pages** — the raw image of one of the
//!   evaluation substrates (plain / SECDED / XTS / XTS+SECDED), paged
//!   so [`milr_substrate::FileSubstrate`] can stream models larger
//!   than its block-cache budget. Disk faults in this region land in
//!   the paper's raw error space and are *healed* on load (substrate
//!   scrub + MILR recovery), not rejected;
//! * **checksummed error-resistant sections** — the architecture
//!   skeleton, the serialized protection instance
//!   ([`milr_core::Milr::to_bytes`]) and the [`milr_core::StorageReport`]
//!   (see [`format`] for the layout). Damage here fails the load.
//!
//! Two commit protocols keep every kill point loadable ([`journal`]):
//! page write-backs (healed layers, scrub corrections) go through a
//! redo **journal**, and protection **re-anchoring** replaces the
//! whole container via shadow file + atomic rename. A process killed
//! at any step reloads to the old certified state or the new one —
//! never a torn mixture.
//!
//! ```no_run
//! use milr_core::MilrConfig;
//! use milr_store::{Store, StoreOptions};
//! use milr_substrate::SharedSubstrate;
//! # fn model() -> milr_nn::Sequential { unimplemented!() }
//!
//! // Process A: build → protect → save.
//! let golden = model();
//! Store::create("model.milr".as_ref(), &golden, MilrConfig::default(),
//!               StoreOptions::default())?;
//!
//! // Process B (later, maybe after a crash): cold-start.
//! let store = Store::open("model.milr".as_ref())?;
//! let shared = SharedSubstrate::from_parts(
//!     store.open_substrates(64).into_iter().map(|(_, s)| s).collect());
//! let scrub = shared.scrub();          // substrate-level scrub-on-load
//! # let _ = scrub;
//! # Ok::<(), milr_store::StoreError>(())
//! ```
//!
//! The serving integration (`milr-serve`'s `Server::start_from_store`)
//! layers full MILR detection, recovery, and durable re-anchoring on
//! top of this cold-start path.

#![deny(missing_docs)]

mod bytes;
pub mod format;
pub mod journal;
mod store;

pub use format::{LayerEntry, StoreMeta, CONTAINER_VERSION, MAGIC};
pub use journal::{journal_path, shadow_path, Journal};
pub use store::{Store, StoreOptions};

use milr_core::MilrError;
use milr_substrate::SubstrateError;

/// Errors from creating, opening, or committing a store.
#[derive(Debug)]
pub enum StoreError {
    /// The container (or journal/shadow machinery) hit an I/O failure.
    Io(std::io::Error),
    /// The container's error-resistant sections are damaged or
    /// inconsistent: the load is refused rather than risking silent
    /// corruption.
    Corrupt(String),
    /// The embedded protection instance failed to build or decode.
    Milr(MilrError),
    /// A substrate rejected an operation.
    Substrate(SubstrateError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt container: {msg}"),
            StoreError::Milr(e) => write!(f, "protection error: {e}"),
            StoreError::Substrate(e) => write!(f, "substrate error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Milr(e) => Some(e),
            StoreError::Substrate(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<MilrError> for StoreError {
    fn from(e: MilrError) -> Self {
        StoreError::Milr(e)
    }
}

impl From<SubstrateError> for StoreError {
    fn from(e: SubstrateError) -> Self {
        StoreError::Substrate(e)
    }
}

/// Convenience: the stored [`milr_core::StorageReport`] plus the persistence
/// surcharge — what the container spends on top of the substrate
/// encoding (section headers, skeleton, serialized artifacts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerFootprint {
    /// Bytes of the weight region (substrate raw images).
    pub weight_bytes: u64,
    /// Bytes of the checksummed head sections (incl. headers).
    pub resistant_bytes: u64,
}

impl ContainerFootprint {
    /// Measures a store's on-disk footprint split.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors reading the file length.
    pub fn measure(store: &Store) -> Result<Self, StoreError> {
        let total = std::fs::metadata(store.path())?.len();
        let weight_bytes: u64 = store.layers().iter().map(|l| l.bytes).sum();
        Ok(ContainerFootprint {
            weight_bytes,
            resistant_bytes: total - weight_bytes,
        })
    }
}
