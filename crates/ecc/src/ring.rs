//! Quantized integer rings: the int8 lattice and IEEE half-precision
//! codecs shared by the quantized weight substrates and MILR's exact
//! integer-ring recovery.
//!
//! The point of quantization here is not (only) memory footprint — it is
//! **exactness**. An f32 weight recovered by a least-squares solve lands
//! within a few ulps of the golden value, forcing MILR's CRC snap to
//! walk a ±4096-ulp neighborhood. A quantized weight lives on a discrete
//! grid whose points are *exactly representable* in f32 (the int8 scale
//! is a power of two, and every f16 value is an f32 value), so snapping
//! the solver output to the nearest grid point lands on the golden bits
//! in one step: the checksum arithmetic over the ring is exact and the
//! ulp search never runs.

/// Base-2 log of the int8 dequantization scale: weights are
/// `q · 2^INT8_SCALE_LOG2` for `q ∈ [-128, 127]`.
///
/// A power-of-two scale makes both quantize and dequantize exact in f32
/// (no rounding beyond the grid snap itself): range ±2.0, resolution
/// 2⁻⁶ = 0.015625 — ample for the unit-scale CNN weights of the
/// reproduction's models.
pub const INT8_SCALE_LOG2: i32 = -6;

/// The int8 dequantization scale as an (exact) f32.
pub const INT8_SCALE: f32 = 0.015625;

/// Quantizes onto the int8 lattice: nearest `q ∈ [-128, 127]`.
pub fn int8_quantize(v: f32) -> i8 {
    let q = (v / INT8_SCALE).round();
    if q.is_nan() {
        0
    } else {
        q.clamp(-128.0, 127.0) as i8
    }
}

/// Dequantizes an int8 lattice point. Exact: `|q| ≤ 128 ≪ 2²⁴` times a
/// power of two.
pub fn int8_value(q: i8) -> f32 {
    q as f32 * INT8_SCALE
}

/// Snaps an f32 to its nearest int8 lattice value.
pub fn int8_snap(v: f32) -> f32 {
    int8_value(int8_quantize(v))
}

/// Converts an f32 to IEEE 754 binary16 bits, round-to-nearest-even,
/// with subnormal and infinity/NaN handling.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let x = value.to_bits();
    let sign = ((x >> 16) & 0x8000) as u16;
    let exp32 = ((x >> 23) & 0xFF) as i32;
    let mant = x & 0x007F_FFFF;

    if exp32 == 0xFF {
        if mant == 0 {
            return sign | 0x7C00; // infinity
        }
        // NaN: keep the top mantissa bits, force quiet-nonzero payload.
        let m = (mant >> 13) as u16 & 0x3FF;
        return sign | 0x7C00 | m | u16::from(m == 0);
    }

    let e = exp32 - 127 + 15;
    if e >= 0x1F {
        return sign | 0x7C00; // overflow to infinity
    }
    if e <= 0 {
        // Subnormal half (or zero): value = m24 · 2^(e-38) = h · 2^-24.
        if e < -10 {
            return sign; // underflow to signed zero
        }
        let m24 = mant | 0x0080_0000;
        let shift = (14 - e) as u32;
        let half = (m24 >> shift) as u16;
        let round_bit = 1u32 << (shift - 1);
        let round_up = m24 & round_bit != 0 && (m24 & (round_bit - 1) != 0 || half & 1 != 0);
        return sign | (half + u16::from(round_up));
    }

    // Normal half: drop 13 mantissa bits with round-to-nearest-even. A
    // carry out of the mantissa correctly bumps the exponent (and can
    // round up to infinity).
    let half = ((e as u16) << 10) | ((mant >> 13) as u16);
    let round_bit = 0x0000_1000u32;
    let round_up = mant & round_bit != 0 && (mant & (round_bit - 1) != 0 || half & 1 != 0);
    sign | (half + u16::from(round_up))
}

/// Converts IEEE 754 binary16 bits to the exactly-representing f32.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let mant = (bits & 0x3FF) as u32;
    let out = if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalize. With the leading 1 moved to bit 10,
            // value = (1+f) · 2^(-14-shift), so E = 113 - shift.
            let shift = 10 - (31 - mant.leading_zeros());
            let e = 113 - shift;
            sign | (e << 23) | (((mant << shift) & 0x3FF) << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Snaps an f32 to its nearest binary16-representable value
/// (round-to-nearest-even).
pub fn f16_snap(v: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn f16_known_vectors() {
        for (v, bits) in [
            (0.0f32, 0x0000u16),
            (-0.0, 0x8000),
            (1.0, 0x3C00),
            (-2.0, 0xC000),
            (0.5, 0x3800),
            (0.1, 0x2E66),     // round-to-nearest-even case
            (65504.0, 0x7BFF), // f16::MAX
            (65520.0, 0x7C00), // rounds to infinity
            (f32::INFINITY, 0x7C00),
            (2.0f32.powi(-24), 0x0001), // smallest subnormal
            (2.0f32.powi(-25), 0x0000), // tie rounds to even zero
            (2.0f32.powi(-14), 0x0400), // smallest normal
        ] {
            assert_eq!(f32_to_f16_bits(v), bits, "{v}");
        }
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_bits_roundtrip_exhaustive() {
        // Every non-NaN half value must survive f16 -> f32 -> f16
        // bit-for-bit; NaNs must stay NaN with payload preserved.
        for bits in 0..=0xFFFFu16 {
            let back = f32_to_f16_bits(f16_bits_to_f32(bits));
            assert_eq!(back, bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn int8_lattice_points_are_exact() {
        for q in i8::MIN..=i8::MAX {
            let v = int8_value(q);
            assert_eq!(int8_quantize(v), q, "q={q}");
            assert_eq!(int8_snap(v).to_bits(), v.to_bits(), "q={q}");
        }
        assert_eq!(int8_quantize(100.0), 127);
        assert_eq!(int8_quantize(-100.0), -128);
        assert_eq!(int8_quantize(f32::NAN), 0);
    }

    proptest! {
        #[test]
        fn f16_snap_is_idempotent(bits in proptest::num::u32::ANY) {
            let v = f32::from_bits(bits);
            let snapped = f16_snap(v);
            prop_assert_eq!(f16_snap(snapped).to_bits(), snapped.to_bits());
        }

        #[test]
        fn f16_snap_error_is_bounded(v in -1000.0f32..1000.0) {
            // Half precision has 11 significand bits: relative error
            // within 2^-11 for normal-range values.
            let snapped = f16_snap(v);
            let tol = v.abs().max(2.0f32.powi(-14)) * 2.0f32.powi(-11);
            prop_assert!((snapped - v).abs() <= tol, "{v} -> {snapped}");
        }

        #[test]
        fn int8_snap_is_idempotent(v in -10.0f32..10.0) {
            let snapped = int8_snap(v);
            prop_assert_eq!(int8_snap(snapped).to_bits(), snapped.to_bits());
            prop_assert!((snapped.abs() <= 2.0) || snapped == -2.0);
        }
    }
}
