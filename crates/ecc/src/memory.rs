use crate::{DecodeOutcome, Secded};

/// A weight buffer stored under SECDED protection, one (39,32) code word
/// per `f32` parameter — the ECC baseline configuration of the paper's
/// evaluation ("protecting each word … that coincides with a single
/// parameter").
///
/// Fault injectors flip bits directly in the code words (ciphertext-side
/// DRAM errors); [`SecdedMemory::scrub`] then behaves like an ECC memory
/// controller sweep: single-bit errors are corrected in place, multi-bit
/// errors pass through silently ("no correction occurs and interrupts is
/// not raised").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecdedMemory {
    words: Vec<u64>,
}

/// Statistics from one scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Words decoded without error.
    pub clean: usize,
    /// Words with a corrected single-bit error.
    pub corrected: usize,
    /// Words with a detected-but-uncorrectable (double) error.
    pub uncorrectable: usize,
}

impl SecdedMemory {
    /// Encodes a weight buffer into protected storage.
    pub fn protect(weights: &[f32]) -> Self {
        SecdedMemory {
            words: weights
                .iter()
                .map(|w| Secded::encode(w.to_bits()))
                .collect(),
        }
    }

    /// Number of protected words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no words are stored.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reconstructs a memory from raw code words (the persistence path:
    /// the words are the substrate's raw image, so a store can round-trip
    /// them through disk *without* decoding — preserving any in-flight
    /// error state bit-for-bit).
    pub fn from_words(words: Vec<u64>) -> Self {
        SecdedMemory { words }
    }

    /// Raw code words (39 valid bits each).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw code words, for fault injection.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Flips one bit of one code word (bit 0..39).
    ///
    /// # Panics
    ///
    /// Panics if `word` or `bit` is out of range.
    pub fn flip_bit(&mut self, word: usize, bit: u32) {
        assert!(bit < Secded::CODE_BITS, "bit {bit} outside code word");
        self.words[word] ^= 1u64 << bit;
    }

    /// Decodes every word best-effort, without correcting storage.
    pub fn read_all(&self) -> Vec<f32> {
        self.words
            .iter()
            .map(|&w| f32::from_bits(Secded::decode(w).data()))
            .collect()
    }

    /// Decodes every word, repairing correctable errors in place, and
    /// returns the decoded weights plus statistics.
    pub fn scrub(&mut self) -> (Vec<f32>, ScrubReport) {
        let mut report = ScrubReport::default();
        let mut out = Vec::with_capacity(self.words.len());
        for w in &mut self.words {
            match Secded::decode(*w) {
                DecodeOutcome::Clean { data } => {
                    report.clean += 1;
                    out.push(f32::from_bits(data));
                }
                DecodeOutcome::Corrected { data, .. } => {
                    report.corrected += 1;
                    *w = Secded::encode(data);
                    out.push(f32::from_bits(data));
                }
                DecodeOutcome::DoubleError { data } => {
                    report.uncorrectable += 1;
                    out.push(f32::from_bits(data));
                }
            }
        }
        (out, report)
    }

    /// ECC storage overhead in bytes: 7 check bits per 32-bit word
    /// (`params × 7 / 8`), the quantity reported in the paper's storage
    /// tables.
    pub fn overhead_bytes(&self) -> usize {
        self.words.len() * Secded::CHECK_BITS as usize / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_weights() -> Vec<f32> {
        (0..64).map(|i| (i as f32) * 0.125 - 4.0).collect()
    }

    #[test]
    fn protect_read_roundtrip() {
        let w = sample_weights();
        let mem = SecdedMemory::protect(&w);
        assert_eq!(mem.len(), 64);
        assert!(!mem.is_empty());
        assert_eq!(mem.read_all(), w);
    }

    #[test]
    fn scrub_fixes_single_bit_errors() {
        let w = sample_weights();
        let mut mem = SecdedMemory::protect(&w);
        mem.flip_bit(3, 11);
        mem.flip_bit(17, 0);
        let (decoded, report) = mem.scrub();
        assert_eq!(decoded, w);
        assert_eq!(report.corrected, 2);
        assert_eq!(report.uncorrectable, 0);
        assert_eq!(report.clean, 62);
        // Storage itself was healed: next scrub is clean.
        let (_, second) = mem.scrub();
        assert_eq!(second.corrected, 0);
        assert_eq!(second.clean, 64);
    }

    #[test]
    fn scrub_reports_double_errors_without_fixing() {
        let w = sample_weights();
        let mut mem = SecdedMemory::protect(&w);
        mem.flip_bit(5, 2);
        mem.flip_bit(5, 30);
        let (decoded, report) = mem.scrub();
        assert_eq!(report.uncorrectable, 1);
        // The word is still corrupt (silent data corruption).
        assert_ne!(decoded[5], w[5]);
    }

    #[test]
    fn whole_weight_error_defeats_ecc() {
        // The PSEC motivation: flip all 32 data-carrying bits.
        let w = vec![1.5f32];
        let mut mem = SecdedMemory::protect(&w);
        for bit in 0..32 {
            // Flip a spread of code-word bits (not only data positions;
            // the attack model garbles the whole encryption word).
            mem.flip_bit(0, bit);
        }
        let (decoded, report) = mem.scrub();
        assert_eq!(report.corrected + report.uncorrectable + report.clean, 1);
        assert_ne!(decoded[0], 1.5);
    }

    #[test]
    fn overhead_matches_paper_formula() {
        // MNIST network: 1,669,290 params -> ECC 1.46 MB (Table V).
        let n = 1_669_290usize;
        let mem = SecdedMemory::protect(&[0.0f32; 4]);
        let _ = mem;
        let bytes = n * 7 / 8;
        let mb = bytes as f64 / 1_000_000.0;
        assert!((mb - 1.46).abs() < 0.01, "{mb}");
    }

    #[test]
    #[should_panic(expected = "outside code word")]
    fn flip_bit_validates_position() {
        let mut mem = SecdedMemory::protect(&[0.0]);
        mem.flip_bit(0, 39);
    }
}
