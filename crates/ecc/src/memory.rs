use crate::{DecodeOutcome, Secded};

/// A weight buffer stored under SECDED protection, one (39,32) code word
/// per `f32` parameter — the ECC baseline configuration of the paper's
/// evaluation ("protecting each word … that coincides with a single
/// parameter").
///
/// Fault injectors flip bits directly in the code words (ciphertext-side
/// DRAM errors); [`SecdedMemory::scrub`] then behaves like an ECC memory
/// controller sweep: single-bit errors are corrected in place, multi-bit
/// errors pass through silently ("no correction occurs and interrupts is
/// not raised").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecdedMemory {
    words: Vec<u64>,
}

/// Statistics from one scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Words decoded without error.
    pub clean: usize,
    /// Words with a corrected single-bit error.
    pub corrected: usize,
    /// Words with a detected-but-uncorrectable (double) error.
    pub uncorrectable: usize,
}

impl SecdedMemory {
    /// Encodes a weight buffer into protected storage.
    pub fn protect(weights: &[f32]) -> Self {
        SecdedMemory {
            words: weights
                .iter()
                .map(|w| Secded::encode(w.to_bits()))
                .collect(),
        }
    }

    /// Number of protected words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no words are stored.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reconstructs a memory from raw code words (the persistence path:
    /// the words are the substrate's raw image, so a store can round-trip
    /// them through disk *without* decoding — preserving any in-flight
    /// error state bit-for-bit).
    pub fn from_words(words: Vec<u64>) -> Self {
        SecdedMemory { words }
    }

    /// Raw code words (39 valid bits each).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw code words, for fault injection.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Flips one bit of one code word (bit 0..39).
    ///
    /// # Panics
    ///
    /// Panics if `word` or `bit` is out of range.
    pub fn flip_bit(&mut self, word: usize, bit: u32) {
        assert!(bit < Secded::CODE_BITS, "bit {bit} outside code word");
        self.words[word] ^= 1u64 << bit;
    }

    /// Decodes every word best-effort, without correcting storage.
    pub fn read_all(&self) -> Vec<f32> {
        self.words
            .iter()
            .map(|&w| f32::from_bits(Secded::decode(w).data()))
            .collect()
    }

    /// Decodes every word best-effort into a caller-provided buffer,
    /// without correcting storage or allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn read_all_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.words.len(), "output buffer length");
        for (slot, &w) in out.iter_mut().zip(&self.words) {
            *slot = f32::from_bits(Secded::decode(w).data());
        }
    }

    /// Words per scrub chunk: the syndrome screen runs over a block of
    /// code words at a time (pure mask+popcount reads the compiler can
    /// unroll and vectorize) before any repair is attempted.
    const SCRUB_CHUNK: usize = 32;

    /// Repairs every correctable error in place without decoding weights
    /// or allocating — the memory-controller sweep an ECC DIMM performs.
    ///
    /// Processes [`Self::SCRUB_CHUNK`]-word blocks: each block is first
    /// screened with the branch-free [`Secded::is_clean`] syndrome kernel
    /// (the overwhelmingly common all-clean case does zero writes), and
    /// only flagged words go through full decode + re-encode.
    pub fn scrub_in_place(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for chunk in self.words.chunks_mut(Self::SCRUB_CHUNK) {
            // Screen pass: one dirty bit per lane, no branches per word.
            let mut dirty = 0u64;
            for (lane, &w) in chunk.iter().enumerate() {
                dirty |= u64::from(!Secded::is_clean(w)) << lane;
            }
            report.clean += chunk.len() - dirty.count_ones() as usize;
            // Repair pass: only the flagged lanes.
            while dirty != 0 {
                let lane = dirty.trailing_zeros() as usize;
                dirty &= dirty - 1;
                match Secded::decode(chunk[lane]) {
                    DecodeOutcome::Clean { .. } => unreachable!("screened dirty"),
                    DecodeOutcome::Corrected { data, .. } => {
                        report.corrected += 1;
                        chunk[lane] = Secded::encode(data);
                    }
                    DecodeOutcome::DoubleError { .. } => report.uncorrectable += 1,
                }
            }
        }
        report
    }

    /// Decodes every word, repairing correctable errors in place, and
    /// returns the decoded weights plus statistics.
    pub fn scrub(&mut self) -> (Vec<f32>, ScrubReport) {
        let report = self.scrub_in_place();
        // Post-repair, every correctable word decodes to its healed
        // value, so reading after the sweep matches the old fused path.
        (self.read_all(), report)
    }

    /// ECC storage overhead in bytes: 7 check bits per 32-bit word
    /// (`params × 7 / 8`), the quantity reported in the paper's storage
    /// tables.
    pub fn overhead_bytes(&self) -> usize {
        self.words.len() * Secded::CHECK_BITS as usize / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_weights() -> Vec<f32> {
        (0..64).map(|i| (i as f32) * 0.125 - 4.0).collect()
    }

    #[test]
    fn protect_read_roundtrip() {
        let w = sample_weights();
        let mem = SecdedMemory::protect(&w);
        assert_eq!(mem.len(), 64);
        assert!(!mem.is_empty());
        assert_eq!(mem.read_all(), w);
    }

    #[test]
    fn scrub_fixes_single_bit_errors() {
        let w = sample_weights();
        let mut mem = SecdedMemory::protect(&w);
        mem.flip_bit(3, 11);
        mem.flip_bit(17, 0);
        let (decoded, report) = mem.scrub();
        assert_eq!(decoded, w);
        assert_eq!(report.corrected, 2);
        assert_eq!(report.uncorrectable, 0);
        assert_eq!(report.clean, 62);
        // Storage itself was healed: next scrub is clean.
        let (_, second) = mem.scrub();
        assert_eq!(second.corrected, 0);
        assert_eq!(second.clean, 64);
    }

    #[test]
    fn scrub_reports_double_errors_without_fixing() {
        let w = sample_weights();
        let mut mem = SecdedMemory::protect(&w);
        mem.flip_bit(5, 2);
        mem.flip_bit(5, 30);
        let (decoded, report) = mem.scrub();
        assert_eq!(report.uncorrectable, 1);
        // The word is still corrupt (silent data corruption).
        assert_ne!(decoded[5], w[5]);
    }

    #[test]
    fn whole_weight_error_defeats_ecc() {
        // The PSEC motivation: flip all 32 data-carrying bits.
        let w = vec![1.5f32];
        let mut mem = SecdedMemory::protect(&w);
        for bit in 0..32 {
            // Flip a spread of code-word bits (not only data positions;
            // the attack model garbles the whole encryption word).
            mem.flip_bit(0, bit);
        }
        let (decoded, report) = mem.scrub();
        assert_eq!(report.corrected + report.uncorrectable + report.clean, 1);
        assert_ne!(decoded[0], 1.5);
    }

    #[test]
    fn overhead_matches_paper_formula() {
        // MNIST network: 1,669,290 params -> ECC 1.46 MB (Table V).
        let n = 1_669_290usize;
        let mem = SecdedMemory::protect(&[0.0f32; 4]);
        let _ = mem;
        let bytes = n * 7 / 8;
        let mb = bytes as f64 / 1_000_000.0;
        assert!((mb - 1.46).abs() < 0.01, "{mb}");
    }

    #[test]
    #[should_panic(expected = "outside code word")]
    fn flip_bit_validates_position() {
        let mut mem = SecdedMemory::protect(&[0.0]);
        mem.flip_bit(0, 39);
    }

    #[test]
    fn scrub_in_place_matches_scrub_across_chunk_boundaries() {
        // Lengths straddling the screen-chunk size, with errors placed in
        // every chunk position class (first lane, last lane, mid-chunk,
        // tail chunk).
        for len in [1usize, 31, 32, 33, 64, 100] {
            let w: Vec<f32> = (0..len).map(|i| i as f32 * 0.5 - 7.0).collect();
            let mut a = SecdedMemory::protect(&w);
            let mut b = a.clone();
            for (word, bits) in [
                (0usize, vec![4u32]),
                (len / 2, vec![0]),
                (len - 1, vec![2, 30]),
            ] {
                for bit in bits {
                    a.flip_bit(word, bit);
                    b.flip_bit(word, bit);
                }
            }
            let (decoded, report) = a.scrub();
            let in_place = b.scrub_in_place();
            assert_eq!(report, in_place, "len {len}");
            assert_eq!(a.words(), b.words(), "len {len}");
            let mut buf = vec![0.0f32; len];
            b.read_all_into(&mut buf);
            assert_eq!(decoded, buf, "len {len}");
        }
    }
}
